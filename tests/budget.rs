//! Integration tests for the budget manager inside the closed loop (§5).

use dasr::core::policy::AutoPolicy;
use dasr::core::runner::ClosedLoop;
use dasr::core::{BudgetStrategy, RunConfig, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace, Workload};

fn workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig::small())
}

fn demanding_trace(minutes: usize) -> Trace {
    // Sustained heavy demand: unconstrained Auto would buy big containers
    // for most of the run.
    Trace::new("heavy", vec![130.0; minutes])
}

fn run_with_budget(budget: f64, strategy: BudgetStrategy, minutes: usize) -> (f64, f64) {
    let knobs = TenantKnobs::none()
        .with_latency_goal(LatencyGoal::P95(50.0)) // hard goal => wants big
        .with_budget(budget);
    let cfg = RunConfig {
        knobs,
        budget_strategy: strategy,
        prewarm_pages: workload().hot_pages(),
        ..RunConfig::default()
    };
    let mut policy = AutoPolicy::with_knobs(knobs);
    let report = ClosedLoop::run(&cfg, &demanding_trace(minutes), workload(), &mut policy);
    (report.total_cost(), report.avg_cost_per_interval())
}

#[test]
fn budget_is_a_hard_constraint_under_pressure() {
    let minutes = 40;
    for strategy in [
        BudgetStrategy::Aggressive,
        BudgetStrategy::Conservative { k: 2 },
    ] {
        // Barely above the floor: Auto wants far more than it may spend.
        let budget = minutes as f64 * 7.0 + 200.0;
        let (total, _) = run_with_budget(budget, strategy, minutes);
        assert!(
            total <= budget + 1e-6,
            "{strategy:?}: spent {total} over budget {budget}"
        );
    }
}

#[test]
fn larger_budgets_buy_more() {
    let minutes = 30;
    let small = run_with_budget(
        minutes as f64 * 7.0 + 100.0,
        BudgetStrategy::Aggressive,
        minutes,
    )
    .0;
    let large = run_with_budget(minutes as f64 * 100.0, BudgetStrategy::Aggressive, minutes).0;
    assert!(
        large > small,
        "a larger budget should be (partially) used: {large} vs {small}"
    );
}

#[test]
fn unconstrained_runs_ignore_budgeting() {
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(50.0));
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload().hot_pages(),
        ..RunConfig::default()
    };
    let mut policy = AutoPolicy::with_knobs(knobs);
    let report = ClosedLoop::run(&cfg, &demanding_trace(20), workload(), &mut policy);
    // No assertion on cost — just that the loop runs and spends freely.
    assert!(report.total_cost() > 20.0 * 7.0);
}

#[test]
fn budget_constrained_runs_annotate_decisions() {
    let minutes = 30;
    let knobs = TenantKnobs::none()
        .with_latency_goal(LatencyGoal::P95(40.0))
        .with_budget(minutes as f64 * 7.0 + 60.0);
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload().hot_pages(),
        ..RunConfig::default()
    };
    let mut policy = AutoPolicy::with_knobs(knobs);
    let report = ClosedLoop::run(&cfg, &demanding_trace(minutes), workload(), &mut policy);
    assert!(
        report
            .intervals
            .iter()
            .any(|i| i.explanations().iter().any(|e| e.contains("budget"))),
        "constrained scaling must be explained"
    );
}
