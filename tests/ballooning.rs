//! Integration tests for the §4.3 ballooning flow across engine, telemetry
//! and policy.

use dasr::core::policy::auto::AutoConfig;
use dasr::core::policy::AutoPolicy;
use dasr::core::runner::ClosedLoop;
use dasr::core::{RunConfig, RunReport, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace, Workload};

/// A page-heavy workload whose working set fills most of the initial
/// container's pool but not the next smaller one.
fn working_set_workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig {
        cpu_us_mean: 8_000.0,
        pages_per_request: 32,
        log_bytes: 512,
        db_pages: 524_288,  // 4 GB
        hot_pages: 393_216, // 3 GB
        hot_prob: 0.98,
        mix: [0.0, 0.0, 0.0, 1.0],
        grant_prob: 0.0,
        grant_mb: 0,
    })
}

fn run(balloon_enabled: bool, minutes: usize) -> RunReport {
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(400.0));
    let cfg = RunConfig {
        knobs,
        prewarm_pages: working_set_workload().hot_pages(),
        ..RunConfig::default()
    };
    let trace = Trace::new("steady", vec![10.0; minutes]);
    let mut policy = AutoPolicy::new(AutoConfig {
        balloon_enabled,
        ..AutoConfig::with_knobs(knobs)
    });
    ClosedLoop::run(&cfg, &trace, working_set_workload(), &mut policy)
}

#[test]
fn ballooning_protects_the_working_set() {
    let with = run(true, 40);
    let worst_with = with
        .intervals
        .iter()
        .filter_map(|i| i.latency_ms)
        .fold(0.0, f64::max);
    // The probe may start and abort; latency must never blow past the goal
    // by orders of magnitude.
    assert!(
        worst_with < 2_000.0,
        "worst interval with ballooning: {worst_with} ms"
    );
    // The container's memory floor holds: it never drops below the rung
    // whose pool fits the 3 GB working set (C2 = 4 GB).
    assert!(
        with.intervals.iter().all(|i| i.rung >= 2),
        "must not shrink below the working set"
    );
}

#[test]
fn without_ballooning_the_memory_trap_springs() {
    let without = run(false, 40);
    let worst = without
        .intervals
        .iter()
        .filter_map(|i| i.latency_ms)
        .fold(0.0, f64::max);
    let dipped = without.intervals.iter().any(|i| i.rung < 2);
    assert!(
        dipped,
        "the no-balloon variant must mistakenly shrink below the working set"
    );
    assert!(
        worst > 2_000.0,
        "eviction of the working set must hurt latency, got {worst} ms"
    );
}

#[test]
fn balloon_probes_are_explained() {
    let with = run(true, 40);
    let mentions_balloon = with.intervals.iter().any(|i| {
        i.explanations()
            .iter()
            .any(|e| e.contains("Balloon") || e.contains("ballooning"))
    });
    assert!(
        mentions_balloon,
        "balloon activity must surface in explanations"
    );
}
