//! End-to-end integration tests: the full closed loop over all crates.

use dasr::containers::Catalog;
use dasr::core::policy::offline::UsageProfile;
use dasr::core::policy::{AutoPolicy, StaticPolicy, UtilPolicy};
use dasr::core::runner::ClosedLoop;
use dasr::core::{RunConfig, RunReport, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace, Workload};

fn small_workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig::small())
}

fn cfg_with(knobs: TenantKnobs) -> RunConfig {
    RunConfig {
        knobs,
        prewarm_pages: small_workload().hot_pages(),
        ..RunConfig::default()
    }
}

fn burst_trace(minutes: usize) -> Trace {
    let mut rps = vec![3.0; minutes];
    let (lo, hi) = (minutes / 3, 2 * minutes / 3);
    for (i, slot) in rps.iter_mut().enumerate() {
        if i >= lo && i < hi {
            *slot = 120.0;
        }
    }
    Trace::new("burst", rps)
}

fn run_auto(trace: &Trace, goal_ms: f64) -> RunReport {
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(goal_ms));
    let cfg = cfg_with(knobs);
    let mut policy = AutoPolicy::with_knobs(knobs);
    ClosedLoop::run(&cfg, trace, small_workload(), &mut policy)
}

#[test]
fn auto_scales_up_during_burst_and_down_after() {
    let trace = burst_trace(45);
    let report = run_auto(&trace, 100.0);
    let rung_at = |minute: usize| report.intervals[minute].rung;
    let burst_peak = (20..30).map(rung_at).max().unwrap();
    let idle_start = rung_at(3);
    let idle_end = rung_at(44);
    assert!(
        burst_peak > idle_start,
        "must scale up during the burst: {burst_peak} vs {idle_start}"
    );
    assert!(
        idle_end < burst_peak,
        "must scale back down after the burst: {idle_end} vs {burst_peak}"
    );
    assert!(report.resizes >= 2);
}

#[test]
fn auto_is_cheaper_than_max_at_comparable_latency() {
    let trace = burst_trace(40);
    let cfg = cfg_with(TenantKnobs::none());
    let mut max_policy = StaticPolicy::max(&cfg.catalog);
    let max_report = ClosedLoop::run(&cfg, &trace, small_workload(), &mut max_policy);
    let goal = 1.5 * max_report.p95_ms().unwrap();

    let auto_report = run_auto(&trace, goal);
    assert!(
        auto_report.total_cost() < 0.6 * max_report.total_cost(),
        "auto {} should cost well below max {}",
        auto_report.total_cost(),
        max_report.total_cost()
    );
}

#[test]
fn auto_beats_util_on_cost_without_losing_the_goal_badly() {
    let trace = burst_trace(60);
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(120.0));
    let cfg = cfg_with(knobs);

    let mut auto = AutoPolicy::with_knobs(knobs);
    let auto_report = ClosedLoop::run(&cfg, &trace, small_workload(), &mut auto);
    let mut util = UtilPolicy::new();
    let util_report = ClosedLoop::run(&cfg, &trace, small_workload(), &mut util);

    assert!(
        auto_report.avg_cost_per_interval() <= 1.1 * util_report.avg_cost_per_interval(),
        "auto cost {} vs util cost {}",
        auto_report.avg_cost_per_interval(),
        util_report.avg_cost_per_interval()
    );
}

#[test]
fn runs_are_deterministic() {
    let trace = burst_trace(20);
    let a = run_auto(&trace, 100.0);
    let b = run_auto(&trace, 100.0);
    assert_eq!(a.total_cost(), b.total_cost());
    assert_eq!(a.resizes, b.resizes);
    assert_eq!(a.p95_ms(), b.p95_ms());
    let rungs_a: Vec<u8> = a.intervals.iter().map(|i| i.rung).collect();
    let rungs_b: Vec<u8> = b.intervals.iter().map(|i| i.rung).collect();
    assert_eq!(rungs_a, rungs_b);
}

#[test]
fn offline_profile_baselines_are_ordered() {
    let trace = burst_trace(30);
    let cfg = cfg_with(TenantKnobs::none());
    let (profile, max_report) = UsageProfile::profile(&cfg, &trace, small_workload());
    assert_eq!(profile.usage.len(), 30);
    assert_eq!(max_report.policy, "max");

    let catalog = Catalog::azure_like();
    let peak = catalog.get(profile.peak_container(&catalog)).unwrap();
    let avg = catalog.get(profile.avg_container(&catalog)).unwrap();
    assert!(peak.cost >= avg.cost, "peak must cover at least avg");

    let schedule = profile.trace_schedule(&catalog);
    let burst_rung = catalog.get(schedule[15]).unwrap().rung;
    let idle_rung = catalog.get(schedule[2]).unwrap().rung;
    assert!(burst_rung >= idle_rung);
}

#[test]
fn explanations_accompany_every_interval() {
    let trace = burst_trace(25);
    let report = run_auto(&trace, 100.0);
    assert!(report
        .intervals
        .iter()
        .all(|i| !i.explanations().is_empty()));
    // At least one scale-up explanation mentions a bottleneck during the burst.
    assert!(report
        .intervals
        .iter()
        .any(|i| i.explanations().iter().any(|e| e.contains("Scale-up"))));
}

#[test]
fn latency_goal_trades_cost() {
    let trace = burst_trace(45);
    let tight = run_auto(&trace, 60.0);
    let loose = run_auto(&trace, 2_000.0);
    assert!(
        loose.avg_cost_per_interval() <= tight.avg_cost_per_interval() + 1e-9,
        "loose goal {} must not cost more than tight {}",
        loose.avg_cost_per_interval(),
        tight.avg_cost_per_interval()
    );
}
