//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors exactly the API subset the workspace uses: [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]. The generator is
//! xoshiro256** seeded through SplitMix64 — fast, high quality, and fully
//! deterministic across platforms and thread counts (the property the fleet
//! runner's bit-identical contract rests on). It does **not** reproduce the
//! stream of the real `rand::rngs::StdRng` (ChaCha12); nothing in the
//! workspace depends on the specific stream, only on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let v = widening_mul_sample(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = widening_mul_sample(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

/// Unbiased-enough uniform integer in `[0, span)` via 64×64→128 widening
/// multiply (Lemire's method without the rejection step; the bias is
/// ≤ span/2⁶⁴, immaterial for simulation workloads).
fn widening_mul_sample<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = unit_f64(rng);
        let v = low + u * (high - low);
        // Guard against rounding up to `high` at the extreme.
        if v >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// Standard-distributed value (`f64` in `[0, 1)`, uniform ints, fair
    /// bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: i8 = rng.gen_range(-2i8..=2);
            assert!((-2..=2).contains(&w));
            let f: f64 = rng.gen_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&f));
            let u: usize = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_through_mut_works() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = takes_impl(&mut rng);
        let r = &mut rng;
        let _ = takes_impl(r);
    }
}
