//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! API subset the workspace's property tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), range and tuple strategies,
//! `prop::collection::{vec, btree_set}`, `any::<bool>()`, `prop_oneof!`,
//! `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the seed and case index;
//!   reproduce by re-running (generation is deterministic per test name).
//! - **No persistence.** `*.proptest-regressions` files are ignored.
//! - Failure messages carry the formatted assertion, not a minimal input.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The RNG driving generation (re-exported for the macro).
pub type TestRng = StdRng;

/// Deterministic per-(test, case) RNG. FNV-1a over the test name keeps
/// streams stable across runs and platforms.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; each generation picks one uniformly.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a fair boolean.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<T>` with a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            // Bounded draws: small value domains may not admit `target`
            // distinct elements.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(64) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy: `size` distinct elements of `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(
            size.start < size.end,
            "btree_set strategy: empty size range"
        );
        BTreeSetStrategy { element, size }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines deterministic random property tests.
///
/// Supports the real-proptest surface the workspace uses: an optional
/// leading `#![proptest_config(expr)]`, doc comments, `#[test]`, and
/// `name(arg in strategy, ...)` signatures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0..10.0f64, 1..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in -5.0..5.0f64, n in 1usize..10, s in -2i8..=2) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2..=2).contains(&s));
        }

        /// Vec strategy honors its length range, and prop_map applies.
        #[test]
        fn vec_and_map(v in small_vec(), flag in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(usize::from(flag) <= 1);
            let doubled = (0u32..4).prop_map(|x| x * 2);
            let mut rng = crate::test_rng("inner", 0);
            let d = doubled.generate(&mut rng);
            prop_assert!(d % 2 == 0 && d < 8);
        }

        /// btree_set yields distinct ordered elements within the size range.
        #[test]
        fn btree_set_distinct(s in prop::collection::btree_set(0usize..30, 1..6)) {
            prop_assert!(s.len() < 6);
            prop_assert!(s.iter().all(|&v| v < 30));
        }

        /// prop_oneof mixes its arms.
        #[test]
        fn oneof_mixes(v in prop::collection::vec(prop_oneof![
            (0u32..5).prop_map(|x| x as i64),
            (100u32..105).prop_map(|x| x as i64),
        ], 30..40)) {
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x) || (100..105).contains(&x)));
        }

        /// Tuple strategies generate componentwise.
        #[test]
        fn tuples(pair in (0.0..1.0f64, 5u64..9)) {
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert!((5..9).contains(&pair.1));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = small_vec();
        let a = s.generate(&mut crate::test_rng("det", 3));
        let b = s.generate(&mut crate::test_rng("det", 3));
        assert_eq!(a, b);
        // A different case index draws from a different stream.
        let c = s.generate(&mut crate::test_rng("det", 4));
        assert_ne!(a, c);
    }
}
