//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — with a simple but
//! honest measurement loop: warm-up, iteration-count calibration to a
//! target measurement time, then a timed run reporting ns/iteration.
//!
//! Extras for the repo's perf-trajectory tooling:
//! - `cargo bench -- --test` runs every benchmark once (CI smoke);
//! - when `DASR_BENCH_JSON` names a file, results are appended to it as
//!   JSON lines `{"bench": ..., "ns_per_iter": ..., "iters": ...}` so the
//!   bench harness can emit `BENCH_signals.json`.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`group/name` when inside a group).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations timed in the measurement phase.
    pub iters: u64,
}

/// Benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First non-flag argument filters benchmark ids by substring, like
        // real criterion/libtest.
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Self {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(80),
            test_mode,
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the sample count (accepted for API compatibility; the adaptive
    /// loop ignores it).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        if let Some((ns_per_iter, iters)) = b.result {
            if self.test_mode {
                println!("test {id} ... ok");
            } else {
                println!("{id:<50} {:>14}/iter (x{iters})", format_ns(ns_per_iter));
            }
            self.results.push(Measurement {
                id,
                ns_per_iter,
                iters,
            });
        }
        self
    }

    /// Opens a named benchmark group; ids become `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Appends results as JSON lines to `$DASR_BENCH_JSON` (if set).
    pub fn emit_json(&self) {
        let Ok(path) = std::env::var("DASR_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("warning: cannot open DASR_BENCH_JSON={path}");
            return;
        };
        for m in &self.results {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
                m.id.replace('"', "'"),
                m.ns_per_iter,
                m.iters
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.2} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.2} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.2} us", ns / 1.0e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (no-op; results live on the parent `Criterion`).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `routine`, storing mean ns/iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.result = Some((0.0, 1));
            return;
        }
        // Warm-up and calibration: run until warm_up_time has elapsed,
        // counting iterations to estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1 << 24 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = self.measurement_time.as_secs_f64().max(est_per_iter); // at least one iteration
        let iters = ((target / est_per_iter).round() as u64).clamp(1, 1 << 28);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.result = Some((elapsed * 1.0e9 / iters as f64, iters));
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.emit_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            test_mode: false,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
            result: None,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let (ns, iters) = b.result.unwrap();
        assert!(ns > 0.0 && iters >= 1);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(1),
            result: None,
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.result.unwrap().1, 1);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::from_millis(1),
            test_mode: true,
            filter: None,
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.measurements()[0].id, "grp/x");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(1),
            warm_up_time: Duration::from_millis(1),
            test_mode: true,
            filter: Some("keep".into()),
            results: Vec::new(),
        };
        c.bench_function("keep_this", |b| b.iter(|| 1));
        c.bench_function("drop_this", |b| b.iter(|| 1));
        assert_eq!(c.measurements().len(), 1);
    }
}
