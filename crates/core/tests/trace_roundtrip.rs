//! Satellite (b): every decision trace must survive the JSONL wire format
//! unchanged, and the human-rendered explanations for one seeded tenant
//! trajectory are pinned to a golden file.
//!
//! Regenerate the golden file after an *intentional* wording change with:
//!
//! ```text
//! DASR_BLESS=1 cargo test -p dasr-core --test trace_roundtrip
//! ```

use dasr_core::policy::AutoPolicy;
use dasr_core::runner::ClosedLoop;
use dasr_core::{DecisionTrace, RunConfig, RunReport, TenantKnobs};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace, Workload};

const GOLDEN: &str = include_str!("golden/burst_explanations.txt");

/// One seeded tenant over a burst trace: idle → 8× surge → idle, enough to
/// exercise scale-up, cooldown holds, and scale-down in a single run.
fn seeded_burst_run() -> RunReport {
    let workload = CpuIoWorkload::new(CpuIoConfig::small());
    let mut rps = vec![4.0; 36];
    for slot in rps.iter_mut().take(24).skip(12) {
        *slot = 120.0;
    }
    let trace = Trace::new("burst", rps);
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(100.0));
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload.hot_pages(),
        seed: 0xB0B5,
        ..RunConfig::default()
    };
    let mut policy = AutoPolicy::with_knobs(knobs);
    ClosedLoop::run(&cfg, &trace, workload, &mut policy)
}

#[test]
fn every_trace_round_trips_through_jsonl() {
    let report = seeded_burst_run();
    assert_eq!(report.intervals.len(), 36);
    for rec in &report.intervals {
        let line = rec.trace.to_json_line();
        assert!(!line.contains('\n'), "JSONL lines must be single lines");
        let parsed = DecisionTrace::from_json_line(&line)
            .unwrap_or_else(|e| panic!("minute {}: parse failed: {e}\n{line}", rec.minute));
        assert_eq!(
            parsed.to_json_line(),
            line,
            "minute {}: re-serialization must be bit-identical",
            rec.minute
        );
        // The parsed trace renders the same human text as the original.
        assert_eq!(
            parsed.render_explanations(),
            rec.trace.render_explanations(),
            "minute {}",
            rec.minute
        );
        assert_eq!(parsed.interval, rec.minute);
        assert_eq!(parsed.from, rec.container);
    }
    // The report-level dump is exactly the per-interval lines.
    let jsonl = report.traces_jsonl();
    assert_eq!(jsonl.lines().count(), report.intervals.len());
}

#[test]
fn traces_carry_structure_not_strings() {
    let report = seeded_burst_run();
    // Every interval fires exactly one arbitration branch and evaluates the
    // §6 table in declared order up to it.
    for rec in &report.intervals {
        assert!(
            !rec.trace.arbitration.is_empty(),
            "minute {}: arbitration rules must be recorded",
            rec.minute
        );
        assert_eq!(
            rec.trace.arbitration.last().copied(),
            Some(rec.trace.branch),
            "minute {}: the fired branch ends the evaluated list",
            rec.minute
        );
        // Demanded vs granted: a granted step never exceeds demand on the
        // way up without a gate explaining it (emergency/latency paths can
        // move without per-resource demand, but plain demand moves match).
        assert_eq!(rec.trace.demanded.len(), rec.trace.granted.len());
    }
    // The burst must produce at least one scale-up with a fired §4 rule
    // attached in structured form.
    let up = report
        .intervals
        .iter()
        .find(|r| r.trace.granted.iter().any(|&g| g > 0))
        .expect("burst run must scale up at least once");
    assert!(
        up.trace
            .resources
            .iter()
            .any(|r| r.fired.is_some() && r.fired.unwrap().step > 0),
        "scale-up interval must carry the fired high-demand rule"
    );
}

#[test]
fn burst_explanations_match_golden() {
    let report = seeded_burst_run();
    let mut rendered = String::new();
    for rec in &report.intervals {
        rendered.push_str(&format!(
            "m{:02} C{} {}\n",
            rec.minute,
            rec.rung,
            rec.explanations().join(" | ")
        ));
    }
    if std::env::var("DASR_BLESS").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/burst_explanations.txt"
        );
        std::fs::write(path, &rendered).expect("bless write");
        return;
    }
    assert_eq!(
        rendered, GOLDEN,
        "rendered explanations drifted from the golden file; \
         rerun with DASR_BLESS=1 if the change is intentional"
    );
}
