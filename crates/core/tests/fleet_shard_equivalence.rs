//! Shard/thread bit-identity on awkward shapes.
//!
//! The sharded scheduler's contract is that neither the worker count nor
//! the shard count can perturb a single bit of the result — the exact-sum
//! monoid fold (see `dasr_core::runner::shard`) absorbs the floating-point
//! non-associativity that would otherwise leak shard boundaries into the
//! aggregates. This test drives the claim over deliberately awkward
//! shapes: shard counts that don't divide the tenant count, more shards
//! than tenants, more threads than shards, and the empty fleet — asserting
//! full [`FleetReport`] equality (reports *and* folded summary), identical
//! event JSONL, and identical merged registries. The streaming summary
//! mode must agree with the buffered full mode on all of it.

use dasr_core::{
    tenant_seed, AutoPolicy, FleetReport, FleetRunner, FleetSummary, RunConfig, ScalingPolicy,
    TenantSpec, VecSink,
};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

/// A fleet of `n` tenants with varied demand shapes. `minutes` is kept
/// small for the big fleet: bit-identity either holds structurally or
/// breaks on the first merged float, so run length adds cost, not power.
fn fleet(n: usize, minutes: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..n)
        .map(|i| {
            let demand: Vec<f64> = (0..minutes)
                .map(|m| 1.0 + ((i + m) % 5) as f64 + if m == 2 { 6.0 } else { 0.0 })
                .collect();
            TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(0x5AAD, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("mix", demand),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

fn run_full(tenants: &[TenantSpec<CpuIoWorkload>], runner: FleetRunner) -> FleetReport {
    runner.run_fleet(tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
    })
}

fn run_summary(
    tenants: &[TenantSpec<CpuIoWorkload>],
    runner: FleetRunner,
) -> (FleetSummary, VecSink) {
    let mut sink = VecSink::default();
    let summary = runner.run_fleet_summary(
        tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>,
        &mut sink,
    );
    (summary, sink)
}

fn assert_all_groupings_match(tenants: &[TenantSpec<CpuIoWorkload>], threads: &[usize]) {
    let n = tenants.len();
    let reference = run_full(tenants, FleetRunner::new(1));
    let reference_jsonl = reference.events_jsonl();
    let reference_metrics = reference.fleet_metrics();
    for &t in threads {
        for shards in [1usize, 3, 8, 17] {
            let runner = FleetRunner::new(t).with_shards(shards);
            let full = run_full(tenants, runner);
            assert_eq!(full, reference, "n={n} threads={t} shards={shards}");
            assert_eq!(
                full.events_jsonl(),
                reference_jsonl,
                "event stream diverged: n={n} threads={t} shards={shards}"
            );
            assert_eq!(
                full.fleet_metrics(),
                reference_metrics,
                "registry diverged: n={n} threads={t} shards={shards}"
            );

            let (summary, sink) = run_summary(tenants, runner);
            assert_eq!(
                &summary,
                reference.fleet_summary(),
                "summary diverged: n={n} threads={t} shards={shards}"
            );
            assert_eq!(
                sink.events_jsonl(),
                reference_jsonl,
                "streamed events diverged: n={n} threads={t} shards={shards}"
            );
        }
    }
}

#[test]
fn awkward_small_fleets_are_bit_identical_everywhere() {
    for n in [0usize, 1, 7] {
        let tenants = fleet(n, 4);
        assert_all_groupings_match(&tenants, &[1, 2, 8]);
    }
}

#[test]
fn thousand_tenant_fleet_is_bit_identical_across_groupings() {
    // 1000 tenants, 1-minute traces: big enough that every shard grouping
    // in the matrix is exercised with uneven tails (1000 % 3, % 8, % 17
    // are all non-zero), short enough for debug-mode CI.
    let tenants = fleet(1000, 1);
    let reference = run_full(&tenants, FleetRunner::new(1));
    let reference_jsonl = reference.events_jsonl();
    for (threads, shards) in [(2usize, 3usize), (8, 8), (8, 17)] {
        let runner = FleetRunner::new(threads).with_shards(shards);
        let full = run_full(&tenants, runner);
        assert_eq!(full, reference, "threads={threads} shards={shards}");
        assert_eq!(full.events_jsonl(), reference_jsonl);

        let (summary, sink) = run_summary(&tenants, runner);
        assert_eq!(&summary, reference.fleet_summary());
        assert_eq!(sink.events_jsonl(), reference_jsonl);
        assert_eq!(summary.events_emitted, sink.events.len() as u64);
    }
}

#[test]
fn summary_aggregates_match_full_mode_arithmetic() {
    let tenants = fleet(7, 4);
    let full = run_full(&tenants, FleetRunner::new(2));
    let s = full.fleet_summary();
    assert_eq!(s.tenants, 7);
    assert_eq!(
        s.intervals_total,
        full.reports
            .iter()
            .map(|r| r.intervals.len() as u64)
            .sum::<u64>()
    );
    assert_eq!(
        s.completed_total,
        full.reports
            .iter()
            .map(|r| r.completed_total())
            .sum::<u64>()
    );
    assert_eq!(
        s.latency.total() as usize,
        full.reports
            .iter()
            .map(|r| r.all_latencies_ms.len())
            .sum::<usize>()
    );
    // The histogram p95 estimate brackets the exact pooled p95 to within
    // its bucket resolution.
    let exact = full.p95_ms().expect("fleet saw traffic");
    let est = s.p95_estimate_ms().expect("histogram saw traffic");
    let bounds = dasr_core::REQUEST_LATENCY_BOUNDS;
    let bucket = bounds.iter().position(|&b| exact <= b);
    match bucket {
        Some(i) => {
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            assert!(
                est >= lower && est <= bounds[i],
                "estimate {est} outside bucket [{lower}, {}] holding exact {exact}",
                bounds[i]
            );
        }
        None => assert_eq!(est, *bounds.last().expect("bounds non-empty")),
    }
}
