//! Replay fidelity: record → replay through the *same* policy must
//! reproduce the decision sequence exactly.
//!
//! The loop is deterministic given its sample sequence (see
//! `dasr_core::replay` module docs), so a replayed `AutoPolicy` must fire
//! the same rules, choose the same containers and emit the identical
//! `DecisionTrace` for every interval — asserted here on the trace
//! sequence, the trace JSONL bytes and the rule-fire histogram, through a
//! JSONL round trip of the recording itself (parse of written bytes, not
//! just the in-memory structs). A second policy replayed over the same
//! recording exercises the counterfactual actuator path.

use dasr_core::{
    record_run, replay, replay_with, AutoPolicy, ReplayDiff, RunConfig, RunRecording, TenantKnobs,
    UtilPolicy,
};
use dasr_telemetry::{CounterfactualActuator, LatencyGoal};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig::small())
}

fn cfg() -> RunConfig {
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(55.0 * 14.0)
            .with_latency_goal(LatencyGoal::P95(200.0)),
        seed: 0x4E9A,
        prewarm_pages: 1_500,
        ..RunConfig::default()
    }
}

fn bursty_trace(minutes: usize) -> Trace {
    let demand: Vec<f64> = (0..minutes)
        .map(|m| 8.0 + (m % 5) as f64 * 7.0 + if m % 7 == 3 { 25.0 } else { 0.0 })
        .collect();
    Trace::new("bursty", demand)
}

#[test]
fn same_policy_replay_reproduces_decision_traces_and_rule_fires() {
    let cfg = cfg();
    let trace = bursty_trace(14);
    let mut rec_policy = AutoPolicy::with_knobs(cfg.knobs);
    let (original, recording) = record_run(&cfg, &trace, workload(), &mut rec_policy);
    assert!(original.resizes > 0, "the scenario actually scaled");

    // Through the serialized form: what a file round trip would see.
    let parsed = RunRecording::from_jsonl(&recording.to_jsonl()).expect("recording parses back");
    assert_eq!(parsed, recording);

    let mut replay_policy = AutoPolicy::with_knobs(cfg.knobs);
    let replayed = replay(&cfg, parsed, &mut replay_policy);

    let original_traces: Vec<_> = original.intervals.iter().map(|r| &r.trace).collect();
    let replayed_traces: Vec<_> = replayed.intervals.iter().map(|r| &r.trace).collect();
    assert_eq!(
        replayed_traces, original_traces,
        "DecisionTrace sequence diverged under replay"
    );
    assert_eq!(
        replayed.traces_jsonl(),
        original.traces_jsonl(),
        "trace JSONL bytes diverged under replay"
    );
    assert_eq!(
        replayed.rule_histogram(),
        original.rule_histogram(),
        "rule-fire histogram diverged under replay"
    );
    assert_eq!(replayed.intervals, original.intervals);
    assert_eq!(replayed.resizes, original.resizes);
    assert_eq!(replayed.rejected_total, original.rejected_total);
    assert!(ReplayDiff::between(&original, &replayed).identical());
}

#[test]
fn replay_is_idempotent() {
    let cfg = cfg();
    let trace = bursty_trace(10);
    let mut p0 = AutoPolicy::with_knobs(cfg.knobs);
    let (_, recording) = record_run(&cfg, &trace, workload(), &mut p0);

    let mut p1 = AutoPolicy::with_knobs(cfg.knobs);
    let first = replay(&cfg, recording.clone(), &mut p1);
    let mut p2 = AutoPolicy::with_knobs(cfg.knobs);
    let second = replay(&cfg, recording, &mut p2);
    assert_eq!(first, second, "replay of the same recording diverged");
}

#[test]
fn counterfactual_policy_ab_over_one_recording() {
    let cfg = cfg();
    let trace = bursty_trace(14);
    let mut auto = AutoPolicy::with_knobs(cfg.knobs);
    let (original, recording) = record_run(&cfg, &trace, workload(), &mut auto);

    let mut util = UtilPolicy::default();
    let (counterfactual, actuator) = replay_with(
        &cfg,
        recording,
        &mut util,
        CounterfactualActuator::default(),
    );

    // The ledger tallies exactly the divergent run's commands.
    assert_eq!(actuator.resizes, counterfactual.resizes);
    let diff = ReplayDiff::between(&original, &counterfactual);
    assert_eq!(diff.intervals, original.intervals.len());
    assert_eq!(diff.resizes_a, original.resizes);
    assert_eq!(diff.resizes_b, counterfactual.resizes);
    let rendered = diff.to_string();
    assert!(rendered.contains("intervals"), "{rendered}");
}

#[test]
fn tenant_stamps_survive_recording_round_trips() {
    let cfg = cfg();
    let trace = bursty_trace(6);
    let mut policy = AutoPolicy::with_knobs(cfg.knobs);
    let (_, mut recording) = record_run(&cfg, &trace, workload(), &mut policy);
    recording.stamp_tenant(42);
    let back = RunRecording::from_jsonl(&recording.to_jsonl()).expect("parses");
    assert!(back.records.iter().all(|r| r.tenant == Some(42)));
    assert_eq!(back.header.seed, cfg.seed);
}
