//! Property tests for the observability layer's determinism contract:
//! whole [`RunReport`]s — including the merged metrics registry and run
//! event stream — must be bit-identical at 1, 2 and 8 threads (wall-clock
//! timers are excluded from equality by design; see
//! `dasr_core::obs::MetricRegistry`).

use dasr_core::obs::EventVerbosity;
use dasr_core::policy::{AutoPolicy, ScalingPolicy};
use dasr_core::{tenant_seed, FleetRunner, ObsConfig, RunConfig, TenantKnobs, TenantSpec};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use proptest::prelude::*;

/// A small fleet whose tenants have goals and budgets, so every metric
/// family (resizes, denials, budget throttles, SLO violations) can engage.
fn fleet(seed: u64, n: usize, minutes: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..n)
        .map(|i| {
            let tseed = tenant_seed(seed, i as u64);
            let rps: Vec<f64> = (0..minutes)
                .map(|m| {
                    let burst = if (m + i) % 3 == 0 { 12.0 } else { 0.0 };
                    4.0 + ((tseed % 7) as f64) + burst
                })
                .collect();
            let knobs = TenantKnobs::none()
                .with_latency_goal(LatencyGoal::P95(30.0 + (i as f64) * 10.0))
                .with_budget(40.0 * minutes as f64);
            TenantSpec {
                cfg: RunConfig {
                    seed: tseed,
                    knobs,
                    obs: ObsConfig {
                        verbosity: EventVerbosity::Notable,
                    },
                    ..RunConfig::default()
                },
                trace: Trace::new("obs-prop", rps),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full report — intervals, traces, metrics registry, event stream
    /// — is bit-identical for 1, 2 and 8 threads, compared with plain
    /// `==` (possible since the registry's `PartialEq` covers exactly the
    /// deterministic sections).
    #[test]
    fn run_reports_are_bit_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        n in 2usize..6,
    ) {
        let tenants = fleet(seed, n, 4);
        let run = |threads: usize| {
            FleetRunner::new(threads).run_fleet(&tenants, |_, t| {
                Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
            })
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            let parallel = run(threads);
            prop_assert_eq!(parallel.reports.len(), reference.reports.len());
            for (a, b) in parallel.reports.iter().zip(reference.reports.iter()) {
                prop_assert_eq!(a, b, "RunReport diverges at {} threads", threads);
            }
            prop_assert_eq!(
                parallel.fleet_metrics(),
                reference.fleet_metrics(),
                "merged fleet registry diverges at {} threads",
                threads
            );
            prop_assert_eq!(
                parallel.events_jsonl(),
                reference.events_jsonl(),
                "fleet event stream diverges at {} threads",
                threads
            );
        }
    }

    /// The registry's live rule histogram equals the one re-derived from
    /// the stored decision traces — the absorbed `RuleHistogram` and the
    /// trace-derived view never drift apart.
    #[test]
    fn registry_rules_match_trace_derived_histogram(
        seed in 0u64..1_000_000,
        n in 1usize..4,
    ) {
        let tenants = fleet(seed, n, 3);
        let report = FleetRunner::new(2).run_fleet(&tenants, |_, t| {
            Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
        });
        for r in &report.reports {
            prop_assert_eq!(r.obs.metrics.rules(), &r.rule_histogram());
        }
        prop_assert_eq!(report.fleet_metrics().rules(), &report.rule_histogram());
    }
}
