//! Fleet determinism at scale: the same tenant fleet, run with 1, 2, and
//! 8 worker threads, must produce **bit-identical** results — every
//! latency sample, every interval record field, every rule fire.
//!
//! This is the fleet-level half of the engine fast-path equivalence story:
//! `crates/engine/tests/engine_equivalence.rs` proves the slab/wheel engine
//! matches the old implementation bit-for-bit on one tenant; this test
//! proves the parallel runner adds no thread-count dependence on top, so a
//! fleet experiment's numbers are reproducible on any machine regardless
//! of its core count.

use dasr_core::{tenant_seed, AutoPolicy, FleetRunner, RunConfig, ScalingPolicy, TenantSpec};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn fleet(n: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..n)
        .map(|i| {
            // Varied 10-minute demand shapes: ramps, spikes, troughs.
            let demand: Vec<f64> = (0..10)
                .map(|m| 4.0 + ((i + m) % 5) as f64 * 3.0 + if m == 6 { 12.0 } else { 0.0 })
                .collect();
            TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(0xF1EE7, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("mix", demand),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

#[test]
fn fleet_runs_are_bit_identical_at_1_2_and_8_threads() {
    let tenants = fleet(9);
    let run = |threads: usize| {
        FleetRunner::new(threads).run_fleet(&tenants, |_, t| {
            Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
        })
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        assert_eq!(parallel.len(), reference.len(), "threads = {threads}");
        for (i, (a, b)) in parallel
            .reports
            .iter()
            .zip(reference.reports.iter())
            .enumerate()
        {
            assert_eq!(
                a.all_latencies_ms, b.all_latencies_ms,
                "tenant {i} latencies diverged at {threads} threads"
            );
            assert_eq!(a.resizes, b.resizes, "tenant {i}");
            assert_eq!(a.rejected_total, b.rejected_total, "tenant {i}");
            assert_eq!(a.total_cost(), b.total_cost(), "tenant {i}");
            assert_eq!(
                a.intervals.len(),
                b.intervals.len(),
                "tenant {i} interval count"
            );
            for (m, (ia, ib)) in a.intervals.iter().zip(b.intervals.iter()).enumerate() {
                assert_eq!(ia.latency_ms, ib.latency_ms, "tenant {i} minute {m}");
                assert_eq!(ia.completed, ib.completed, "tenant {i} minute {m}");
                assert_eq!(ia.wait_pct, ib.wait_pct, "tenant {i} minute {m}");
                assert_eq!(ia.mem_used_mb, ib.mem_used_mb, "tenant {i} minute {m}");
                assert_eq!(ia.container, ib.container, "tenant {i} minute {m}");
            }
        }
        // Aggregates follow from the per-tenant equality, but check the
        // pooled views too (they fold in tenant-index order).
        assert_eq!(parallel.p95_ms(), reference.p95_ms());
        assert_eq!(
            parallel.rule_histogram(),
            reference.rule_histogram(),
            "threads = {threads}"
        );
    }
}
