//! Golden decision-equivalence test: the declarative §4 rule tables must
//! reproduce the legacy if-chain oracle (`estimator::rules`) **bit-for-bit**
//! — same step and same rendered explanation string — over a seeded fleet
//! of 1 000 tenants across a full 1 440-minute horizon of randomized
//! signal sets.
//!
//! The generator samples categorized levels independently of the raw
//! percentages, which covers corners a closed-loop run rarely reaches
//! (e.g. HIGH utilization with a near-idle percentage) and exercises every
//! threshold in [`EstimatorConfig`].

use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_core::estimator::rules as legacy;
use dasr_core::estimator::EstimatorConfig;
use dasr_core::rules::{EvalCtx, HIGH_DEMAND, LOW_DEMAND};
use dasr_core::tenant_seed;
use dasr_stats::{Trend, TrendDirection};
use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
use dasr_telemetry::signals::{LatencySignals, ResourceSignals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TENANTS: u64 = 1_000;
const HORIZON: usize = 1_440;
const FLEET_SEED: u64 = 0x4EC1_51F0;

fn random_trend(rng: &mut StdRng) -> Trend {
    match rng.gen_range(0..4u32) {
        0 | 1 => Trend::None,
        2 => Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: rng.gen_range(0.01..5.0),
            agreement: rng.gen_range(0.5..1.0),
        },
        _ => Trend::Significant {
            direction: TrendDirection::Decreasing,
            slope: -rng.gen_range(0.01..5.0),
            agreement: rng.gen_range(0.5..1.0),
        },
    }
}

fn random_resource(rng: &mut StdRng, kind: ResourceKind) -> ResourceSignals {
    ResourceSignals {
        kind,
        util_pct: rng.gen_range(0.0..100.0),
        util_level: match rng.gen_range(0..3u32) {
            0 => UtilLevel::Low,
            1 => UtilLevel::Medium,
            _ => UtilLevel::High,
        },
        wait_ms: rng.gen_range(0.0..10_000.0),
        wait_level: match rng.gen_range(0..3u32) {
            0 => WaitTimeLevel::Low,
            1 => WaitTimeLevel::Medium,
            _ => WaitTimeLevel::High,
        },
        wait_pct: rng.gen_range(0.0..100.0),
        wait_pct_level: if rng.gen_bool(0.5) {
            WaitPctLevel::Significant
        } else {
            WaitPctLevel::NotSignificant
        },
        util_trend: random_trend(rng),
        wait_trend: random_trend(rng),
        corr_latency_wait: rng.gen_bool(0.5).then(|| rng.gen_range(-1.0..1.0)),
        corr_latency_util: rng.gen_bool(0.5).then(|| rng.gen_range(-1.0..1.0)),
    }
}

fn random_latency(rng: &mut StdRng) -> LatencySignals {
    let goal_ms = rng.gen_bool(0.8).then(|| rng.gen_range(1.0..500.0));
    LatencySignals {
        observed_ms: rng.gen_bool(0.9).then(|| rng.gen_range(0.1..5_000.0)),
        goal_ms,
        verdict: if goal_ms.is_some() && rng.gen_bool(0.5) {
            LatencyVerdict::Bad
        } else {
            LatencyVerdict::Good
        },
        trend: random_trend(rng),
    }
}

/// The legacy oracle's answer, exactly as `DemandEstimator::estimate` used
/// to combine the two if-chains: high-demand first, low-demand only when
/// nothing fired and the resource is not memory (§4.3: ballooning handles
/// memory scale-down).
fn oracle(
    cfg: &EstimatorConfig,
    sig: &ResourceSignals,
    latency: &LatencySignals,
) -> Option<(i8, String)> {
    legacy::high_demand(cfg, sig, latency).or_else(|| {
        if sig.kind == ResourceKind::Memory {
            None
        } else {
            legacy::low_demand(cfg, sig)
        }
    })
}

/// The rule-table answer, rendered through `RuleFire::render` — the same
/// path `ResourceDemand::rule_text` takes in production.
fn engine(
    cfg: &EstimatorConfig,
    sig: &ResourceSignals,
    latency: &LatencySignals,
) -> Option<(i8, String)> {
    let ctx = EvalCtx::demand(cfg, sig, latency);
    let fired = HIGH_DEMAND.evaluate(&ctx).fired.or_else(|| {
        if sig.kind == ResourceKind::Memory {
            None
        } else {
            LOW_DEMAND.evaluate(&ctx).fired
        }
    });
    fired.map(|f| (f.step, f.render()))
}

#[test]
fn rule_tables_reproduce_legacy_chains_bit_for_bit() {
    let cfg = EstimatorConfig::default();
    let mut mismatches = 0usize;
    let mut fired = 0u64;
    let mut total = 0u64;

    for tenant in 0..TENANTS {
        let mut rng = StdRng::seed_from_u64(tenant_seed(FLEET_SEED, tenant));
        for interval in 0..HORIZON {
            let latency = random_latency(&mut rng);
            for kind in RESOURCE_KINDS {
                let sig = random_resource(&mut rng, kind);
                let want = oracle(&cfg, &sig, &latency);
                let got = engine(&cfg, &sig, &latency);
                total += 1;
                if want.is_some() {
                    fired += 1;
                }
                if want != got {
                    mismatches += 1;
                    assert!(
                        mismatches <= 5,
                        "too many mismatches; first few reported above"
                    );
                    eprintln!(
                        "tenant {tenant} interval {interval} {kind:?}:\n  \
                         legacy = {want:?}\n  tables = {got:?}\n  sig = {sig:?}"
                    );
                }
            }
        }
    }
    assert_eq!(mismatches, 0, "rule tables diverged from the legacy chains");
    assert_eq!(
        total,
        TENANTS * HORIZON as u64 * RESOURCE_KINDS.len() as u64
    );
    // The generator must actually reach the rules: a healthy fraction of
    // the samples fires *something*, in both directions.
    assert!(
        fired > total / 20,
        "generator too weak: only {fired}/{total} samples fired a rule"
    );
}

/// Directed corners the uniform sweep could in principle miss: the exact
/// threshold boundaries of every numeric comparison in the tables.
#[test]
fn threshold_boundaries_agree() {
    let cfg = EstimatorConfig::default();
    let up = Trend::Significant {
        direction: TrendDirection::Increasing,
        slope: 1.0,
        agreement: 0.8,
    };
    let latency_good = LatencySignals {
        observed_ms: Some(10.0),
        goal_ms: Some(50.0),
        verdict: LatencyVerdict::Good,
        trend: Trend::None,
    };
    let latency_bad = LatencySignals {
        observed_ms: Some(100.0),
        goal_ms: Some(50.0),
        verdict: LatencyVerdict::Bad,
        trend: Trend::None,
    };

    let mut cases = Vec::new();
    for util_pct in [
        cfg.very_low_util_pct - 0.01,
        cfg.very_low_util_pct,
        cfg.very_low_util_pct + 0.01,
        cfg.very_high_util_pct - 0.01,
        cfg.very_high_util_pct,
        cfg.very_high_util_pct + 0.01,
    ] {
        for wait_pct in [
            cfg.dominant_wait_pct - 0.01,
            cfg.dominant_wait_pct,
            cfg.dominant_wait_pct + 0.01,
        ] {
            for corr in [
                None,
                Some(cfg.corr_threshold - 0.01),
                Some(cfg.corr_threshold),
                Some(cfg.corr_threshold + 0.01),
            ] {
                for util_level in [UtilLevel::Low, UtilLevel::Medium, UtilLevel::High] {
                    for wait_level in [
                        WaitTimeLevel::Low,
                        WaitTimeLevel::Medium,
                        WaitTimeLevel::High,
                    ] {
                        for pct_level in [WaitPctLevel::NotSignificant, WaitPctLevel::Significant] {
                            for trend in [Trend::None, up] {
                                cases.push(ResourceSignals {
                                    kind: ResourceKind::Cpu,
                                    util_pct,
                                    util_level,
                                    wait_ms: 500.0,
                                    wait_level,
                                    wait_pct,
                                    wait_pct_level: pct_level,
                                    util_trend: trend,
                                    wait_trend: Trend::None,
                                    corr_latency_wait: corr,
                                    corr_latency_util: None,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    for sig in &cases {
        for latency in [&latency_good, &latency_bad] {
            assert_eq!(
                oracle(&cfg, sig, latency),
                engine(&cfg, sig, latency),
                "boundary case diverged: {sig:?}"
            );
        }
    }
}
