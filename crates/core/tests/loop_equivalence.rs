//! The seam refactor's bit-identity pin: `ClosedLoop` (generic over
//! `TelemetrySource`/`ResizeActuator`, engine plugged in as
//! `SimulatorSource`) against `OracleLoop`, the frozen pre-refactor loop
//! that calls the engine directly — the same methodology that pinned the
//! indexed engine to `OracleEngine` in PR 4.
//!
//! Identity is asserted at full strength: whole `RunReport` equality
//! (interval records, decision traces, observability — wall-clock timers
//! aside, which `PartialEq` excludes by design), decision-trace JSONL
//! bytes, event JSONL bytes, and — through `FleetRunner` at 1/2/8
//! threads — fleet report equality, folded registry equality and the
//! fleet event stream, byte for byte. Policies cover the §6 Auto policy
//! with a budget and a latency goal (exercising the budget gate and the
//! §4.3 balloon path) and the static baseline.

use dasr_core::{
    tenant_seed, AutoPolicy, FleetAccumulator, FleetRunner, OracleLoop, RunConfig, RunReport,
    ScalingPolicy, StaticPolicy, TenantKnobs, TenantSpec,
};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig::small())
}

/// A demand trace with a burst and a quiet tail — enough shape to move
/// the Auto policy through scale-up, budget pressure and low-demand
/// scale-down in a few minutes.
fn wavy_trace(minutes: usize, base: f64) -> Trace {
    let demand: Vec<f64> = (0..minutes)
        .map(|m| base + (m % 4) as f64 * 8.0 + if m == 3 { 30.0 } else { 0.0 })
        .collect();
    Trace::new("wavy", demand)
}

fn auto_cfg(seed: u64) -> RunConfig {
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(60.0 * 12.0)
            .with_latency_goal(LatencyGoal::P95(150.0)),
        seed,
        prewarm_pages: 2_000,
        ..RunConfig::default()
    }
}

fn events_jsonl(report: &RunReport) -> String {
    let mut out = String::new();
    for ev in &report.obs.events {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    out
}

#[test]
fn generic_loop_matches_oracle_for_auto_policy() {
    let cfg = auto_cfg(0xBEEF);
    let trace = wavy_trace(12, 10.0);

    let mut oracle_policy = AutoPolicy::with_knobs(cfg.knobs);
    let oracle = OracleLoop::run(&cfg, &trace, workload(), &mut oracle_policy);

    let mut seam_policy = AutoPolicy::with_knobs(cfg.knobs);
    let seam = dasr_core::ClosedLoop::run(&cfg, &trace, workload(), &mut seam_policy);

    assert_eq!(seam, oracle, "RunReport diverged across the seam");
    assert_eq!(
        seam.traces_jsonl(),
        oracle.traces_jsonl(),
        "decision-trace JSONL bytes diverged"
    );
    assert_eq!(
        events_jsonl(&seam),
        events_jsonl(&oracle),
        "event JSONL bytes diverged"
    );
    assert_eq!(seam.obs.metrics, oracle.obs.metrics, "registries diverged");
    assert!(oracle.resizes > 0, "the scenario actually scaled");
}

#[test]
fn generic_loop_matches_oracle_for_static_policy() {
    let cfg = RunConfig {
        seed: 0xF00D,
        ..RunConfig::default()
    };
    let trace = wavy_trace(6, 6.0);

    let mut a = StaticPolicy::max(&cfg.catalog);
    let oracle = OracleLoop::run(&cfg, &trace, workload(), &mut a);
    let mut b = StaticPolicy::max(&cfg.catalog);
    let seam = dasr_core::ClosedLoop::run(&cfg, &trace, workload(), &mut b);

    assert_eq!(seam, oracle);
    assert_eq!(seam.traces_jsonl(), oracle.traces_jsonl());
    assert_eq!(events_jsonl(&seam), events_jsonl(&oracle));
}

/// The §4.3 balloon path crosses the seam in both directions (probe
/// status in, start/abort/commit out): a low, steady workload on a large
/// initial container makes the Auto policy probe.
#[test]
fn generic_loop_matches_oracle_through_balloon_probes() {
    let catalog = RunConfig::default().catalog;
    let big = catalog.iter().last().expect("catalog is non-empty").id;
    let cfg = RunConfig {
        knobs: TenantKnobs::none().with_latency_goal(LatencyGoal::P95(5_000.0)),
        initial: Some(big),
        seed: 0xB411,
        prewarm_pages: 1_000,
        ..RunConfig::default()
    };
    let trace = Trace::new("quiet", vec![4.0; 40]);

    let mut a = AutoPolicy::with_knobs(cfg.knobs);
    let oracle = OracleLoop::run(&cfg, &trace, workload(), &mut a);
    let mut b = AutoPolicy::with_knobs(cfg.knobs);
    let seam = dasr_core::ClosedLoop::run(&cfg, &trace, workload(), &mut b);

    assert_eq!(seam, oracle);
    assert_eq!(seam.traces_jsonl(), oracle.traces_jsonl());
    assert_eq!(events_jsonl(&seam), events_jsonl(&oracle));
}

fn fleet(n: usize, minutes: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..n)
        .map(|i| TenantSpec {
            cfg: auto_cfg(tenant_seed(0x5EA7, i as u64)),
            trace: wavy_trace(minutes, 4.0 + (i % 3) as f64 * 6.0),
            workload: workload(),
        })
        .collect()
}

/// The oracle fleet reference: sequential `OracleLoop` runs with the same
/// tenant stamping `run_fleet` applies, folded through the same exact-sum
/// monoid.
fn oracle_fleet(tenants: &[TenantSpec<CpuIoWorkload>]) -> (Vec<RunReport>, FleetAccumulator) {
    let mut acc = FleetAccumulator::new();
    let mut reports = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        let mut policy = AutoPolicy::with_knobs(t.cfg.knobs);
        let mut report = OracleLoop::run(&t.cfg, &t.trace, t.workload.clone(), &mut policy);
        for rec in &mut report.intervals {
            rec.trace.tenant = Some(i as u64);
        }
        report.obs.stamp_tenant(i as u64);
        acc.fold_report(&report);
        reports.push(report);
    }
    (reports, acc)
}

#[test]
fn fleet_runs_match_oracle_at_one_two_and_eight_threads() {
    let tenants = fleet(7, 8);
    let (oracle_reports, oracle_acc) = oracle_fleet(&tenants);
    let oracle_summary = oracle_acc.finish();
    let oracle_jsonl: String = oracle_reports.iter().map(events_jsonl).collect();

    for threads in [1usize, 2, 8] {
        let fleet_report = FleetRunner::new(threads).run_fleet(&tenants, |_, t| {
            Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
        });
        assert_eq!(
            fleet_report.reports, oracle_reports,
            "per-tenant reports diverged at threads={threads}"
        );
        assert_eq!(
            fleet_report.fleet_summary(),
            &oracle_summary,
            "folded summary diverged at threads={threads}"
        );
        assert_eq!(
            fleet_report.fleet_metrics(),
            oracle_summary.metrics,
            "fleet registry diverged at threads={threads}"
        );
        assert_eq!(
            fleet_report.events_jsonl(),
            oracle_jsonl,
            "fleet event JSONL bytes diverged at threads={threads}"
        );
    }
}
