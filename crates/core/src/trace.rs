//! Structured decision traces: what every §6 decision *saw* and *did*.
//!
//! A [`DecisionTrace`] records one interval's decision end to end — the
//! categorized per-resource signals, the rules evaluated and fired (in
//! order), the arbitration branch, demanded vs granted steps, the budget
//! and balloon gates, and the final container — so the human-readable
//! explanation is *rendered from* the trace instead of being stored as
//! strings. Traces serialize to JSON lines (one trace per line) with a
//! hand-rolled encoder/decoder: the workspace is offline and carries no
//! serde, and the format below is small enough that an explicit mapping is
//! clearer than a derive anyway. `f64` round-trips exactly because Rust's
//! `Display` prints the shortest string that parses back to the same bits.

use crate::explain::Explanation;
use crate::rules::{Bindings, RuleFire, RuleHistogram, RuleId};
use dasr_containers::{ContainerId, ResourceKind, RESOURCE_KINDS};
use dasr_telemetry::categorize::{
    LatencyVerdict, ResourceCategories, UtilLevel, WaitPctLevel, WaitTimeLevel,
};
use dasr_telemetry::signals::ResourceSignals;
use dasr_telemetry::SignalSet;

use self::json::Json;

/// One resource dimension's slice of a decision trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTrace {
    /// The resource dimension.
    pub kind: ResourceKind,
    /// Median utilization % the rules saw.
    pub util_pct: f64,
    /// Median wait ms the rules saw.
    pub wait_ms: f64,
    /// Median wait share % the rules saw.
    pub wait_pct: f64,
    /// The §4.1 categorical snapshot the predicates matched on.
    pub categories: ResourceCategories,
    /// Whether a SIGNIFICANT increasing trend was present.
    pub trending: bool,
    /// Rules evaluated for this dimension, in table order.
    pub evaluated: Vec<RuleId>,
    /// The rule that fired, if any.
    pub fired: Option<RuleFire>,
}

impl ResourceTrace {
    fn from_signals(sig: &ResourceSignals) -> Self {
        Self {
            kind: sig.kind,
            util_pct: sig.util_pct,
            wait_ms: sig.wait_ms,
            wait_pct: sig.wait_pct,
            categories: sig.categories(),
            trending: sig.increasing_pressure_trend(),
            evaluated: Vec::new(),
            fired: None,
        }
    }

    fn placeholder(kind: ResourceKind) -> Self {
        Self {
            kind,
            util_pct: 0.0,
            wait_ms: 0.0,
            wait_pct: 0.0,
            categories: ResourceCategories {
                util: UtilLevel::Low,
                wait: WaitTimeLevel::Low,
                wait_pct: WaitPctLevel::NotSignificant,
            },
            trending: false,
            evaluated: Vec::new(),
            fired: None,
        }
    }
}

/// The latency slice of a decision trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyTrace {
    /// Observed latency, ms (per the goal's statistic).
    pub observed_ms: Option<f64>,
    /// The goal, ms.
    pub goal_ms: Option<f64>,
    /// The GOOD/BAD verdict.
    pub verdict: LatencyVerdict,
}

/// What the §4.3 ballooning gate did this decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BalloonGate {
    /// Ballooning is disabled for this policy (or the policy has none).
    Disabled,
    /// Enabled, no probe event this decision.
    Idle,
    /// A probe started toward `target_mb`.
    Started {
        /// Probe target, MB.
        target_mb: f64,
    },
    /// The active probe aborted (disk I/O rose).
    Aborted,
    /// A probe committed: memory may shrink to `target_mb`.
    Confirmed {
        /// Confirmed safe pool size, MB.
        target_mb: f64,
    },
}

/// A complete, serializable record of one scaling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTrace {
    /// Billing interval the decision closed.
    pub interval: u64,
    /// Tenant index within a fleet run (stamped by `run_fleet`).
    pub tenant: Option<u64>,
    /// Per-resource signal categories and rule evaluations.
    pub resources: [ResourceTrace; RESOURCE_KINDS.len()],
    /// Latency signals the decision saw.
    pub latency: LatencyTrace,
    /// §6 arbitration rules evaluated, in order.
    pub arbitration: Vec<RuleId>,
    /// The arbitration branch that fired.
    pub branch: RuleId,
    /// Steps the estimator demanded, per resource.
    pub demanded: [i8; RESOURCE_KINDS.len()],
    /// Rung steps actually granted (lockstep catalog: the container-rung
    /// delta, broadcast per dimension).
    pub granted: [i8; RESOURCE_KINDS.len()],
    /// Whether the budget truncated, blocked or forced the move (§5).
    pub budget_limited: bool,
    /// The balloon gate's event this decision (§4.3).
    pub balloon: BalloonGate,
    /// Gate rules that annotated the decision (emergency bypass, budget,
    /// headroom, balloon), in the order they engaged.
    pub gates: Vec<RuleId>,
    /// Container the decision started from.
    pub from: ContainerId,
    /// Container chosen for the next interval.
    pub target: ContainerId,
    /// The decision's explanations (§4) — structured; render with
    /// [`DecisionTrace::render_explanations`].
    pub explanations: Vec<Explanation>,
}

impl DecisionTrace {
    /// A trace seeded from the interval's signals, before any rule ran:
    /// branch [`RuleId::HoldSteady`], target = `current`.
    pub fn from_signals(signals: &SignalSet, current: ContainerId) -> Self {
        Self {
            interval: signals.interval,
            tenant: None,
            resources: RESOURCE_KINDS.map(|k| ResourceTrace::from_signals(signals.resource(k))),
            latency: LatencyTrace {
                observed_ms: signals.latency.observed_ms,
                goal_ms: signals.latency.goal_ms,
                verdict: signals.latency.verdict,
            },
            arbitration: Vec::new(),
            branch: RuleId::HoldSteady,
            demanded: [0; RESOURCE_KINDS.len()],
            granted: [0; RESOURCE_KINDS.len()],
            budget_limited: false,
            balloon: BalloonGate::Disabled,
            gates: Vec::new(),
            from: current,
            target: current,
            explanations: Vec::new(),
        }
    }

    /// A trace seeded from signals *and* a demand estimate (per-resource
    /// evaluations and demanded steps filled in).
    pub fn with_estimate(
        signals: &SignalSet,
        est: &crate::estimator::DemandEstimate,
        current: ContainerId,
    ) -> Self {
        let mut trace = Self::from_signals(signals, current);
        for (slot, demand) in trace.resources.iter_mut().zip(est.demands.iter()) {
            slot.evaluated = demand.evaluated.clone();
            slot.fired = demand.rule;
        }
        trace.demanded = est.per_resource(|d| d.step);
        trace
    }

    /// An all-quiet placeholder trace (for hand-built reports in tests).
    pub fn empty(interval: u64, container: ContainerId) -> Self {
        Self {
            interval,
            tenant: None,
            resources: RESOURCE_KINDS.map(ResourceTrace::placeholder),
            latency: LatencyTrace {
                observed_ms: None,
                goal_ms: None,
                verdict: LatencyVerdict::Good,
            },
            arbitration: Vec::new(),
            branch: RuleId::HoldSteady,
            demanded: [0; RESOURCE_KINDS.len()],
            granted: [0; RESOURCE_KINDS.len()],
            budget_limited: false,
            balloon: BalloonGate::Disabled,
            gates: Vec::new(),
            from: container,
            target: container,
            explanations: Vec::new(),
        }
    }

    /// Records the granted move as a rung delta broadcast across the
    /// (lockstep) dimensions.
    pub fn grant(&mut self, from_rung: u8, target_rung: u8) {
        let delta = target_rung as i8 - from_rung as i8;
        self.granted = [delta; RESOURCE_KINDS.len()];
    }

    /// Renders the human-readable explanation lines from the structured
    /// trace — the only path that produces explanation text.
    pub fn render_explanations(&self) -> Vec<String> {
        self.explanations.iter().map(|e| e.to_string()).collect()
    }

    /// Adds every rule fire in this trace (per-resource fires, the
    /// arbitration branch, and the gates) to `hist`.
    pub fn record_fires(&self, hist: &mut RuleHistogram) {
        for r in &self.resources {
            if let Some(fire) = &r.fired {
                hist.record(fire.id);
            }
        }
        hist.record(self.branch);
        for &gate in &self.gates {
            hist.record(gate);
        }
    }

    /// Serializes the trace as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().write()
    }

    /// Parses a trace back from [`DecisionTrace::to_json_line`] output.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(line)?)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("interval".into(), Json::Num(self.interval as f64)),
            (
                "tenant".into(),
                match self.tenant {
                    Some(t) => Json::Num(t as f64),
                    None => Json::Null,
                },
            ),
            ("from".into(), Json::Num(self.from.0 as f64)),
            ("target".into(), Json::Num(self.target.0 as f64)),
            (
                "resources".into(),
                Json::Arr(self.resources.iter().map(resource_to_json).collect()),
            ),
            (
                "latency".into(),
                Json::Obj(vec![
                    (
                        "observed_ms".into(),
                        Json::from_opt(self.latency.observed_ms),
                    ),
                    ("goal_ms".into(), Json::from_opt(self.latency.goal_ms)),
                    (
                        "verdict".into(),
                        Json::Str(self.latency.verdict.to_string()),
                    ),
                ]),
            ),
            ("arbitration".into(), rule_list_to_json(&self.arbitration)),
            ("branch".into(), Json::Str(self.branch.name().into())),
            (
                "demanded".into(),
                Json::Arr(self.demanded.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
            (
                "granted".into(),
                Json::Arr(self.granted.iter().map(|&s| Json::Num(s as f64)).collect()),
            ),
            ("budget_limited".into(), Json::Bool(self.budget_limited)),
            ("balloon".into(), balloon_to_json(&self.balloon)),
            ("gates".into(), rule_list_to_json(&self.gates)),
            (
                "explanations".into(),
                Json::Arr(self.explanations.iter().map(explanation_to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let resources_json = v.get("resources")?.arr()?;
        if resources_json.len() != RESOURCE_KINDS.len() {
            return Err(format!(
                "expected {} resources, found {}",
                RESOURCE_KINDS.len(),
                resources_json.len()
            ));
        }
        let mut resources = RESOURCE_KINDS.map(ResourceTrace::placeholder);
        for (slot, rj) in resources.iter_mut().zip(resources_json.iter()) {
            *slot = resource_from_json(rj)?;
        }
        let latency = v.get("latency")?;
        Ok(Self {
            interval: v.get("interval")?.num()? as u64,
            tenant: match v.get("tenant")? {
                Json::Null => None,
                other => Some(other.num()? as u64),
            },
            resources,
            latency: LatencyTrace {
                observed_ms: latency.get("observed_ms")?.opt_num()?,
                goal_ms: latency.get("goal_ms")?.opt_num()?,
                verdict: verdict_from_str(latency.get("verdict")?.str()?)?,
            },
            arbitration: rule_list_from_json(v.get("arbitration")?)?,
            branch: rule_from_str(v.get("branch")?.str()?)?,
            demanded: steps_from_json(v.get("demanded")?)?,
            granted: steps_from_json(v.get("granted")?)?,
            budget_limited: v.get("budget_limited")?.bool()?,
            balloon: balloon_from_json(v.get("balloon")?)?,
            gates: rule_list_from_json(v.get("gates")?)?,
            from: ContainerId(v.get("from")?.num()? as u32),
            target: ContainerId(v.get("target")?.num()? as u32),
            explanations: v
                .get("explanations")?
                .arr()?
                .iter()
                .map(explanation_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

// ---- field-level encoders/decoders -------------------------------------

fn rule_list_to_json(rules: &[RuleId]) -> Json {
    Json::Arr(rules.iter().map(|r| Json::Str(r.name().into())).collect())
}

fn rule_list_from_json(v: &Json) -> Result<Vec<RuleId>, String> {
    v.arr()?.iter().map(|j| rule_from_str(j.str()?)).collect()
}

fn rule_from_str(name: &str) -> Result<RuleId, String> {
    RuleId::from_name(name).ok_or_else(|| format!("unknown rule id {name:?}"))
}

fn kind_from_str(name: &str) -> Result<ResourceKind, String> {
    RESOURCE_KINDS
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown resource kind {name:?}"))
}

fn verdict_from_str(s: &str) -> Result<LatencyVerdict, String> {
    match s {
        "GOOD" => Ok(LatencyVerdict::Good),
        "BAD" => Ok(LatencyVerdict::Bad),
        other => Err(format!("unknown latency verdict {other:?}")),
    }
}

fn util_from_str(s: &str) -> Result<UtilLevel, String> {
    match s {
        "LOW" => Ok(UtilLevel::Low),
        "MEDIUM" => Ok(UtilLevel::Medium),
        "HIGH" => Ok(UtilLevel::High),
        other => Err(format!("unknown util level {other:?}")),
    }
}

fn wait_from_str(s: &str) -> Result<WaitTimeLevel, String> {
    match s {
        "LOW" => Ok(WaitTimeLevel::Low),
        "MEDIUM" => Ok(WaitTimeLevel::Medium),
        "HIGH" => Ok(WaitTimeLevel::High),
        other => Err(format!("unknown wait level {other:?}")),
    }
}

fn share_from_str(s: &str) -> Result<WaitPctLevel, String> {
    match s {
        "NOT SIGNIFICANT" => Ok(WaitPctLevel::NotSignificant),
        "SIGNIFICANT" => Ok(WaitPctLevel::Significant),
        other => Err(format!("unknown wait share level {other:?}")),
    }
}

fn steps_from_json(v: &Json) -> Result<[i8; RESOURCE_KINDS.len()], String> {
    let arr = v.arr()?;
    if arr.len() != RESOURCE_KINDS.len() {
        return Err("step vector has wrong arity".into());
    }
    let mut out = [0i8; RESOURCE_KINDS.len()];
    for (slot, j) in out.iter_mut().zip(arr.iter()) {
        *slot = j.num()? as i8;
    }
    Ok(out)
}

fn fire_to_json(fire: &RuleFire) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Str(fire.id.name().into())),
        ("step".into(), Json::Num(fire.step as f64)),
        ("util_pct".into(), Json::Num(fire.bindings.util_pct)),
        ("wait_pct".into(), Json::Num(fire.bindings.wait_pct)),
        (
            "corr_threshold".into(),
            Json::Num(fire.bindings.corr_threshold),
        ),
    ])
}

fn fire_from_json(v: &Json) -> Result<RuleFire, String> {
    Ok(RuleFire {
        id: rule_from_str(v.get("rule")?.str()?)?,
        step: v.get("step")?.num()? as i8,
        bindings: Bindings {
            util_pct: v.get("util_pct")?.num()?,
            wait_pct: v.get("wait_pct")?.num()?,
            corr_threshold: v.get("corr_threshold")?.num()?,
        },
    })
}

fn resource_to_json(r: &ResourceTrace) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(r.kind.name().into())),
        ("util_pct".into(), Json::Num(r.util_pct)),
        ("wait_ms".into(), Json::Num(r.wait_ms)),
        ("wait_pct".into(), Json::Num(r.wait_pct)),
        ("util".into(), Json::Str(r.categories.util.to_string())),
        ("wait".into(), Json::Str(r.categories.wait.to_string())),
        ("share".into(), Json::Str(r.categories.wait_pct.to_string())),
        ("trending".into(), Json::Bool(r.trending)),
        ("evaluated".into(), rule_list_to_json(&r.evaluated)),
        (
            "fired".into(),
            match &r.fired {
                Some(fire) => fire_to_json(fire),
                None => Json::Null,
            },
        ),
    ])
}

fn resource_from_json(v: &Json) -> Result<ResourceTrace, String> {
    Ok(ResourceTrace {
        kind: kind_from_str(v.get("kind")?.str()?)?,
        util_pct: v.get("util_pct")?.num()?,
        wait_ms: v.get("wait_ms")?.num()?,
        wait_pct: v.get("wait_pct")?.num()?,
        categories: ResourceCategories {
            util: util_from_str(v.get("util")?.str()?)?,
            wait: wait_from_str(v.get("wait")?.str()?)?,
            wait_pct: share_from_str(v.get("share")?.str()?)?,
        },
        trending: v.get("trending")?.bool()?,
        evaluated: rule_list_from_json(v.get("evaluated")?)?,
        fired: match v.get("fired")? {
            Json::Null => None,
            other => Some(fire_from_json(other)?),
        },
    })
}

fn balloon_to_json(gate: &BalloonGate) -> Json {
    let (name, target) = match gate {
        BalloonGate::Disabled => ("disabled", None),
        BalloonGate::Idle => ("idle", None),
        BalloonGate::Started { target_mb } => ("started", Some(*target_mb)),
        BalloonGate::Aborted => ("aborted", None),
        BalloonGate::Confirmed { target_mb } => ("confirmed", Some(*target_mb)),
    };
    let mut fields = vec![("gate".to_string(), Json::Str(name.into()))];
    if let Some(mb) = target {
        fields.push(("target_mb".into(), Json::Num(mb)));
    }
    Json::Obj(fields)
}

fn balloon_from_json(v: &Json) -> Result<BalloonGate, String> {
    match v.get("gate")?.str()? {
        "disabled" => Ok(BalloonGate::Disabled),
        "idle" => Ok(BalloonGate::Idle),
        "aborted" => Ok(BalloonGate::Aborted),
        "started" => Ok(BalloonGate::Started {
            target_mb: v.get("target_mb")?.num()?,
        }),
        "confirmed" => Ok(BalloonGate::Confirmed {
            target_mb: v.get("target_mb")?.num()?,
        }),
        other => Err(format!("unknown balloon gate {other:?}")),
    }
}

fn explanation_to_json(e: &Explanation) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let why = match e {
        Explanation::ScaleUpBottleneck { resource, rule } => {
            fields.push(("resource".into(), Json::Str(resource.name().into())));
            fields.push(("rule".into(), fire_to_json(rule)));
            "scale_up_bottleneck"
        }
        Explanation::UtilScaleUp { resource } => {
            fields.push(("resource".into(), Json::Str(resource.name().into())));
            "util_scale_up"
        }
        Explanation::ScaleUpConstrainedByBudget => "budget_constrained",
        Explanation::ScaleDownLowDemand { resources } => {
            fields.push((
                "resources".into(),
                Json::Arr(
                    resources
                        .iter()
                        .map(|k| Json::Str(k.name().into()))
                        .collect(),
                ),
            ));
            "scale_down_low_demand"
        }
        Explanation::ScaleDownLatencyHeadroom {
            observed_ms,
            goal_ms,
        } => {
            fields.push(("observed_ms".into(), Json::Num(*observed_ms)));
            fields.push(("goal_ms".into(), Json::Num(*goal_ms)));
            "scale_down_latency_headroom"
        }
        Explanation::ScaleDownBalloonConfirmed => "scale_down_balloon_confirmed",
        Explanation::NonResourceBottleneck { lock_wait_pct } => {
            fields.push(("lock_wait_pct".into(), Json::Num(*lock_wait_pct)));
            "non_resource_bottleneck"
        }
        Explanation::LatencyBadNoDemand => "latency_bad_no_demand",
        Explanation::BalloonStarted { target_mb } => {
            fields.push(("target_mb".into(), Json::Num(*target_mb)));
            "balloon_started"
        }
        Explanation::BalloonAborted => "balloon_aborted",
        Explanation::Cooldown => "cooldown",
        Explanation::NoChange => "no_change",
    };
    fields.insert(0, ("why".into(), Json::Str(why.into())));
    Json::Obj(fields)
}

fn explanation_from_json(v: &Json) -> Result<Explanation, String> {
    Ok(match v.get("why")?.str()? {
        "scale_up_bottleneck" => Explanation::ScaleUpBottleneck {
            resource: kind_from_str(v.get("resource")?.str()?)?,
            rule: fire_from_json(v.get("rule")?)?,
        },
        "util_scale_up" => Explanation::UtilScaleUp {
            resource: kind_from_str(v.get("resource")?.str()?)?,
        },
        "budget_constrained" => Explanation::ScaleUpConstrainedByBudget,
        "scale_down_low_demand" => Explanation::ScaleDownLowDemand {
            resources: v
                .get("resources")?
                .arr()?
                .iter()
                .map(|j| kind_from_str(j.str()?))
                .collect::<Result<_, _>>()?,
        },
        "scale_down_latency_headroom" => Explanation::ScaleDownLatencyHeadroom {
            observed_ms: v.get("observed_ms")?.num()?,
            goal_ms: v.get("goal_ms")?.num()?,
        },
        "scale_down_balloon_confirmed" => Explanation::ScaleDownBalloonConfirmed,
        "non_resource_bottleneck" => Explanation::NonResourceBottleneck {
            lock_wait_pct: v.get("lock_wait_pct")?.num()?,
        },
        "latency_bad_no_demand" => Explanation::LatencyBadNoDemand,
        "balloon_started" => Explanation::BalloonStarted {
            target_mb: v.get("target_mb")?.num()?,
        },
        "balloon_aborted" => Explanation::BalloonAborted,
        "cooldown" => Explanation::Cooldown,
        "no_change" => Explanation::NoChange,
        other => return Err(format!("unknown explanation {other:?}")),
    })
}

/// A minimal JSON value with a writer and a recursive-descent parser —
/// exactly the subset the trace and [`crate::obs`] formats need. Public
/// so out-of-tree tooling (the `dasr-lint` report writer) can emit the
/// same machine-readable JSONL without pulling in serde.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A (finite) number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, preserving key order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// `Num` for `Some`, `Null` for `None`.
        pub fn from_opt(v: Option<f64>) -> Json {
            v.map_or(Json::Null, Json::Num)
        }

        /// Looks up `key` in an object; errors on non-objects.
        pub fn get(&self, key: &str) -> Result<&Json, String> {
            match self {
                Json::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("missing key {key:?}")),
                _ => Err(format!("expected object looking up {key:?}")),
            }
        }

        /// The value as a number; errors otherwise.
        pub fn num(&self) -> Result<f64, String> {
            match self {
                Json::Num(n) => Ok(*n),
                other => Err(format!("expected number, found {other:?}")),
            }
        }

        /// The value as a number, with `Null` mapping to `None`.
        pub fn opt_num(&self) -> Result<Option<f64>, String> {
            match self {
                Json::Null => Ok(None),
                Json::Num(n) => Ok(Some(*n)),
                other => Err(format!("expected number or null, found {other:?}")),
            }
        }

        /// The value as a string slice; errors otherwise.
        pub fn str(&self) -> Result<&str, String> {
            match self {
                Json::Str(s) => Ok(s),
                other => Err(format!("expected string, found {other:?}")),
            }
        }

        /// The value as a bool; errors otherwise.
        pub fn bool(&self) -> Result<bool, String> {
            match self {
                Json::Bool(b) => Ok(*b),
                other => Err(format!("expected bool, found {other:?}")),
            }
        }

        /// The value as an array slice; errors otherwise.
        pub fn arr(&self) -> Result<&[Json], String> {
            match self {
                Json::Arr(items) => Ok(items),
                other => Err(format!("expected array, found {other:?}")),
            }
        }

        /// Serializes the value to compact single-line JSON.
        pub fn write(&self) -> String {
            let mut out = String::new();
            self.write_into(&mut out);
            out
        }

        fn write_into(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(true) => out.push_str("true"),
                Json::Bool(false) => out.push_str("false"),
                // Rust's f64 Display is shortest-round-trip, so the text
                // parses back to the identical bits. Non-finite values are
                // not representable in JSON; the trace never produces them.
                Json::Num(n) => {
                    debug_assert!(n.is_finite(), "JSON cannot carry {n}");
                    let _ = write!(out, "{n}");
                }
                Json::Str(s) => write_escaped(out, s),
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write_into(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        write_escaped(out, k);
                        out.push(':');
                        v.write_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
            Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Json,
    ) -> Result<Json, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid keyword at byte {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&bytes[*pos..])
            .map_err(|_| "invalid utf-8".to_string())?
            .char_indices();
        loop {
            let Some((offset, c)) = chars.next() else {
                return Err("unterminated string".into());
            };
            match c {
                '"' => {
                    *pos += offset + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else {
                        return Err("dangling escape".into());
                    };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some((_, h)) = chars.next() else {
                                    return Err("truncated \\u escape".into());
                                };
                                code = code * 16
                                    + h.to_digit(16).ok_or("invalid hex in \\u escape")?;
                            }
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> DecisionTrace {
        let mut t = DecisionTrace::empty(42, ContainerId(2));
        t.tenant = Some(7);
        t.resources[0].util_pct = 85.5;
        t.resources[0].categories.util = UtilLevel::High;
        t.resources[0].categories.wait = WaitTimeLevel::High;
        t.resources[0].categories.wait_pct = WaitPctLevel::Significant;
        t.resources[0].trending = true;
        t.resources[0].evaluated = vec![RuleId::HighASurge, RuleId::HighA];
        t.resources[0].fired = Some(RuleFire {
            id: RuleId::HighA,
            step: 1,
            bindings: Bindings {
                util_pct: 85.5,
                wait_pct: 60.25,
                corr_threshold: 0.6,
            },
        });
        t.latency = LatencyTrace {
            observed_ms: Some(150.125),
            goal_ms: Some(100.0),
            verdict: LatencyVerdict::Bad,
        };
        t.arbitration = vec![RuleId::CooldownHold, RuleId::ScaleUpDemand];
        t.branch = RuleId::ScaleUpDemand;
        t.demanded = [1, 0, 0, -1];
        t.granted = [1, 1, 1, 1];
        t.budget_limited = true;
        t.balloon = BalloonGate::Started { target_mb: 1740.5 };
        t.gates = vec![RuleId::EmergencyBypass, RuleId::BudgetConstrained];
        t.target = ContainerId(3);
        t.explanations = vec![
            Explanation::ScaleUpBottleneck {
                resource: ResourceKind::Cpu,
                rule: t.resources[0].fired.unwrap(),
            },
            Explanation::ScaleUpConstrainedByBudget,
        ];
        t
    }

    #[test]
    fn json_line_round_trips_exactly() {
        let t = sample_trace();
        let line = t.to_json_line();
        assert!(!line.contains('\n'), "one trace per line");
        let back = DecisionTrace::from_json_line(&line).unwrap();
        assert_eq!(back, t);
        // And is stable: re-serializing yields the identical line.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn null_fields_round_trip() {
        let t = DecisionTrace::empty(0, ContainerId(0));
        let back = DecisionTrace::from_json_line(&t.to_json_line()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.tenant, None);
        assert_eq!(back.latency.observed_ms, None);
    }

    #[test]
    fn explanations_render_from_structure() {
        let t = sample_trace();
        let lines = t.render_explanations();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Scale-up due to a cpu bottleneck"));
        assert!(lines[0].contains("86% HIGH"), "{}", lines[0]);
        assert_eq!(lines[1], "Scale-up constrained by budget");
    }

    #[test]
    fn histogram_counts_resource_branch_and_gate_fires() {
        let t = sample_trace();
        let mut h = RuleHistogram::new();
        t.record_fires(&mut h);
        assert_eq!(h.count(RuleId::HighA), 1);
        assert_eq!(h.count(RuleId::ScaleUpDemand), 1);
        assert_eq!(h.count(RuleId::EmergencyBypass), 1);
        assert_eq!(h.count(RuleId::BudgetConstrained), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(DecisionTrace::from_json_line("").is_err());
        assert!(DecisionTrace::from_json_line("{}").is_err());
        assert!(DecisionTrace::from_json_line("{\"interval\":1").is_err());
        let good = sample_trace().to_json_line();
        assert!(DecisionTrace::from_json_line(&format!("{good}x")).is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let v = json::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(v.str().unwrap(), "a\"b\\c\nA");
    }
}
