//! Run reports: per-interval timelines and whole-run summaries.

use crate::obs::RunObservability;
use crate::rules::RuleHistogram;
use crate::trace::DecisionTrace;
use dasr_containers::{ContainerId, ResourceVector};
use dasr_engine::waits::WAIT_CLASSES;
use dasr_stats::{percentile, percentile_interpolated};

/// One billing interval's record.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Billing interval index (minute).
    pub minute: u64,
    /// Container in effect *during* the interval.
    pub container: ContainerId,
    /// That container's rung (0 = smallest).
    pub rung: u8,
    /// Cost charged for the interval.
    pub cost: f64,
    /// The container's resources.
    pub allocated: ResourceVector,
    /// Absolute resource usage during the interval (utilization × allocation).
    pub used: ResourceVector,
    /// Aggregated latency per the tenant's goal statistic, ms.
    pub latency_ms: Option<f64>,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Wait share per class, % (order of `WAIT_CLASSES`).
    pub wait_pct: [f64; WAIT_CLASSES.len()],
    /// Buffer-pool usage, MB.
    pub mem_used_mb: f64,
    /// Whether a resize was issued at the end of this interval.
    pub resized: bool,
    /// The decision's full structured trace (explanations are rendered
    /// from it on demand).
    pub trace: DecisionTrace,
}

impl IntervalRecord {
    /// The decision's explanations, rendered from the structured trace.
    pub fn explanations(&self) -> Vec<String> {
        self.trace.render_explanations()
    }

    /// Performance factor (Figure 13): how far inside the goal the
    /// interval's latency is, as a percentage. Positive = inside the goal,
    /// negative = goal missed. `None` without a goal or traffic.
    pub fn performance_factor(&self, goal_ms: f64) -> Option<f64> {
        self.latency_ms.map(|obs| (goal_ms - obs) / goal_ms * 100.0)
    }
}

/// A full closed-loop run.
///
/// Equality is bit-exact over the deterministic run state — intervals,
/// latencies, counters and the [`RunObservability`]'s deterministic
/// sections — which is what the fleet thread-count-invariance property
/// test compares (wall-clock timers are excluded; see
/// [`crate::obs::MetricRegistry`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Trace name.
    pub trace: String,
    /// Per-interval records.
    pub intervals: Vec<IntervalRecord>,
    /// Every completed request's latency, ms (whole run).
    pub all_latencies_ms: Vec<f64>,
    /// Resize operations issued.
    pub resizes: u64,
    /// Requests rejected across the run.
    pub rejected_total: u64,
    /// The run's observability: metrics registry + event stream
    /// (see [`crate::obs`]).
    pub obs: RunObservability,
}

impl RunReport {
    /// Total cost over the run.
    pub fn total_cost(&self) -> f64 {
        self.intervals.iter().map(|i| i.cost).sum()
    }

    /// Average cost per billing interval (the paper's cost metric).
    pub fn avg_cost_per_interval(&self) -> f64 {
        if self.intervals.is_empty() {
            0.0
        } else {
            self.total_cost() / self.intervals.len() as f64
        }
    }

    /// Whole-run 95th-percentile latency, ms (the paper's latency metric).
    pub fn p95_ms(&self) -> Option<f64> {
        percentile(&self.all_latencies_ms, 95.0)
    }

    /// Whole-run interpolated 95th percentile.
    pub fn p95_interpolated_ms(&self) -> Option<f64> {
        percentile_interpolated(&self.all_latencies_ms, 95.0)
    }

    /// Whole-run average latency, ms.
    pub fn avg_ms(&self) -> Option<f64> {
        if self.all_latencies_ms.is_empty() {
            None
        } else {
            Some(self.all_latencies_ms.iter().sum::<f64>() / self.all_latencies_ms.len() as f64)
        }
    }

    /// Fraction of billing intervals that ended with a resize (§7.3 reports
    /// ~11% for Auto/Util and ~15% for Trace).
    pub fn resize_fraction(&self) -> f64 {
        if self.intervals.is_empty() {
            0.0
        } else {
            self.resizes as f64 / self.intervals.len() as f64
        }
    }

    /// Completed requests across the run.
    pub fn completed_total(&self) -> u64 {
        self.intervals.iter().map(|i| i.completed).sum()
    }

    /// Aggregated rule-fire counts across every interval's decision trace
    /// — which rules drove this run's scaling.
    pub fn rule_histogram(&self) -> RuleHistogram {
        let mut hist = RuleHistogram::new();
        for rec in &self.intervals {
            rec.trace.record_fires(&mut hist);
        }
        hist
    }

    /// Every interval's decision trace as JSON lines (one per interval).
    pub fn traces_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.intervals {
            out.push_str(&rec.trace.to_json_line());
            out.push('\n');
        }
        out
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:>6}: p95 {:>8.1} ms | avg cost/interval {:>7.2} | resizes {:>4} ({:>4.1}%) | rejected {}",
            self.policy,
            self.p95_ms().unwrap_or(f64::NAN),
            self.avg_cost_per_interval(),
            self.resizes,
            self.resize_fraction() * 100.0,
            self.rejected_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(minute: u64, cost: f64, latency: Option<f64>, resized: bool) -> IntervalRecord {
        IntervalRecord {
            minute,
            container: ContainerId(0),
            rung: 0,
            cost,
            allocated: ResourceVector::new(1.0, 1024.0, 100.0, 5.0),
            used: ResourceVector::ZERO,
            latency_ms: latency,
            completed: 10,
            rejected: 0,
            wait_pct: [0.0; 7],
            mem_used_mb: 0.0,
            resized,
            trace: DecisionTrace::empty(minute, ContainerId(0)),
        }
    }

    fn report() -> RunReport {
        RunReport {
            policy: "auto".into(),
            workload: "cpuio".into(),
            trace: "trace1".into(),
            intervals: vec![
                record(0, 7.0, Some(10.0), false),
                record(1, 30.0, Some(20.0), true),
                record(2, 30.0, Some(30.0), false),
                record(3, 7.0, None, true),
            ],
            all_latencies_ms: (1..=100).map(f64::from).collect(),
            resizes: 2,
            rejected_total: 1,
            obs: RunObservability::default(),
        }
    }

    #[test]
    fn cost_metrics() {
        let r = report();
        assert_eq!(r.total_cost(), 74.0);
        assert_eq!(r.avg_cost_per_interval(), 18.5);
    }

    #[test]
    fn latency_metrics() {
        let r = report();
        assert_eq!(r.p95_ms(), Some(95.0));
        assert_eq!(r.avg_ms(), Some(50.5));
    }

    #[test]
    fn resize_fraction() {
        let r = report();
        assert_eq!(r.resize_fraction(), 0.5);
    }

    #[test]
    fn performance_factor_signs() {
        let inside = record(0, 7.0, Some(50.0), false);
        assert_eq!(inside.performance_factor(100.0), Some(50.0));
        let outside = record(0, 7.0, Some(150.0), false);
        assert_eq!(outside.performance_factor(100.0), Some(-50.0));
        let idle = record(0, 7.0, None, false);
        assert_eq!(idle.performance_factor(100.0), None);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = report().summary();
        assert!(s.contains("auto"));
        assert!(s.contains("95.0"));
        assert!(s.contains("18.50"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport {
            policy: "x".into(),
            workload: "w".into(),
            trace: "t".into(),
            intervals: vec![],
            all_latencies_ms: vec![],
            resizes: 0,
            rejected_total: 0,
            obs: RunObservability::default(),
        };
        assert_eq!(r.avg_cost_per_interval(), 0.0);
        assert_eq!(r.p95_ms(), None);
        assert_eq!(r.resize_fraction(), 0.0);
    }
}
