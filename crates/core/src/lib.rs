//! # dasr-core — demand estimation, budgeting and the auto-scaling loop
//!
//! The paper's primary contribution (§4–§6), built on the substrates in the
//! sibling crates:
//!
//! - [`estimator`] — the **resource demand estimator**: a manually
//!   constructed hierarchy of rules over categorized telemetry signals that
//!   estimates, per resource dimension, whether the workload demands a
//!   container 0, 1 or 2 rungs larger (or smaller), plus the ballooning
//!   controller for the hard low-memory-demand case (§4.3);
//! - [`budget`] — the **budget manager**: a token-bucket allocation of the
//!   tenant's budgeting-period budget onto billing intervals (§5);
//! - [`knobs`] — the tenant-facing knobs: budget, latency goal,
//!   coarse-grained performance sensitivity (§2.3);
//! - [`rules`] — the **declarative rule engine**: the §4.2/§4.3 scenarios
//!   and the §6 arbitration as static [`rules::RuleTable`]s evaluated
//!   first-match-wins, every fire carrying a stable [`rules::RuleId`];
//! - [`trace`] — the **structured decision trace**: what every decision
//!   saw (categorized signals), which rules it evaluated and fired, what
//!   it demanded vs got, and why — serializable as JSON lines;
//! - [`explain`] — the human-readable explanations every decision carries
//!   (§4: "Scale-up due to a CPU bottleneck", "Scale-up constrained by
//!   budget", …), rendered from the structured trace;
//! - [`policy`] — the [`policy::ScalingPolicy`] trait, the paper's **Auto**
//!   policy (§6) and every baseline of §7.2: **Util** (utilization-only
//!   online scaler), **Max**, **Peak**, **Avg** (offline static) and
//!   **Trace** (offline demand-hugging schedule);
//! - [`runner`] — the closed loop: telemetry + policy + billing, one
//!   decision per billing interval, producing a [`report::RunReport`]. The
//!   loop is generic over the `dasr_telemetry` source/actuator seam with
//!   the engine plugged in as [`runner::source::SimulatorSource`] (pinned
//!   bit-identical to the frozen [`runner::oracle::OracleLoop`]);
//!   [`runner::fleet`] runs N independent tenant loops across a sharded
//!   worker pool with bit-identical results regardless of thread or shard
//!   count, in full (O(tenants)) or streaming-summary (O(shards)) memory
//!   mode ([`runner::shard`]);
//! - [`mod@replay`] — record a run's per-interval samples to JSONL and feed
//!   them back through any policy ([`replay::ReplaySource`]): exact
//!   same-policy round trips, counterfactual policy A/B over recorded
//!   fleets;
//! - [`report`] — per-interval timelines and whole-run summaries (cost per
//!   interval, 95th-percentile latency, resize counts);
//! - [`obs`] — the **fleet observability layer**: a metrics registry
//!   (counters, gauges, fixed-bucket histograms) plus a structured
//!   [`obs::RunEvent`] stream, recorded per interval and merged
//!   deterministically across a fleet — the §7 aggregate-telemetry view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface errors, not crash or chat on stdout:
// unwraps are for tests, printing is for the bench/lint CLIs, and
// float equality is only meaningful in the stats oracle tests.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod budget;
pub mod estimator;
pub mod explain;
pub mod knobs;
pub mod obs;
pub mod policy;
pub mod replay;
pub mod report;
pub mod rules;
pub mod runner;
pub mod trace;

pub use budget::{BudgetManager, BudgetStrategy};
pub use estimator::{DemandEstimate, DemandEstimator, EstimatorConfig};
pub use explain::Explanation;
pub use knobs::{PerfSensitivity, TenantKnobs};
pub use obs::{
    CounterId, CountingSink, EventKind, EventSink, EventVerbosity, GaugeId, HistogramId, JsonlSink,
    MetricRegistry, MetricsAccumulator, NullSink, ObsConfig, RunEvent, RunObservability, TimerId,
    VecSink,
};
pub use policy::{
    AutoPolicy, BalloonCommand, BalloonStatus, PolicyContext, PolicyDecision, ScalingPolicy,
    SchedulePolicy, StaticPolicy, UtilPolicy,
};
pub use replay::{
    record_run, replay, replay_with, RecordingHeader, RecordingSource, ReplayDiff, ReplaySource,
    RunRecording, SampleRecord,
};
pub use report::{IntervalRecord, RunReport};
pub use rules::{RuleFire, RuleHistogram, RuleId, RuleTable};
pub use runner::fleet::{tenant_seed, FleetReport, FleetRunner, TenantSpec};
pub use runner::oracle::OracleLoop;
pub use runner::shard::{FleetAccumulator, FleetSummary, REQUEST_LATENCY_BOUNDS};
pub use runner::source::SimulatorSource;
pub use runner::{ClosedLoop, RunConfig};
pub use trace::json;
pub use trace::{BalloonGate, DecisionTrace};
