//! Tenant-facing auto-scaling knobs (§2.3).
//!
//! The knobs raise the abstraction: tenants reason about *money* and
//! *latency*, never about cores or IOPS. All knobs are optional.

use dasr_telemetry::LatencyGoal;

/// Coarse-grained performance sensitivity for tenants without a precise
/// latency goal (§2.3). `High` scales up more aggressively and down less
/// aggressively; `Low` the opposite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerfSensitivity {
    /// Latency-critical tenant.
    High,
    /// Balanced (default).
    #[default]
    Medium,
    /// Budget-conscious tenant.
    Low,
}

impl PerfSensitivity {
    /// Fraction of the latency goal under which the policy considers
    /// stepping the container down (cost saving, §6). Lower sensitivity →
    /// larger fraction → earlier down-scaling.
    pub fn downscale_margin(self) -> f64 {
        match self {
            PerfSensitivity::High => 0.35,
            PerfSensitivity::Medium => 0.55,
            PerfSensitivity::Low => 0.75,
        }
    }

    /// Intervals to wait after a resize before the next non-emergency
    /// action (hysteresis).
    pub fn cooldown_intervals(self) -> u64 {
        match self {
            PerfSensitivity::High => 1,
            PerfSensitivity::Medium => 2,
            PerfSensitivity::Low => 3,
        }
    }
}

/// A tenant's optional knobs (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantKnobs {
    /// Budget for the budgeting period (a hard constraint, §5). `None` =
    /// unconstrained.
    pub budget: Option<f64>,
    /// Latency goal on average or 95th-percentile latency. `None` = scale
    /// purely on demand.
    pub latency_goal: Option<LatencyGoal>,
    /// Coarse performance sensitivity.
    pub sensitivity: PerfSensitivity,
}

impl TenantKnobs {
    /// No knobs set: pure demand-driven scaling, unconstrained budget.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget > 0.0,
            "budget must be positive"
        );
        self.budget = Some(budget);
        self
    }

    /// Sets the latency goal.
    pub fn with_latency_goal(mut self, goal: LatencyGoal) -> Self {
        self.latency_goal = Some(goal);
        self
    }

    /// Sets the sensitivity.
    pub fn with_sensitivity(mut self, sensitivity: PerfSensitivity) -> Self {
        self.sensitivity = sensitivity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_unconstrained() {
        let k = TenantKnobs::none();
        assert_eq!(k.budget, None);
        assert_eq!(k.latency_goal, None);
        assert_eq!(k.sensitivity, PerfSensitivity::Medium);
    }

    #[test]
    fn builder_chains() {
        let k = TenantKnobs::none()
            .with_budget(10_000.0)
            .with_latency_goal(LatencyGoal::P95(120.0))
            .with_sensitivity(PerfSensitivity::Low);
        assert_eq!(k.budget, Some(10_000.0));
        assert_eq!(k.latency_goal.unwrap().target_ms(), 120.0);
        assert_eq!(k.sensitivity, PerfSensitivity::Low);
    }

    #[test]
    fn sensitivity_orders_margins() {
        assert!(
            PerfSensitivity::High.downscale_margin() < PerfSensitivity::Medium.downscale_margin()
        );
        assert!(
            PerfSensitivity::Medium.downscale_margin() < PerfSensitivity::Low.downscale_margin()
        );
        assert!(
            PerfSensitivity::High.cooldown_intervals() <= PerfSensitivity::Low.cooldown_intervals()
        );
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn invalid_budget_panics() {
        let _ = TenantKnobs::none().with_budget(0.0);
    }
}
