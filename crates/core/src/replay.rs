//! Record and replay closed-loop runs: policy A/B over recorded telemetry.
//!
//! A [`RecordingSource`] wraps any [`TelemetrySource`] and captures the
//! exact per-interval [`TelemetrySample`]s and probe states the loop saw;
//! the capture serializes to JSON lines (via [`crate::json`], no serde)
//! and loads back into a [`ReplaySource`] that feeds the recorded run
//! through *any* policy — the same one (an exactness check, see below) or
//! a different one (offline policy A/B over recorded fleets, the
//! RobustScaler-style offline evaluation named in the roadmap).
//!
//! # Replay fidelity
//!
//! The closed loop is deterministic given its sample sequence: the
//! telemetry manager, budget manager and policies are pure functions of
//! what they observe. Replaying a recording through the **same** policy
//! under the same `RunConfig` therefore reproduces the original decision
//! sequence exactly — identical [`DecisionTrace`]s, rule-fire histogram
//! and interval records (`replay_roundtrip` tests pin this). Only the
//! pooled raw-latency population is absent: recordings carry per-interval
//! aggregates, not every request's latency, so
//! `RunReport::all_latencies_ms` is empty after replay.
//!
//! # The counterfactual caveat
//!
//! Replaying through a **different** policy is an open-loop what-if: the
//! recorded samples reflect the containers the *original* policy chose,
//! and a diverging decision cannot bend that history — the actuator half
//! is a [`NullActuator`] (discard) or a
//! [`CounterfactualActuator`](dasr_telemetry::CounterfactualActuator)
//! (tally). The comparison is "what would policy B have decided given the
//! signals A's run produced", which is exactly the offline-evaluation
//! question, not a re-simulation; use the simulator for closed-loop
//! counterfactuals.

use crate::json::{self, Json};
use crate::policy::ScalingPolicy;
use crate::report::RunReport;
use crate::runner::source::SimulatorSource;
use crate::runner::{ClosedLoop, RunConfig};
use crate::trace::DecisionTrace;
use dasr_containers::RESOURCE_KINDS;
use dasr_engine::waits::WAIT_CLASSES;
use dasr_telemetry::{
    LatencyGoal, NullActuator, ProbeStatus, ResizeActuator, SourcePair, TelemetrySample,
    TelemetrySource,
};
use dasr_workloads::{Trace, Workload};

/// One recorded interval: the sample the loop observed plus the probe
/// state it read — everything interval-shaped that crosses the seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// Tenant index within a recorded fleet, if stamped.
    pub tenant: Option<u64>,
    /// The interval's telemetry sample, verbatim.
    pub sample: TelemetrySample,
    /// Balloon-probe state after the interval (read before actuation).
    pub probe: ProbeStatus,
}

impl SampleRecord {
    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let s = &self.sample;
        let probe = match self.probe {
            ProbeStatus::Inactive => Json::Obj(vec![("active".into(), Json::Bool(false))]),
            ProbeStatus::Active { reached_target } => Json::Obj(vec![
                ("active".into(), Json::Bool(true)),
                ("reached_target".into(), Json::Bool(reached_target)),
            ]),
        };
        Json::Obj(vec![
            (
                "tenant".into(),
                match self.tenant {
                    Some(t) => Json::Num(t as f64),
                    None => Json::Null,
                },
            ),
            ("interval".into(), Json::Num(s.interval as f64)),
            (
                "util_pct".into(),
                Json::Arr(s.util_pct.iter().map(|&v| Json::Num(v)).collect()),
            ),
            (
                "wait_ms".into(),
                Json::Arr(s.wait_ms.iter().map(|&v| Json::Num(v)).collect()),
            ),
            ("latency_ms".into(), Json::from_opt(s.latency_ms)),
            ("avg_latency_ms".into(), Json::from_opt(s.avg_latency_ms)),
            ("completed".into(), Json::Num(s.completed as f64)),
            ("arrivals".into(), Json::Num(s.arrivals as f64)),
            ("rejected".into(), Json::Num(s.rejected as f64)),
            ("mem_used_mb".into(), Json::Num(s.mem_used_mb)),
            ("mem_capacity_mb".into(), Json::Num(s.mem_capacity_mb)),
            ("disk_reads_per_sec".into(), Json::Num(s.disk_reads_per_sec)),
            ("probe".into(), probe),
        ])
        .write()
    }

    /// Parses a record back from [`SampleRecord::to_json_line`] output.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line)?;
        let mut util_pct = [0.0; RESOURCE_KINDS.len()];
        let util_json = v.get("util_pct")?.arr()?;
        if util_json.len() != util_pct.len() {
            return Err("util_pct has wrong arity".into());
        }
        for (slot, j) in util_pct.iter_mut().zip(util_json.iter()) {
            *slot = j.num()?;
        }
        let mut wait_ms = [0.0; WAIT_CLASSES.len()];
        let wait_json = v.get("wait_ms")?.arr()?;
        if wait_json.len() != wait_ms.len() {
            return Err("wait_ms has wrong arity".into());
        }
        for (slot, j) in wait_ms.iter_mut().zip(wait_json.iter()) {
            *slot = j.num()?;
        }
        let probe_json = v.get("probe")?;
        let probe = if probe_json.get("active")?.bool()? {
            ProbeStatus::Active {
                reached_target: probe_json.get("reached_target")?.bool()?,
            }
        } else {
            ProbeStatus::Inactive
        };
        Ok(Self {
            tenant: match v.get("tenant")? {
                Json::Null => None,
                other => Some(other.num()? as u64),
            },
            sample: TelemetrySample {
                interval: v.get("interval")?.num()? as u64,
                util_pct,
                wait_ms,
                latency_ms: v.get("latency_ms")?.opt_num()?,
                avg_latency_ms: v.get("avg_latency_ms")?.opt_num()?,
                completed: v.get("completed")?.num()? as u64,
                arrivals: v.get("arrivals")?.num()? as u64,
                rejected: v.get("rejected")?.num()? as u64,
                mem_used_mb: v.get("mem_used_mb")?.num()?,
                mem_capacity_mb: v.get("mem_capacity_mb")?.num()?,
                disk_reads_per_sec: v.get("disk_reads_per_sec")?.num()?,
            },
            probe,
        })
    }
}

/// Run-level metadata at the head of a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingHeader {
    /// Policy that produced the recording.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Demand-trace name.
    pub trace: String,
    /// Workload seed of the recorded run.
    pub seed: u64,
}

impl RecordingHeader {
    fn to_json_line(&self, intervals: usize) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("dasr-recording".into())),
            ("version".into(), Json::Num(1.0)),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("trace".into(), Json::Str(self.trace.clone())),
            ("intervals".into(), Json::Num(intervals as f64)),
            // Seeds use the full u64 range (SplitMix64 per-tenant streams),
            // which f64 JSON numbers cannot carry exactly — ship as text.
            ("seed".into(), Json::Str(self.seed.to_string())),
        ])
        .write()
    }

    fn from_json_line(line: &str) -> Result<(Self, usize), String> {
        let v = json::parse(line)?;
        if v.get("kind")?.str()? != "dasr-recording" {
            return Err("not a dasr recording header".into());
        }
        let version = v.get("version")?.num()? as u64;
        if version != 1 {
            return Err(format!("unsupported recording version {version}"));
        }
        let header = Self {
            policy: v.get("policy")?.str()?.to_string(),
            workload: v.get("workload")?.str()?.to_string(),
            trace: v.get("trace")?.str()?.to_string(),
            seed: v
                .get("seed")?
                .str()?
                .parse::<u64>()
                .map_err(|e| format!("bad seed: {e}"))?,
        };
        Ok((header, v.get("intervals")?.num()? as usize))
    }
}

/// A recorded run: header plus one [`SampleRecord`] per interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecording {
    /// Run-level metadata.
    pub header: RecordingHeader,
    /// Per-interval records, in interval order.
    pub records: Vec<SampleRecord>,
}

impl RunRecording {
    /// Serializes the recording as JSON lines: one header line, then one
    /// line per interval (each line newline-terminated).
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header.to_json_line(self.records.len());
        out.push('\n');
        for rec in &self.records {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses a recording back from [`RunRecording::to_jsonl`] output.
    /// Blank lines are skipped, so concatenation-friendly files load too.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let head = lines.next().ok_or("empty recording")?;
        let (header, intervals) = RecordingHeader::from_json_line(head)?;
        let records = lines
            .map(SampleRecord::from_json_line)
            .collect::<Result<Vec<_>, _>>()?;
        if records.len() != intervals {
            return Err(format!(
                "header promises {intervals} intervals, found {}",
                records.len()
            ));
        }
        Ok(Self { header, records })
    }

    /// Stamps every record with a fleet tenant index.
    pub fn stamp_tenant(&mut self, tenant: u64) {
        for rec in &mut self.records {
            rec.tenant = Some(tenant);
        }
    }
}

/// A [`TelemetrySource`] decorator that captures everything crossing the
/// seam — the samples and probe states — while delegating to the wrapped
/// backend. Wrap a [`SimulatorSource`] in one to record a run as it
/// happens (see [`record_run`]).
pub struct RecordingSource<S> {
    inner: S,
    records: Vec<SampleRecord>,
}

impl<S> RecordingSource<S> {
    /// Wraps `inner`, capturing into an empty record buffer.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            records: Vec::new(),
        }
    }

    /// The captured records, consuming the recorder.
    pub fn into_records(self) -> Vec<SampleRecord> {
        self.records
    }
}

impl<S: TelemetrySource> TelemetrySource for RecordingSource<S> {
    fn intervals(&self) -> usize {
        self.inner.intervals()
    }

    fn workload_name(&self) -> &str {
        self.inner.workload_name()
    }

    fn trace_name(&self) -> &str {
        self.inner.trace_name()
    }

    fn observe_interval(&mut self, interval: u64, goal: LatencyGoal) -> TelemetrySample {
        let sample = self.inner.observe_interval(interval, goal);
        self.records.push(SampleRecord {
            tenant: None,
            sample,
            probe: self.inner.probe(),
        });
        sample
    }

    // dasr-lint: no-alloc
    fn interval_latencies_ms(&self) -> &[f64] {
        self.inner.interval_latencies_ms()
    }

    // dasr-lint: no-alloc
    fn probe(&self) -> ProbeStatus {
        self.inner.probe()
    }
}

impl<S: ResizeActuator> ResizeActuator for RecordingSource<S> {
    // dasr-lint: no-alloc
    fn apply_resources(&mut self, resources: dasr_containers::ResourceVector) {
        self.inner.apply_resources(resources);
    }

    // dasr-lint: no-alloc
    fn start_balloon(&mut self, target_mb: f64) {
        self.inner.start_balloon(target_mb);
    }

    // dasr-lint: no-alloc
    fn abort_balloon(&mut self) {
        self.inner.abort_balloon();
    }

    // dasr-lint: no-alloc
    fn commit_balloon(&mut self) {
        self.inner.commit_balloon();
    }
}

/// Feeds a [`RunRecording`] back through the closed loop as its
/// [`TelemetrySource`]. Pair with an actuator via
/// [`SourcePair`] — see [`replay`] / [`replay_with`].
pub struct ReplaySource {
    header: RecordingHeader,
    records: Vec<SampleRecord>,
    cursor: usize,
}

impl ReplaySource {
    /// Builds a replay source over `recording`.
    pub fn new(recording: RunRecording) -> Self {
        Self {
            header: recording.header,
            records: recording.records,
            cursor: 0,
        }
    }

    /// The recording's header.
    pub fn header(&self) -> &RecordingHeader {
        &self.header
    }
}

impl TelemetrySource for ReplaySource {
    // dasr-lint: no-alloc
    fn intervals(&self) -> usize {
        self.records.len()
    }

    // dasr-lint: no-alloc
    fn workload_name(&self) -> &str {
        &self.header.workload
    }

    // dasr-lint: no-alloc
    fn trace_name(&self) -> &str {
        &self.header.trace
    }

    fn observe_interval(&mut self, interval: u64, _goal: LatencyGoal) -> TelemetrySample {
        self.cursor = interval as usize;
        self.records[self.cursor].sample
    }

    // dasr-lint: no-alloc
    fn interval_latencies_ms(&self) -> &[f64] {
        // Recordings carry per-interval aggregates, not raw latencies.
        &[]
    }

    // dasr-lint: no-alloc
    fn probe(&self) -> ProbeStatus {
        self.records[self.cursor].probe
    }
}

/// Runs `policy` on the simulator exactly like `ClosedLoop::run` while
/// capturing the run as a [`RunRecording`]. The report is bit-identical to
/// an unrecorded run (the decorator only clones what crosses the seam).
pub fn record_run<W: Workload>(
    cfg: &RunConfig,
    trace: &Trace,
    workload: W,
    policy: &mut dyn ScalingPolicy,
) -> (RunReport, RunRecording) {
    let mut backend = RecordingSource::new(SimulatorSource::new(cfg, trace, workload));
    let report = ClosedLoop::run_source(cfg, &mut backend, policy);
    let recording = RunRecording {
        header: RecordingHeader {
            policy: report.policy.clone(),
            workload: report.workload.clone(),
            trace: report.trace.clone(),
            seed: cfg.seed,
        },
        records: backend.into_records(),
    };
    (report, recording)
}

/// Replays `recording` through `policy` with commands discarded
/// ([`NullActuator`]) — the pure offline evaluation. `cfg` supplies the
/// catalog, knobs and telemetry configuration, which must match the
/// recorded run's for exact same-policy fidelity (see module docs).
pub fn replay(
    cfg: &RunConfig,
    recording: RunRecording,
    policy: &mut dyn ScalingPolicy,
) -> RunReport {
    replay_with(cfg, recording, policy, NullActuator).0
}

/// Replays `recording` through `policy` with commands delivered to
/// `actuator` (e.g. a
/// [`CounterfactualActuator`](dasr_telemetry::CounterfactualActuator) to
/// tally what the policy would have done); returns the report and the
/// actuator.
pub fn replay_with<A: ResizeActuator>(
    cfg: &RunConfig,
    recording: RunRecording,
    policy: &mut dyn ScalingPolicy,
    actuator: A,
) -> (RunReport, A) {
    let mut backend = SourcePair::new(ReplaySource::new(recording), actuator);
    let report = ClosedLoop::run_source(cfg, &mut backend, policy);
    (report, backend.actuator)
}

/// A decision-level comparison of two runs over the same interval count —
/// the replay A/B summary (`examples/replay.rs` prints one per tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayDiff {
    /// Intervals compared.
    pub intervals: usize,
    /// Intervals whose chosen target container differs.
    pub divergent_targets: usize,
    /// First interval where the targets differ, if any.
    pub first_divergence: Option<u64>,
    /// Resize count of run A.
    pub resizes_a: u64,
    /// Resize count of run B.
    pub resizes_b: u64,
}

impl ReplayDiff {
    /// Compares two reports decision by decision (their interval counts
    /// must match — both runs covered the same recording).
    pub fn between(a: &RunReport, b: &RunReport) -> Self {
        debug_assert_eq!(a.intervals.len(), b.intervals.len());
        let mut diff = Self {
            intervals: a.intervals.len(),
            resizes_a: a.resizes,
            resizes_b: b.resizes,
            ..Self::default()
        };
        for (ra, rb) in a.intervals.iter().zip(b.intervals.iter()) {
            if ra.trace.target != rb.trace.target {
                diff.divergent_targets += 1;
                if diff.first_divergence.is_none() {
                    diff.first_divergence = Some(ra.minute);
                }
            }
        }
        diff
    }

    /// True when every decision chose the same target.
    pub fn identical(&self) -> bool {
        self.divergent_targets == 0
    }
}

impl std::fmt::Display for ReplayDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.first_divergence {
            None => write!(
                f,
                "{} intervals, decisions identical ({} vs {} resizes)",
                self.intervals, self.resizes_a, self.resizes_b
            ),
            Some(first) => write!(
                f,
                "{} intervals, {} divergent targets (first at minute {first}), {} vs {} resizes",
                self.intervals, self.divergent_targets, self.resizes_a, self.resizes_b
            ),
        }
    }
}

/// The decision-trace sequence of a report (borrowed, interval order) —
/// the object replay fidelity is defined over.
pub fn decision_traces(report: &RunReport) -> Vec<&DecisionTrace> {
    report.intervals.iter().map(|r| &r.trace).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    fn recording() -> (RunReport, RunRecording) {
        let cfg = RunConfig::default();
        let trace = Trace::new("flat", vec![10.0; 4]);
        let mut policy = StaticPolicy::max(&cfg.catalog);
        record_run(
            &cfg,
            &trace,
            CpuIoWorkload::new(CpuIoConfig::small()),
            &mut policy,
        )
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let cfg = RunConfig::default();
        let trace = Trace::new("flat", vec![10.0; 4]);
        let mut policy = StaticPolicy::max(&cfg.catalog);
        let plain = crate::runner::ClosedLoop::run(
            &cfg,
            &trace,
            CpuIoWorkload::new(CpuIoConfig::small()),
            &mut policy,
        );
        let (recorded, recording) = recording();
        assert_eq!(recorded, plain);
        assert_eq!(recording.records.len(), 4);
        assert_eq!(recording.header.trace, "flat");
    }

    #[test]
    fn sample_record_round_trips_exactly() {
        let (_, recording) = recording();
        for rec in &recording.records {
            let line = rec.to_json_line();
            assert!(!line.contains('\n'));
            let back = SampleRecord::from_json_line(&line).unwrap();
            assert_eq!(&back, rec);
            assert_eq!(back.to_json_line(), line);
        }
    }

    #[test]
    fn recording_jsonl_round_trips_exactly() {
        let (_, mut recording) = recording();
        recording.header.seed = u64::MAX - 12345; // not f64-representable
        recording.stamp_tenant(3);
        let text = recording.to_jsonl();
        let back = RunRecording::from_jsonl(&text).unwrap();
        assert_eq!(back, recording);
        assert_eq!(back.records[0].tenant, Some(3));
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn from_jsonl_rejects_malformed_input() {
        assert!(RunRecording::from_jsonl("").is_err());
        assert!(RunRecording::from_jsonl("{\"kind\":\"other\"}").is_err());
        let (_, recording) = recording();
        let text = recording.to_jsonl();
        // Drop the last record: count no longer matches the header.
        let truncated: Vec<&str> = text.lines().collect();
        assert!(RunRecording::from_jsonl(&truncated[..truncated.len() - 1].join("\n")).is_err());
    }

    #[test]
    fn probe_states_survive_the_round_trip() {
        let rec = SampleRecord {
            tenant: None,
            sample: recording().1.records[0].sample,
            probe: ProbeStatus::Active {
                reached_target: true,
            },
        };
        let back = SampleRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back.probe, rec.probe);
    }

    #[test]
    fn replay_reproduces_interval_records() {
        let cfg = RunConfig::default();
        let (original, recording) = recording();
        let mut policy = StaticPolicy::max(&cfg.catalog);
        let replayed = replay(&cfg, recording, &mut policy);
        assert_eq!(replayed.intervals, original.intervals);
        assert_eq!(replayed.resizes, original.resizes);
        assert!(
            replayed.all_latencies_ms.is_empty(),
            "recordings carry aggregates, not raw latencies"
        );
    }
}
