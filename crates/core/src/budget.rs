//! The Budget Manager (§5): token-bucket allocation of a budgeting-period
//! budget onto billing intervals.
//!
//! A tenant specifies budget `B` over `n` billing intervals. The manager
//! guarantees `Σ Cᵢ ≤ B` while always leaving enough for the cheapest
//! container (`Bᵢ ≥ Cmin`), and shapes how aggressively the surplus
//! `B − n·Cmin` may be burst:
//!
//! - **Aggressive** — start with a full bucket (`TI = D`): early bursts can
//!   spend freely, at the risk of being pinned to the cheapest container at
//!   the end of the period;
//! - **Conservative** — `TI = K·Cmax`, `TR = (B − TI)/(n−1)`: bursts are
//!   limited to roughly `K` intervals of the most expensive container plus
//!   saved surplus, preserving budget for late bursts.

use dasr_stats::TokenBucket;

/// Surplus-shaping strategies (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStrategy {
    /// `TI = D`: the full burst allowance is available immediately.
    Aggressive,
    /// `TI = K·Cmax`, `TR = (B − TI)/(n−1)`: limit the initial burst to
    /// about `K` intervals of the largest container.
    Conservative {
        /// Burst allowance in intervals of the most expensive container.
        k: u32,
    },
}

/// Allocates the budgeting-period budget across billing intervals.
#[derive(Debug, Clone)]
pub struct BudgetManager {
    bucket: TokenBucket,
    budget: f64,
    intervals: u64,
    elapsed: u64,
    spent: f64,
    min_cost: f64,
}

impl BudgetManager {
    /// Creates a manager for budget `budget` over `intervals` billing
    /// intervals, with container costs spanning `[min_cost, max_cost]`.
    ///
    /// # Panics
    /// Panics unless `budget ≥ intervals · min_cost` (otherwise even the
    /// cheapest container is unaffordable) and parameters are positive.
    pub fn new(
        budget: f64,
        intervals: u64,
        min_cost: f64,
        max_cost: f64,
        strategy: BudgetStrategy,
    ) -> Self {
        assert!(
            budget.is_finite() && budget > 0.0,
            "budget must be positive"
        );
        assert!(intervals > 0, "need at least one interval");
        assert!(
            min_cost > 0.0 && max_cost >= min_cost,
            "invalid cost bounds"
        );
        assert!(
            budget >= intervals as f64 * min_cost,
            "budget {budget} cannot afford the cheapest container for {intervals} intervals"
        );
        let n = intervals as f64;
        // D = B − (n−1)·Cmin bounds any burst so Σ Cᵢ ≤ B.
        let depth = budget - (n - 1.0) * min_cost;
        let (fill_rate, initial) = match strategy {
            BudgetStrategy::Aggressive => (min_cost, depth),
            BudgetStrategy::Conservative { k } => {
                assert!(k > 0, "conservative K must be positive");
                let ti = (f64::from(k) * max_cost).min(depth);
                let tr = if intervals > 1 {
                    ((budget - ti) / (n - 1.0)).max(min_cost)
                } else {
                    min_cost
                };
                (tr, ti)
            }
        };
        Self {
            bucket: TokenBucket::new(depth, fill_rate, initial),
            budget,
            intervals,
            elapsed: 0,
            spent: 0.0,
            min_cost,
        }
    }

    /// The budget available for the next billing interval (`Bᵢ`).
    pub fn available(&self) -> f64 {
        self.bucket.available()
    }

    /// Total spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The whole-period budget (`B`).
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Remaining whole-period budget (`B − spent`).
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Billing intervals elapsed.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Configured number of intervals in the budgeting period.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Charges the cost of the interval that just ended and refills the
    /// bucket for the next one. Returns `false` (and charges nothing) if
    /// `cost` exceeds the available tokens — callers that only select
    /// containers with `cost ≤ available()` never see that.
    pub fn charge(&mut self, cost: f64) -> bool {
        assert!(cost.is_finite() && cost >= 0.0, "invalid cost");
        let ok = self.bucket.try_consume(cost);
        if ok {
            self.spent += cost;
        }
        self.elapsed += 1;
        if self.elapsed < self.intervals {
            self.bucket.refill();
        }
        ok
    }

    /// The guaranteed per-interval floor (`Cmin`).
    pub fn min_cost(&self) -> f64 {
        self.min_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CMIN: f64 = 7.0;
    const CMAX: f64 = 270.0;

    #[test]
    fn aggressive_starts_full() {
        let n = 100;
        let b = 5_000.0;
        let m = BudgetManager::new(b, n, CMIN, CMAX, BudgetStrategy::Aggressive);
        let depth = b - (n as f64 - 1.0) * CMIN;
        assert_eq!(m.available(), depth);
    }

    #[test]
    fn conservative_starts_with_k_bursts() {
        let m = BudgetManager::new(
            50_000.0,
            1_000,
            CMIN,
            CMAX,
            BudgetStrategy::Conservative { k: 3 },
        );
        assert_eq!(m.available(), 3.0 * CMAX);
    }

    #[test]
    fn total_spend_never_exceeds_budget_aggressive() {
        let n = 200u64;
        let budget = 4_000.0;
        let mut m = BudgetManager::new(budget, n, CMIN, CMAX, BudgetStrategy::Aggressive);
        let mut spent = 0.0;
        for i in 0..n {
            // Greedy adversary: always buy the biggest affordable tier.
            let cost = if m.available() >= CMAX {
                CMAX
            } else if i % 2 == 0 {
                CMIN
            } else {
                m.available().min(30.0)
            };
            assert!(m.charge(cost), "selected cost must always be chargeable");
            spent += cost;
        }
        assert!(spent <= budget + 1e-6, "spent {spent} > budget {budget}");
        assert_eq!(m.spent(), spent);
    }

    #[test]
    fn cheapest_container_always_affordable() {
        // Even after a maximal early burst, Bᵢ ≥ Cmin at every decision.
        let n = 500u64;
        let mut m = BudgetManager::new(
            n as f64 * CMIN + 3.0 * CMAX,
            n,
            CMIN,
            CMAX,
            BudgetStrategy::Aggressive,
        );
        for _ in 0..n {
            assert!(m.available() >= CMIN - 1e-9, "B_i {} < Cmin", m.available());
            let cost = if m.available() >= CMAX { CMAX } else { CMIN };
            assert!(m.charge(cost));
        }
    }

    #[test]
    fn aggressive_burst_exhausts_then_pins_to_cmin() {
        // Sustained max demand: after the burst budget drains, only the
        // cheapest container is affordable (the §5 trade-off).
        let n = 100u64;
        let budget = n as f64 * CMIN + 2.0 * CMAX; // room for ~2 max intervals
        let mut m = BudgetManager::new(budget, n, CMIN, CMAX, BudgetStrategy::Aggressive);
        let mut max_intervals = 0;
        for _ in 0..n {
            if m.available() >= CMAX {
                m.charge(CMAX);
                max_intervals += 1;
            } else {
                m.charge(CMIN);
            }
        }
        assert!(
            (2..=3).contains(&max_intervals),
            "expected ~2 max-tier intervals, got {max_intervals}"
        );
        assert!(m.spent() <= budget + 1e-6);
    }

    #[test]
    fn conservative_saves_for_late_bursts() {
        // Identical budgets; late burst demand. Conservative affords more
        // max-tier intervals late than aggressive does after early burn.
        let n = 60u64;
        let budget = n as f64 * CMIN + 6.0 * CMAX;
        let run = |strategy| {
            let mut m = BudgetManager::new(budget, n, CMIN, CMAX, strategy);
            let mut late_max = 0;
            for i in 0..n {
                let burst = !(10..50).contains(&i); // early and late bursts
                let cost = if burst && m.available() >= CMAX {
                    if i >= 50 {
                        late_max += 1;
                    }
                    CMAX
                } else {
                    CMIN
                };
                m.charge(cost);
            }
            late_max
        };
        let aggressive_late = run(BudgetStrategy::Aggressive);
        let conservative_late = run(BudgetStrategy::Conservative { k: 2 });
        assert!(
            conservative_late >= aggressive_late,
            "conservative {conservative_late} < aggressive {aggressive_late}"
        );
    }

    #[test]
    fn accessors() {
        let mut m = BudgetManager::new(1_000.0, 10, CMIN, CMAX, BudgetStrategy::Aggressive);
        assert_eq!(m.intervals(), 10);
        assert_eq!(m.elapsed(), 0);
        assert_eq!(m.min_cost(), CMIN);
        m.charge(100.0);
        assert_eq!(m.elapsed(), 1);
        assert_eq!(m.remaining(), 900.0);
    }

    #[test]
    fn overcharge_is_rejected_without_state_damage() {
        let mut m = BudgetManager::new(100.0, 10, 7.0, 270.0, BudgetStrategy::Aggressive);
        let avail = m.available();
        assert!(!m.charge(avail + 50.0));
        assert_eq!(m.spent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot afford")]
    fn insufficient_budget_panics() {
        let _ = BudgetManager::new(10.0, 100, CMIN, CMAX, BudgetStrategy::Aggressive);
    }
}
