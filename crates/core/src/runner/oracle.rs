//! The pre-refactor closed loop, frozen as an equivalence oracle.
//!
//! [`OracleLoop::run`] is the loop body exactly as it stood before the
//! `TelemetrySource`/`ResizeActuator` seam was cut through
//! [`ClosedLoop`](super::ClosedLoop): it drives `dasr_engine::Engine`
//! directly, with no trait in between. It exists for two jobs and must not
//! be "improved":
//!
//! - the `loop_equivalence` integration tests pin the generic loop to this
//!   one — bit-identical `RunReport`s, metrics registries and event JSONL —
//!   the same way PR 4 pinned the indexed engine to `OracleEngine`;
//! - the `micro_loop` bench measures the seam's dispatch overhead against
//!   these direct calls (the `< 2%` acceptance bar in `BENCH_loop.json`).
//!
//! Any behavioral edit here *widens* the oracle instead of catching a
//! regression, so the only acceptable changes are ones that keep this file
//! byte-for-byte semantically identical to the pre-seam loop.

use crate::budget::BudgetManager;
use crate::obs::{IntervalObservation, RunObservability, TimerId};
use crate::policy::{BalloonCommand, BalloonStatus, PolicyContext, ScalingPolicy};
use crate::report::{IntervalRecord, RunReport};
use crate::runner::RunConfig;
use dasr_containers::ResourceVector;
use dasr_engine::{Engine, SimTime};
use dasr_telemetry::{LatencyGoal, TelemetryManager, TelemetrySample};
use dasr_workloads::{Trace, TraceDriver, Workload};

/// The frozen pre-seam experiment driver (see module docs).
pub struct OracleLoop;

impl OracleLoop {
    /// Runs `policy` over `trace` × `workload` with direct engine calls —
    /// the exact pre-refactor `ClosedLoop::run` body.
    pub fn run<W: Workload>(
        cfg: &RunConfig,
        trace: &Trace,
        workload: W,
        policy: &mut dyn ScalingPolicy,
    ) -> RunReport {
        let catalog = &cfg.catalog;
        let minutes = trace.minutes();
        let initial_id = cfg.initial.unwrap_or_else(|| {
            catalog
                .iter()
                .find(|c| c.rung == 2)
                .unwrap_or_else(|| catalog.smallest())
                .id
        });
        let mut current = catalog
            .get(initial_id)
            .expect("initial container must exist")
            .clone();

        let mut engine = Engine::new(cfg.engine, current.resources);
        if cfg.prewarm_pages > 0 {
            engine.prewarm(cfg.prewarm_pages);
        }
        let mut telemetry_cfg = cfg.telemetry;
        telemetry_cfg.latency_goal = cfg.knobs.latency_goal;
        let mut tm = TelemetryManager::new(telemetry_cfg);
        // The aggregation statistic even without a goal: p95 (paper §7
        // reports 95th percentiles).
        let goal_stat = cfg
            .knobs
            .latency_goal
            .unwrap_or(LatencyGoal::P95(f64::INFINITY));

        let mut budget = cfg.knobs.budget.map(|b| {
            BudgetManager::new(
                b,
                minutes as u64,
                catalog.min_cost(),
                catalog.max_cost(),
                cfg.budget_strategy,
            )
        });

        let mut driver = TraceDriver::new(trace.clone(), workload, cfg.seed);
        let workload_name = driver.workload_name().to_string();

        let mut intervals = Vec::with_capacity(minutes);
        let mut all_latencies = Vec::new();
        let mut resizes = 0u64;
        let mut rejected_total = 0u64;
        let mut obs = RunObservability::new(cfg.obs.verbosity);
        // Reused across intervals: `end_interval_into` ping-pongs the
        // latency buffer with the engine, so the per-minute hot loop does
        // not allocate telemetry.
        let mut stats = dasr_engine::IntervalStats::default();

        for minute in 0..minutes {
            driver.submit_minute(minute, &mut engine);
            engine.run_until(SimTime::from_mins(minute as u64 + 1));
            engine.end_interval_into(&mut stats);
            rejected_total += stats.rejected;
            all_latencies.extend_from_slice(&stats.latencies_ms);

            let sample = TelemetrySample::from_interval(minute as u64, &stats, goal_stat);
            let latency_ms = sample.latency_ms;
            let wait_pct = {
                let mut out = [0.0; dasr_engine::WAIT_CLASSES.len()];
                for class in dasr_engine::WAIT_CLASSES {
                    out[class.index()] = sample.wait_pct(class);
                }
                out
            };
            // §3 signal computation, timed (wall-clock; the timer section
            // is excluded from the determinism contract).
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::SignalsNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let signals = tm.observe(sample);
            obs.metrics
                .observe_ns(TimerId::SignalsNs, t0.elapsed().as_nanos() as u64);

            // Bill the interval that just ran.
            let cost = current.cost;
            if let Some(b) = budget.as_mut() {
                let ok = b.charge(cost);
                debug_assert!(ok, "policy selected an unaffordable container");
            }

            let used = ResourceVector::new(
                stats.cpu_util_pct / 100.0 * current.resources.cpu_cores,
                stats.mem_used_mb,
                stats.disk_util_pct / 100.0 * current.resources.disk_iops,
                stats.log_util_pct / 100.0 * current.resources.log_mbps,
            );

            let balloon_status = if engine.balloon_active() {
                BalloonStatus::Active {
                    reached_target: engine.balloon_reached_target(),
                }
            } else {
                BalloonStatus::Inactive
            };
            let ctx = PolicyContext {
                signals: &signals,
                current: &current,
                catalog,
                available_budget: budget.as_ref().map(|b| b.available()),
                balloon: balloon_status,
            };
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::DecideNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let decision = policy.decide(&ctx);
            obs.metrics
                .observe_ns(TimerId::DecideNs, t0.elapsed().as_nanos() as u64);

            match decision.balloon {
                BalloonCommand::None => {}
                BalloonCommand::Start { target_mb } => engine.start_balloon(target_mb),
                BalloonCommand::Abort => engine.abort_balloon(),
                BalloonCommand::Commit => engine.commit_balloon(),
            }

            let resized = decision.target != current.id;
            let target = decision.target;
            let target_rung = catalog
                .get(target)
                .expect("policy picked an unknown container")
                .rung;
            obs.record_interval(IntervalObservation {
                trace: &decision.trace,
                latency_ms,
                completed: stats.completed,
                rejected: stats.rejected,
                from_rung: current.rung,
                to_rung: target_rung,
                budget_headroom_pct: budget.as_ref().map(|b| b.remaining() / b.budget() * 100.0),
            });
            intervals.push(IntervalRecord {
                minute: minute as u64,
                container: current.id,
                rung: current.rung,
                cost,
                allocated: current.resources,
                used,
                latency_ms,
                completed: stats.completed,
                rejected: stats.rejected,
                wait_pct,
                mem_used_mb: stats.mem_used_mb,
                resized,
                trace: decision.trace,
            });

            if resized {
                current = catalog
                    .get(target)
                    .expect("policy picked an unknown container")
                    .clone();
                engine.apply_resources(current.resources);
                resizes += 1;
            }
        }

        obs.finish(current.rung, budget.as_ref().map(BudgetManager::remaining));

        RunReport {
            policy: policy.name().to_string(),
            workload: workload_name,
            trace: trace.name.clone(),
            intervals,
            all_latencies_ms: all_latencies,
            resizes,
            rejected_total,
            obs,
        }
    }
}
