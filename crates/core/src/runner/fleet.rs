//! Parallel multi-tenant execution (§7 scale-out).
//!
//! A DBaaS control plane runs the paper's loop for *every* tenant on a
//! server, every billing interval. The tenants are independent — no shared
//! mutable state crosses the loop — so the fleet is embarrassingly
//! parallel. [`FleetRunner`] exploits that with plain `std::thread::scope`
//! workers over contiguous index chunks.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of thread count**. Each work item
//! `i` is a pure function of the inputs at index `i` (per-tenant seeds are
//! derived from the fleet seed with a SplitMix64 hash, never from shared
//! RNG state), and [`FleetRunner::map`] writes each result into slot `i` of
//! the output, so neither scheduling nor chunking can reorder or perturb
//! anything. `FleetRunner::new(1)` is the sequential reference.

use crate::obs::{MetricRegistry, RunObservability};
use crate::policy::ScalingPolicy;
use crate::report::RunReport;
use crate::rules::RuleHistogram;
use crate::runner::{ClosedLoop, RunConfig};
use dasr_stats::{percentile, percentile_interpolated};
use dasr_workloads::{Trace, Workload};

/// Executes independent per-tenant closed loops across OS threads.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunner {
    threads: usize,
}

impl FleetRunner {
    /// Creates a runner using `threads` worker threads (clamped to ≥ 1).
    /// One thread means plain sequential execution on the caller's thread.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Creates a runner sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes `f(0), f(1), …, f(n-1)` across the worker threads and
    /// returns the results in index order.
    ///
    /// `f` must be a pure function of its index for the determinism
    /// contract to hold; the runner guarantees output order and exactly one
    /// call per index either way. Work is split into at most `threads`
    /// contiguous chunks, one scoped thread per chunk.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let chunk = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            for (c, slice) in slots.chunks_mut(chunk).enumerate() {
                let start = c * chunk;
                scope.spawn(move || {
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(f(start + offset));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was assigned to exactly one worker"))
            .collect()
    }

    /// Runs one closed loop per tenant and aggregates the reports.
    ///
    /// `make_policy` builds each tenant's policy inside the worker that
    /// runs it (policies are stateful and not shared). Tenants are
    /// independent by construction, so the [determinism
    /// contract](self#determinism-contract) applies to the whole fleet run.
    pub fn run_fleet<W, F>(&self, tenants: &[TenantSpec<W>], make_policy: F) -> FleetReport
    where
        W: Workload + Clone + Sync,
        F: Fn(usize, &TenantSpec<W>) -> Box<dyn ScalingPolicy> + Sync,
    {
        let reports = self.map(tenants.len(), |i| {
            let tenant = &tenants[i];
            let mut policy = make_policy(i, tenant);
            let mut report = ClosedLoop::run(
                &tenant.cfg,
                &tenant.trace,
                tenant.workload.clone(),
                policy.as_mut(),
            );
            // Stamp the tenant index into every decision trace and run
            // event so fleet-wide JSONL dumps stay attributable (pure
            // function of `i`, so the determinism contract is untouched).
            for rec in &mut report.intervals {
                rec.trace.tenant = Some(i as u64);
            }
            report.obs.stamp_tenant(i as u64);
            report
        });
        FleetReport { reports }
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// Derives tenant `index`'s seed from a fleet-wide seed.
///
/// SplitMix64 over `fleet_seed + index`: statistically independent streams
/// per tenant with no shared RNG state, which is what makes fleet execution
/// order-free (see the [determinism contract](self#determinism-contract)).
pub fn tenant_seed(fleet_seed: u64, index: u64) -> u64 {
    let mut z = fleet_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant's closed-loop inputs.
#[derive(Debug, Clone)]
pub struct TenantSpec<W: Workload> {
    /// Run configuration; `cfg.seed` should already be tenant-specific
    /// (see [`tenant_seed`]).
    pub cfg: RunConfig,
    /// The tenant's demand trace.
    pub trace: Trace,
    /// The tenant's workload (cloned into the worker).
    pub workload: W,
}

/// Aggregated result of a fleet run, in tenant order.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-tenant reports, index-aligned with the input tenant slice.
    pub reports: Vec<RunReport>,
}

impl FleetReport {
    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Total cost across the fleet.
    pub fn total_cost(&self) -> f64 {
        self.reports.iter().map(RunReport::total_cost).sum()
    }

    /// Mean per-interval cost across all tenants' intervals.
    pub fn avg_cost_per_interval(&self) -> f64 {
        let intervals: usize = self.reports.iter().map(|r| r.intervals.len()).sum();
        if intervals == 0 {
            0.0
        } else {
            self.total_cost() / intervals as f64
        }
    }

    /// Completed requests across the fleet.
    pub fn completed_total(&self) -> u64 {
        self.reports.iter().map(RunReport::completed_total).sum()
    }

    /// Rejected requests across the fleet.
    pub fn rejected_total(&self) -> u64 {
        self.reports.iter().map(|r| r.rejected_total).sum()
    }

    /// Resize operations across the fleet.
    pub fn resizes_total(&self) -> u64 {
        self.reports.iter().map(|r| r.resizes).sum()
    }

    /// Rule-fire counts merged across every tenant's run — the fleet-wide
    /// picture of which §4/§6 rules drove scaling.
    pub fn rule_histogram(&self) -> RuleHistogram {
        let mut hist = RuleHistogram::new();
        for r in &self.reports {
            hist.merge(&r.rule_histogram());
        }
        hist
    }

    /// The fleet-wide [`MetricRegistry`]: every tenant's registry merged
    /// in tenant-index order — a pure fold, so the result is bit-identical
    /// for any thread count (timers aside; see [`MetricRegistry`]).
    pub fn fleet_metrics(&self) -> MetricRegistry {
        let mut merged = MetricRegistry::new();
        for r in &self.reports {
            merged.merge(&r.obs.metrics);
        }
        merged
    }

    /// The fleet-wide observability: merged metrics plus every tenant's
    /// event stream concatenated in tenant-index order (events carry their
    /// tenant stamp from [`FleetRunner::run_fleet`]).
    pub fn fleet_obs(&self) -> RunObservability {
        let mut merged = RunObservability::default();
        for r in &self.reports {
            merged.merge(&r.obs);
        }
        merged
    }

    /// The fleet's event stream as JSON lines, tenant by tenant.
    pub fn events_jsonl(&self) -> String {
        self.fleet_obs().events_jsonl()
    }

    /// 95th-percentile latency over the *pooled* request population, ms.
    pub fn p95_ms(&self) -> Option<f64> {
        percentile(&self.pooled_latencies(), 95.0)
    }

    /// Interpolated pooled 95th percentile, ms.
    pub fn p95_interpolated_ms(&self) -> Option<f64> {
        percentile_interpolated(&self.pooled_latencies(), 95.0)
    }

    fn pooled_latencies(&self) -> Vec<f64> {
        let total: usize = self.reports.iter().map(|r| r.all_latencies_ms.len()).sum();
        let mut pooled = Vec::with_capacity(total);
        for r in &self.reports {
            pooled.extend_from_slice(&r.all_latencies_ms);
        }
        pooled
    }

    /// One-line fleet summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "fleet of {:>4}: p95 {:>8.1} ms | avg cost/interval {:>7.2} | resizes {:>5} | rejected {}",
            self.len(),
            self.p95_ms().unwrap_or(f64::NAN),
            self.avg_cost_per_interval(),
            self.resizes_total(),
            self.rejected_total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = FleetRunner::new(threads).map(17, |i| i * i);
            let expect: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let r = FleetRunner::new(4);
        assert!(r.map(0, |i| i).is_empty());
        assert_eq!(r.map(1, |i| i + 10), vec![10]);
        assert_eq!(FleetRunner::new(0).threads(), 1);
    }

    #[test]
    fn tenant_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..1000).map(|i| tenant_seed(0xDA5A, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(tenant_seed(1, 0), tenant_seed(2, 0));
    }

    fn small_fleet(n: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
        (0..n)
            .map(|i| TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(7, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("t", vec![5.0 + i as f64; 3]),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            })
            .collect()
    }

    #[test]
    fn fleet_results_are_thread_count_invariant() {
        let tenants = small_fleet(6);
        let run = |threads| {
            FleetRunner::new(threads).run_fleet(&tenants, |_, t| {
                Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>
            })
        };
        let sequential = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            assert_eq!(parallel.len(), sequential.len());
            for (a, b) in parallel.reports.iter().zip(sequential.reports.iter()) {
                assert_eq!(
                    a.all_latencies_ms, b.all_latencies_ms,
                    "threads = {threads}"
                );
                assert_eq!(a.total_cost(), b.total_cost());
                assert_eq!(a.resizes, b.resizes);
            }
        }
    }

    #[test]
    fn fleet_report_aggregates() {
        let tenants = small_fleet(3);
        let report = FleetRunner::new(2).run_fleet(&tenants, |_, t| {
            Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>
        });
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
        assert_eq!(
            report.completed_total(),
            report
                .reports
                .iter()
                .map(|r| r.completed_total())
                .sum::<u64>()
        );
        assert!(report.total_cost() > 0.0);
        assert!(report.p95_ms().is_some());
        assert!(report.summary().contains("fleet of"));
    }
}
