//! Sharded parallel multi-tenant execution (§7 scale-out).
//!
//! A DBaaS control plane runs the paper's loop for *every* tenant on a
//! server, every billing interval. The tenants are independent — no shared
//! mutable state crosses the loop — so the fleet is embarrassingly
//! parallel. [`FleetRunner`] exploits that with a fixed worker pool over
//! *shards*: the tenant index space is split into contiguous chunks and a
//! shared atomic cursor hands the next unclaimed shard to whichever worker
//! frees up first. Dynamic claiming keeps all cores busy even when tenant
//! costs are skewed (the old one-chunk-per-thread split stalled on the
//! slowest chunk); sharding keeps claim traffic to one atomic op per shard
//! instead of one per tenant.
//!
//! Each worker folds the reports it produces into a per-shard
//! [`FleetAccumulator`] and the shard folds are merged into one — a true
//! monoid (exact floating-point sums, see [`crate::runner::shard`]), so
//! fleet aggregates cost O(1) at read time and the merge order cannot
//! perturb them.
//!
//! # Two memory modes
//!
//! - [`FleetRunner::run_fleet`] — *full* mode: keeps every tenant's
//!   [`RunReport`] (O(tenants) memory) plus the folded [`FleetSummary`].
//! - [`FleetRunner::run_fleet_summary`] — *summary* mode: each report is
//!   folded and dropped inside the worker; only the O(shards) accumulators
//!   and the not-yet-flushed shards' event buffers stay live. Events
//!   stream out through an [`EventSink`] in shard order, producing the
//!   same byte stream a full run's [`FleetReport::events_jsonl`] renders.
//!
//! # Determinism contract
//!
//! Results are **bit-identical regardless of thread count *and* shard
//! count**. Three mechanisms, one per axis of nondeterminism:
//!
//! - *Scheduling*: each work item `i` is a pure function of the inputs at
//!   index `i` (per-tenant seeds are derived from the fleet seed with a
//!   SplitMix64 hash, never from shared RNG state), and every result lands
//!   in slot `i` of the output, so claim order cannot reorder anything.
//! - *Sharding*: fleet aggregates are folded through exact-sum
//!   accumulators whose merge is associative and commutative at the bit
//!   level, so shard boundaries cannot perturb a single ulp.
//! - *Event order*: shard event buffers are flushed to the sink in shard
//!   index order (out-of-order finishers park until the gap closes), so
//!   the stream is always tenant-major.
//!
//! `FleetRunner::new(1)` is the sequential reference the property tests
//! compare against.

use crate::obs::{EventSink, MetricRegistry, RunObservability};
use crate::policy::ScalingPolicy;
use crate::report::RunReport;
use crate::rules::RuleHistogram;
use crate::runner::shard::{FleetAccumulator, FleetSummary};
use crate::runner::{ClosedLoop, RunConfig};
use dasr_stats::{percentile, percentile_interpolated};
use dasr_telemetry::{ResizeActuator, TelemetrySource};
use dasr_workloads::{Trace, Workload};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shard's output slice paired with its starting index. Exactly one
/// worker claims each shard, but safe code needs the mutex to hand the
/// `&mut` slice across threads.
type ShardSlots<'a, T> = Mutex<(usize, &'a mut [Option<T>])>;

/// Executes independent per-tenant closed loops across OS threads.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunner {
    threads: usize,
    shards: Option<usize>,
}

impl FleetRunner {
    /// Creates a runner using `threads` worker threads (clamped to ≥ 1).
    /// One thread means plain sequential execution on the caller's thread.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            shards: None,
        }
    }

    /// Creates a runner sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Overrides the shard count (clamped to ≥ 1; further clamped to the
    /// tenant count at run time). The default — four shards per worker —
    /// balances claim overhead against work-stealing granularity; results
    /// are bit-identical either way (see the [determinism
    /// contract](self#determinism-contract)), so this knob only tunes
    /// speed and, in summary mode, peak memory.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shards `n` work items will be split into.
    pub fn shard_count(&self, n: usize) -> usize {
        let want = self.shards.unwrap_or(self.threads * 4).max(1);
        want.min(n).max(1)
    }

    /// Computes `f(0), f(1), …, f(n-1)` across the worker threads and
    /// returns the results in index order.
    ///
    /// `f` must be a pure function of its index for the determinism
    /// contract to hold; the runner guarantees output order and exactly
    /// one call per index either way. Work is claimed shard by shard from
    /// a shared cursor, so stragglers do not stall the other workers.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.shard_count(n));
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let shards: Vec<ShardSlots<'_, T>> = slots
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| Mutex::new((c * chunk, slice)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = shards.get(c) else {
                        break;
                    };
                    let mut guard = cell.lock().expect("shard slice lock poisoned");
                    let (start, slice) = &mut *guard;
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(f(*start + offset));
                    }
                });
            }
        });
        drop(shards);
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was assigned to exactly one worker"))
            .collect()
    }

    /// Runs one closed loop per tenant and aggregates the reports (*full*
    /// mode: every [`RunReport`] is kept, O(tenants) memory).
    ///
    /// `make_policy` builds each tenant's policy inside the worker that
    /// runs it (policies are stateful and not shared). Tenants are
    /// independent by construction, so the [determinism
    /// contract](self#determinism-contract) applies to the whole fleet
    /// run. Fleet aggregates are folded shard by shard as workers finish
    /// and surface as the report's O(1) [`FleetSummary`].
    pub fn run_fleet<W, F>(&self, tenants: &[TenantSpec<W>], make_policy: F) -> FleetReport
    where
        W: Workload + Clone + Sync,
        F: Fn(usize, &TenantSpec<W>) -> Box<dyn ScalingPolicy> + Sync,
    {
        let n = tenants.len();
        let threads = self.threads.min(n.max(1));
        if n == 0 || threads == 1 {
            // Sequential reference: fold tenant by tenant.
            let mut acc = FleetAccumulator::new();
            let mut reports = Vec::with_capacity(n);
            for (i, tenant) in tenants.iter().enumerate() {
                let report = run_tenant(i, tenant, &make_policy);
                acc.fold_report(&report);
                reports.push(report);
            }
            return FleetReport {
                reports,
                summary: acc.finish(),
            };
        }

        let chunk = n.div_ceil(self.shard_count(n));
        let mut slots: Vec<Option<RunReport>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let shards: Vec<ShardSlots<'_, RunReport>> = slots
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| Mutex::new((c * chunk, slice)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let total = Mutex::new(FleetAccumulator::new());
        let make_policy = &make_policy;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = shards.get(c) else {
                        break;
                    };
                    let mut acc = FleetAccumulator::new();
                    let mut guard = cell.lock().expect("shard slice lock poisoned");
                    let (start, slice) = &mut *guard;
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        let i = *start + offset;
                        let report = run_tenant(i, &tenants[i], make_policy);
                        acc.fold_report(&report);
                        *slot = Some(report);
                    }
                    drop(guard);
                    // Exact-sum merge: order-free, so no parking needed.
                    total
                        .lock()
                        .expect("fleet accumulator poisoned")
                        .merge(&acc);
                });
            }
        });
        drop(shards);
        let reports = slots
            .into_iter()
            .map(|slot| slot.expect("every tenant was run by exactly one worker"))
            .collect();
        FleetReport {
            reports,
            summary: total
                .into_inner()
                .expect("fleet accumulator poisoned")
                .finish(),
        }
    }

    /// Runs the fleet in *summary* mode: each tenant's report is folded
    /// into its shard's accumulator and dropped, so live memory is
    /// O(shards) instead of O(tenants). Run events stream out through
    /// `sink` in shard order — byte-identical to a full run's
    /// [`FleetReport::events_jsonl`] for any thread/shard count (pass
    /// [`crate::obs::NullSink`] to drop them).
    ///
    /// Out-of-order shard finishers park their output until the
    /// next-in-order shard completes, so the transient buffer is bounded
    /// by shard-completion skew, not by fleet size.
    pub fn run_fleet_summary<W, F>(
        &self,
        tenants: &[TenantSpec<W>],
        make_policy: F,
        sink: &mut dyn EventSink,
    ) -> FleetSummary
    where
        W: Workload + Clone + Sync,
        F: Fn(usize, &TenantSpec<W>) -> Box<dyn ScalingPolicy> + Sync,
    {
        let n = tenants.len();
        let threads = self.threads.min(n.max(1));
        if n == 0 || threads == 1 {
            let mut acc = FleetAccumulator::new();
            for (i, tenant) in tenants.iter().enumerate() {
                let mut report = run_tenant(i, tenant, &make_policy);
                acc.fold_report(&report);
                for ev in report.obs.events.drain(..) {
                    sink.emit(&ev);
                }
                // `report` drops here: O(1) live reports.
            }
            sink.finish();
            return acc.finish();
        }

        struct ShardOut {
            acc: FleetAccumulator,
            events: Vec<crate::obs::RunEvent>,
        }
        struct MergeState<'a> {
            /// Next shard index the sink is waiting for.
            next: usize,
            /// Finished shards parked until the gap before them closes.
            parked: BTreeMap<usize, ShardOut>,
            total: FleetAccumulator,
            sink: &'a mut dyn EventSink,
        }

        let chunk = n.div_ceil(self.shard_count(n));
        let shard_total = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let state = Mutex::new(MergeState {
            next: 0,
            parked: BTreeMap::new(),
            total: FleetAccumulator::new(),
            sink,
        });
        let make_policy = &make_policy;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= shard_total {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let mut acc = FleetAccumulator::new();
                    let mut events = Vec::new();
                    for i in start..end {
                        let mut report = run_tenant(i, &tenants[i], make_policy);
                        acc.fold_report(&report);
                        events.append(&mut report.obs.events);
                    }
                    let mut st = state.lock().expect("fleet merge state poisoned");
                    st.parked.insert(c, ShardOut { acc, events });
                    // Flush every shard that is now next in order.
                    loop {
                        let next = st.next;
                        let Some(out) = st.parked.remove(&next) else {
                            break;
                        };
                        st.total.merge(&out.acc);
                        for ev in &out.events {
                            st.sink.emit(ev);
                        }
                        st.next += 1;
                    }
                });
            }
        });
        let st = state.into_inner().expect("fleet merge state poisoned");
        debug_assert_eq!(st.next, shard_total, "every shard was flushed");
        st.sink.finish();
        st.total.finish()
    }

    /// Runs `n` closed loops over caller-supplied backends — the
    /// source-generic sibling of [`FleetRunner::run_fleet`].
    ///
    /// `make(i)` builds tenant `i`'s run configuration, telemetry backend
    /// and policy inside the worker that runs it, so the fleet can mix
    /// backends: simulator tenants, replayed tenants
    /// (`crate::replay::ReplaySource`), or anything else behind the seam.
    /// `make` must be a pure function of `i` for the [determinism
    /// contract](self#determinism-contract) to hold. Tenant `i`'s traces
    /// and events are stamped with `i` exactly as in `run_fleet`; the
    /// summary is folded through the same exact-sum monoid, so the fold
    /// order (here: tenant order, after the parallel map) cannot perturb
    /// it.
    pub fn run_fleet_sources<B, F>(&self, n: usize, make: F) -> FleetReport
    where
        B: TelemetrySource + ResizeActuator,
        F: Fn(usize) -> (RunConfig, B, Box<dyn ScalingPolicy>) + Sync,
    {
        let reports = self.map(n, |i| {
            let (cfg, mut backend, mut policy) = make(i);
            let mut report = ClosedLoop::run_source(&cfg, &mut backend, policy.as_mut());
            for rec in &mut report.intervals {
                rec.trace.tenant = Some(i as u64);
            }
            report.obs.stamp_tenant(i as u64);
            report
        });
        let mut acc = FleetAccumulator::new();
        for report in &reports {
            acc.fold_report(report);
        }
        FleetReport {
            reports,
            summary: acc.finish(),
        }
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// Runs tenant `i`'s closed loop and stamps its index into every decision
/// trace and run event so fleet-wide JSONL dumps stay attributable (a pure
/// function of `i`, so the determinism contract is untouched).
fn run_tenant<W, F>(i: usize, tenant: &TenantSpec<W>, make_policy: &F) -> RunReport
where
    W: Workload + Clone + Sync,
    F: Fn(usize, &TenantSpec<W>) -> Box<dyn ScalingPolicy> + Sync,
{
    let mut policy = make_policy(i, tenant);
    let mut report = ClosedLoop::run(
        &tenant.cfg,
        &tenant.trace,
        tenant.workload.clone(),
        policy.as_mut(),
    );
    for rec in &mut report.intervals {
        rec.trace.tenant = Some(i as u64);
    }
    report.obs.stamp_tenant(i as u64);
    report
}

/// Derives tenant `index`'s seed from a fleet-wide seed.
///
/// SplitMix64 over `fleet_seed + index`: statistically independent streams
/// per tenant with no shared RNG state, which is what makes fleet execution
/// order-free (see the [determinism contract](self#determinism-contract)).
pub fn tenant_seed(fleet_seed: u64, index: u64) -> u64 {
    let mut z = fleet_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant's closed-loop inputs.
#[derive(Debug, Clone)]
pub struct TenantSpec<W: Workload> {
    /// Run configuration; `cfg.seed` should already be tenant-specific
    /// (see [`tenant_seed`]).
    pub cfg: RunConfig,
    /// The tenant's demand trace.
    pub trace: Trace,
    /// The tenant's workload (cloned into the worker).
    pub workload: W,
}

/// Aggregated result of a full-mode fleet run, in tenant order.
///
/// Fleet-wide aggregates were folded once, shard by shard, while the run
/// executed (see [`FleetSummary`]); the helpers below read them in O(1)
/// instead of re-iterating every report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-tenant reports, index-aligned with the input tenant slice.
    pub reports: Vec<RunReport>,
    /// The monoid fold over all reports, finished.
    summary: FleetSummary,
}

impl FleetReport {
    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The run's folded [`FleetSummary`] — identical to what
    /// [`FleetRunner::run_fleet_summary`] returns for the same inputs.
    pub fn fleet_summary(&self) -> &FleetSummary {
        &self.summary
    }

    /// Total cost across the fleet. O(1).
    pub fn total_cost(&self) -> f64 {
        self.summary.total_cost
    }

    /// Mean per-interval cost across all tenants' intervals. O(1).
    pub fn avg_cost_per_interval(&self) -> f64 {
        self.summary.avg_cost_per_interval()
    }

    /// Completed requests across the fleet. O(1).
    pub fn completed_total(&self) -> u64 {
        self.summary.completed_total
    }

    /// Rejected requests across the fleet. O(1).
    pub fn rejected_total(&self) -> u64 {
        self.summary.rejected_total
    }

    /// Resize operations across the fleet. O(1).
    pub fn resizes_total(&self) -> u64 {
        self.summary.resizes_total
    }

    /// Rule-fire counts merged across every tenant's run — the fleet-wide
    /// picture of which §4/§6 rules drove scaling. O(1) (from the folded
    /// registry).
    pub fn rule_histogram(&self) -> RuleHistogram {
        self.summary.metrics.rules().clone()
    }

    /// The fleet-wide [`MetricRegistry`]: every tenant's registry folded
    /// exactly during the run — bit-identical for any thread *and* shard
    /// count (timers aside; see [`MetricRegistry`]).
    pub fn fleet_metrics(&self) -> MetricRegistry {
        self.summary.metrics.clone()
    }

    /// The fleet-wide observability: the folded metrics plus every
    /// tenant's event stream concatenated in tenant-index order (events
    /// carry their tenant stamp from [`FleetRunner::run_fleet`]).
    pub fn fleet_obs(&self) -> RunObservability {
        let mut merged = RunObservability {
            metrics: self.summary.metrics.clone(),
            ..RunObservability::default()
        };
        for r in &self.reports {
            merged.events.extend(r.obs.events.iter().cloned());
        }
        merged
    }

    /// The fleet's event stream as JSON lines, tenant by tenant — the
    /// byte stream summary mode delivers to its [`EventSink`].
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            for ev in &r.obs.events {
                out.push_str(&ev.to_json_line());
                out.push('\n');
            }
        }
        out
    }

    /// 95th-percentile latency over the *pooled* request population, ms —
    /// exact (full mode keeps every sample; summary mode estimates from
    /// the latency histogram instead).
    pub fn p95_ms(&self) -> Option<f64> {
        percentile(&self.pooled_latencies(), 95.0)
    }

    /// Interpolated pooled 95th percentile, ms.
    pub fn p95_interpolated_ms(&self) -> Option<f64> {
        percentile_interpolated(&self.pooled_latencies(), 95.0)
    }

    fn pooled_latencies(&self) -> Vec<f64> {
        let total: usize = self.reports.iter().map(|r| r.all_latencies_ms.len()).sum();
        let mut pooled = Vec::with_capacity(total);
        for r in &self.reports {
            pooled.extend_from_slice(&r.all_latencies_ms);
        }
        pooled
    }

    /// One-line fleet summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "fleet of {:>4}: p95 {:>8.1} ms | avg cost/interval {:>7.2} | resizes {:>5} | rejected {}",
            self.len(),
            self.p95_ms().unwrap_or(f64::NAN),
            self.avg_cost_per_interval(),
            self.resizes_total(),
            self.rejected_total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{CountingSink, VecSink};
    use crate::policy::StaticPolicy;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = FleetRunner::new(threads).map(17, |i| i * i);
            let expect: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_preserves_order_for_any_shard_count() {
        for shards in [1, 2, 5, 17, 100] {
            let out = FleetRunner::new(4).with_shards(shards).map(23, |i| i + 1);
            let expect: Vec<usize> = (0..23).map(|i| i + 1).collect();
            assert_eq!(out, expect, "shards = {shards}");
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let r = FleetRunner::new(4);
        assert!(r.map(0, |i| i).is_empty());
        assert_eq!(r.map(1, |i| i + 10), vec![10]);
        assert_eq!(FleetRunner::new(0).threads(), 1);
        assert_eq!(FleetRunner::new(4).with_shards(0).shard_count(8), 1);
        assert_eq!(FleetRunner::new(2).shard_count(1), 1);
        assert_eq!(FleetRunner::new(2).shard_count(100), 8);
    }

    #[test]
    fn tenant_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..1000).map(|i| tenant_seed(0xDA5A, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(tenant_seed(1, 0), tenant_seed(2, 0));
    }

    fn small_fleet(n: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
        (0..n)
            .map(|i| TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(7, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("t", vec![5.0 + i as f64; 3]),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            })
            .collect()
    }

    fn run_full(tenants: &[TenantSpec<CpuIoWorkload>], runner: FleetRunner) -> FleetReport {
        runner.run_fleet(tenants, |_, t| {
            Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>
        })
    }

    #[test]
    fn fleet_results_are_thread_and_shard_count_invariant() {
        let tenants = small_fleet(6);
        let sequential = run_full(&tenants, FleetRunner::new(1));
        for threads in [1, 2, 4] {
            for shards in [1, 3, 17] {
                let parallel = run_full(&tenants, FleetRunner::new(threads).with_shards(shards));
                assert_eq!(
                    parallel, sequential,
                    "threads = {threads}, shards = {shards}"
                );
                assert_eq!(parallel.events_jsonl(), sequential.events_jsonl());
                assert_eq!(parallel.fleet_metrics(), sequential.fleet_metrics());
            }
        }
    }

    #[test]
    fn summary_mode_matches_full_mode() {
        let tenants = small_fleet(5);
        let full = run_full(&tenants, FleetRunner::new(2));
        for threads in [1, 3] {
            let mut sink = VecSink::default();
            let summary = FleetRunner::new(threads).with_shards(2).run_fleet_summary(
                &tenants,
                |_, t| Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>,
                &mut sink,
            );
            assert_eq!(&summary, full.fleet_summary(), "threads = {threads}");
            assert_eq!(sink.events_jsonl(), full.events_jsonl());
            assert_eq!(sink.events.len() as u64, summary.events_emitted);
        }
    }

    #[test]
    fn source_generic_fleet_matches_run_fleet() {
        use crate::runner::source::SimulatorSource;

        let tenants = small_fleet(5);
        let classic = run_full(&tenants, FleetRunner::new(2));
        for threads in [1, 2, 8] {
            let generic = FleetRunner::new(threads).run_fleet_sources(tenants.len(), |i| {
                let t = &tenants[i];
                let backend = SimulatorSource::new(&t.cfg, &t.trace, t.workload.clone());
                let policy = Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>;
                (t.cfg.clone(), backend, policy)
            });
            assert_eq!(generic, classic, "threads = {threads}");
            assert_eq!(generic.events_jsonl(), classic.events_jsonl());
        }
    }

    #[test]
    fn counting_sink_sees_every_event() {
        let tenants = small_fleet(4);
        let mut sink = CountingSink::default();
        let summary = FleetRunner::new(2).run_fleet_summary(
            &tenants,
            |_, t| Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>,
            &mut sink,
        );
        assert_eq!(sink.count, summary.events_emitted);
    }

    #[test]
    fn fleet_report_aggregates() {
        let tenants = small_fleet(3);
        let report = run_full(&tenants, FleetRunner::new(2));
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
        assert_eq!(
            report.completed_total(),
            report
                .reports
                .iter()
                .map(|r| r.completed_total())
                .sum::<u64>()
        );
        assert_eq!(
            report.total_cost(),
            report
                .reports
                .iter()
                .map(|r| r.total_cost())
                .fold(dasr_stats::ExactSum::new(), |mut s, c| {
                    s.add(c);
                    s
                })
                .value()
        );
        assert_eq!(
            report.resizes_total(),
            report.reports.iter().map(|r| r.resizes).sum::<u64>()
        );
        assert!(report.total_cost() > 0.0);
        assert!(report.p95_ms().is_some());
        assert!(report.summary().contains("fleet of"));
        assert_eq!(report.fleet_summary().tenants, 3);
    }

    #[test]
    fn empty_fleet_is_safe_in_both_modes() {
        let tenants = small_fleet(0);
        let report = run_full(&tenants, FleetRunner::new(4));
        assert!(report.is_empty());
        assert_eq!(report.total_cost(), 0.0);
        let mut sink = CountingSink::default();
        let summary = FleetRunner::new(4).run_fleet_summary(
            &tenants,
            |_, t| Box::new(StaticPolicy::max(&t.cfg.catalog)) as Box<dyn ScalingPolicy>,
            &mut sink,
        );
        assert_eq!(summary.tenants, 0);
        assert_eq!(sink.count, 0);
    }
}
