//! The closed loop (§6, Figure 3): telemetry + policy + billing, one
//! decision per billing interval — generic over where the telemetry comes
//! from and where the resize commands go.
//!
//! The loop body in [`ClosedLoop::run_source`] is written against the
//! [`TelemetrySource`]/[`ResizeActuator`] seam from `dasr_telemetry`:
//! [`source::SimulatorSource`] plugs the discrete-event engine in (the
//! classic [`ClosedLoop::run`] entry point is now a thin wrapper over it,
//! pinned bit-identical to the frozen [`oracle::OracleLoop`] by the
//! `loop_equivalence` tests), and `crate::replay::ReplaySource` feeds a
//! recorded run back through any policy.
//!
//! [`fleet`] scales the loop out: N independent tenants across a sharded
//! worker pool with bit-identical results regardless of thread or shard
//! count; [`shard`] holds the exact-sum monoid that fold rests on.

pub mod fleet;
pub mod oracle;
pub mod shard;
pub mod source;

use crate::budget::{BudgetManager, BudgetStrategy};
use crate::knobs::TenantKnobs;
use crate::obs::{IntervalObservation, ObsConfig, RunObservability, TimerId};
use crate::policy::{BalloonCommand, PolicyContext, ScalingPolicy};
use crate::report::{IntervalRecord, RunReport};
use dasr_containers::{Catalog, Container, ContainerId, ResourceKind, ResourceVector};
use dasr_engine::EngineConfig;
use dasr_telemetry::{
    LatencyGoal, ResizeActuator, TelemetryConfig, TelemetryManager, TelemetrySource,
};
use dasr_workloads::{Trace, Workload};

use self::source::SimulatorSource;

/// Configuration for a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The service's container catalog.
    pub catalog: Catalog,
    /// Engine parameters.
    pub engine: EngineConfig,
    /// Telemetry-manager parameters (thresholds, windows). The latency
    /// goal inside is overwritten from `knobs`.
    pub telemetry: TelemetryConfig,
    /// Tenant knobs (budget, latency goal, sensitivity).
    pub knobs: TenantKnobs,
    /// Budget-manager strategy (only used when a budget is set).
    pub budget_strategy: BudgetStrategy,
    /// Initial container (default: two rungs above the smallest).
    pub initial: Option<ContainerId>,
    /// Buffer-pool pages to prewarm (simulating an already-running, warm
    /// database; see `Engine::prewarm`). Use the workload's hot-set size.
    pub prewarm_pages: u64,
    /// Seed for workload randomness.
    pub seed: u64,
    /// Observability configuration (event-stream verbosity; metrics are
    /// always recorded).
    pub obs: ObsConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            catalog: Catalog::azure_like(),
            engine: EngineConfig::default(),
            telemetry: TelemetryConfig::default(),
            knobs: TenantKnobs::none(),
            budget_strategy: BudgetStrategy::Aggressive,
            initial: None,
            prewarm_pages: 0,
            seed: 0xDA5A,
            obs: ObsConfig::default(),
        }
    }
}

impl RunConfig {
    /// The container the run starts in: [`RunConfig::initial`] when set,
    /// else rung 2, else the smallest in the catalog.
    pub fn initial_container(&self) -> Container {
        let initial_id = self.initial.unwrap_or_else(|| {
            self.catalog
                .iter()
                .find(|c| c.rung == 2)
                .unwrap_or_else(|| self.catalog.smallest())
                .id
        });
        self.catalog
            .get(initial_id)
            .expect("initial container must exist")
            .clone()
    }
}

/// The closed-loop experiment driver.
pub struct ClosedLoop;

impl ClosedLoop {
    /// Runs `policy` over `trace` × `workload` on the simulator and
    /// reports.
    ///
    /// Each trace minute is one billing interval: arrivals for the minute
    /// are generated open-loop, the engine advances, telemetry is drained
    /// and turned into signals, the budget is charged for the interval that
    /// just ran, and the policy picks the next interval's container (§6).
    ///
    /// This is [`ClosedLoop::run_source`] with the engine plugged in as
    /// [`SimulatorSource`]; the pairing is pinned bit-identical to the
    /// pre-seam loop ([`oracle::OracleLoop`]) by the `loop_equivalence`
    /// tests.
    pub fn run<W: Workload>(
        cfg: &RunConfig,
        trace: &Trace,
        workload: W,
        policy: &mut dyn ScalingPolicy,
    ) -> RunReport {
        let mut backend = SimulatorSource::new(cfg, trace, workload);
        Self::run_source(cfg, &mut backend, policy)
    }

    /// Runs `policy` against any telemetry backend: one decision per
    /// interval produced by `backend`, with the policy's commands sent back
    /// through the backend's [`ResizeActuator`] half.
    ///
    /// The loop only reads `cfg.catalog`, `cfg.telemetry`, `cfg.knobs`,
    /// `cfg.budget_strategy`, `cfg.initial` and `cfg.obs`; the
    /// engine-specific fields (`engine`, `prewarm_pages`, `seed`) belong to
    /// [`SimulatorSource::new`]. Determinism: given a backend whose sample
    /// sequence is a pure function of its inputs (the trait contract) and a
    /// deterministic policy, every output — report, metrics registry, event
    /// stream — is bit-identical across runs.
    pub fn run_source<B: TelemetrySource + ResizeActuator>(
        cfg: &RunConfig,
        backend: &mut B,
        policy: &mut dyn ScalingPolicy,
    ) -> RunReport {
        let catalog = &cfg.catalog;
        let minutes = backend.intervals();
        let mut current = cfg.initial_container();

        let mut telemetry_cfg = cfg.telemetry;
        telemetry_cfg.latency_goal = cfg.knobs.latency_goal;
        let mut tm = TelemetryManager::new(telemetry_cfg);
        // The aggregation statistic even without a goal: p95 (paper §7
        // reports 95th percentiles).
        let goal_stat = cfg
            .knobs
            .latency_goal
            .unwrap_or(LatencyGoal::P95(f64::INFINITY));

        let mut budget = cfg.knobs.budget.map(|b| {
            BudgetManager::new(
                b,
                minutes as u64,
                catalog.min_cost(),
                catalog.max_cost(),
                cfg.budget_strategy,
            )
        });

        let workload_name = backend.workload_name().to_string();
        let trace_name = backend.trace_name().to_string();

        let mut intervals = Vec::with_capacity(minutes);
        let mut all_latencies = Vec::new();
        let mut resizes = 0u64;
        let mut rejected_total = 0u64;
        let mut obs = RunObservability::new(cfg.obs.verbosity);

        for minute in 0..minutes {
            let sample = backend.observe_interval(minute as u64, goal_stat);
            rejected_total += sample.rejected;
            all_latencies.extend_from_slice(backend.interval_latencies_ms());
            // Read before actuation: the probe state the §4.3 controller
            // sees is the one the interval ended with.
            let balloon_status = backend.probe();

            let latency_ms = sample.latency_ms;
            let completed = sample.completed;
            let rejected = sample.rejected;
            let mem_used_mb = sample.mem_used_mb;
            let wait_pct = {
                let mut out = [0.0; dasr_engine::WAIT_CLASSES.len()];
                for class in dasr_engine::WAIT_CLASSES {
                    out[class.index()] = sample.wait_pct(class);
                }
                out
            };
            let used = ResourceVector::new(
                sample.util(ResourceKind::Cpu) / 100.0 * current.resources.cpu_cores,
                sample.mem_used_mb,
                sample.util(ResourceKind::DiskIo) / 100.0 * current.resources.disk_iops,
                sample.util(ResourceKind::LogIo) / 100.0 * current.resources.log_mbps,
            );
            // §3 signal computation, timed (wall-clock; the timer section
            // is excluded from the determinism contract).
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::SignalsNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let signals = tm.observe(sample);
            obs.metrics
                .observe_ns(TimerId::SignalsNs, t0.elapsed().as_nanos() as u64);

            // Bill the interval that just ran.
            let cost = current.cost;
            if let Some(b) = budget.as_mut() {
                let ok = b.charge(cost);
                debug_assert!(ok, "policy selected an unaffordable container");
            }

            let ctx = PolicyContext {
                signals: &signals,
                current: &current,
                catalog,
                available_budget: budget.as_ref().map(|b| b.available()),
                balloon: balloon_status,
            };
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::DecideNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let decision = policy.decide(&ctx);
            obs.metrics
                .observe_ns(TimerId::DecideNs, t0.elapsed().as_nanos() as u64);

            match decision.balloon {
                BalloonCommand::None => {}
                BalloonCommand::Start { target_mb } => backend.start_balloon(target_mb),
                BalloonCommand::Abort => backend.abort_balloon(),
                BalloonCommand::Commit => backend.commit_balloon(),
            }

            let resized = decision.target != current.id;
            let target = decision.target;
            let target_rung = catalog
                .get(target)
                .expect("policy picked an unknown container")
                .rung;
            obs.record_interval(IntervalObservation {
                trace: &decision.trace,
                latency_ms,
                completed,
                rejected,
                from_rung: current.rung,
                to_rung: target_rung,
                budget_headroom_pct: budget.as_ref().map(|b| b.remaining() / b.budget() * 100.0),
            });
            intervals.push(IntervalRecord {
                minute: minute as u64,
                container: current.id,
                rung: current.rung,
                cost,
                allocated: current.resources,
                used,
                latency_ms,
                completed,
                rejected,
                wait_pct,
                mem_used_mb,
                resized,
                trace: decision.trace,
            });

            if resized {
                current = catalog
                    .get(target)
                    .expect("policy picked an unknown container")
                    .clone();
                backend.apply_resources(current.resources);
                resizes += 1;
            }
        }

        obs.finish(current.rung, budget.as_ref().map(BudgetManager::remaining));

        RunReport {
            policy: policy.name().to_string(),
            workload: workload_name,
            trace: trace_name,
            intervals,
            all_latencies_ms: all_latencies,
            resizes,
            rejected_total,
            obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    fn short_trace(rps: f64, minutes: usize) -> Trace {
        Trace::new("test", vec![rps; minutes])
    }

    fn workload() -> CpuIoWorkload {
        CpuIoWorkload::new(CpuIoConfig::small())
    }

    #[test]
    fn static_run_produces_full_report() {
        let cfg = RunConfig::default();
        let mut policy = StaticPolicy::max(&cfg.catalog);
        let report = ClosedLoop::run(&cfg, &short_trace(20.0, 5), workload(), &mut policy);
        assert_eq!(report.intervals.len(), 5);
        assert_eq!(report.resizes, 1, "initial container -> max");
        assert!(
            report.completed_total() > 5 * 60 * 10,
            "most requests complete"
        );
        assert!(report.p95_ms().is_some());
        // After the first interval the max container is billed.
        assert_eq!(report.intervals[2].cost, cfg.catalog.max_cost());
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig::default();
        let run = || {
            let mut policy = StaticPolicy::max(&cfg.catalog);
            let r = ClosedLoop::run(&cfg, &short_trace(10.0, 3), workload(), &mut policy);
            (r.total_cost(), r.completed_total(), r.p95_ms())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budget_is_hard_constraint() {
        use dasr_telemetry::LatencyGoal;

        let minutes = 20;
        let budget = 20.0 * 20.0; // avg 20/interval, Cmin 7
        let cfg = RunConfig {
            knobs: TenantKnobs::none()
                .with_budget(budget)
                .with_latency_goal(LatencyGoal::P95(10.0)), // impossible goal => wants big
            ..RunConfig::default()
        };
        let mut policy = crate::policy::AutoPolicy::with_knobs(cfg.knobs);
        let report = ClosedLoop::run(&cfg, &short_trace(50.0, minutes), workload(), &mut policy);
        assert!(
            report.total_cost() <= budget + 1e-6,
            "spent {} over budget {budget}",
            report.total_cost()
        );
    }

    #[test]
    fn interval_records_track_containers() {
        let cfg = RunConfig::default();
        let mut policy = StaticPolicy::new("pin", cfg.catalog.smallest().id);
        let report = ClosedLoop::run(&cfg, &short_trace(5.0, 4), workload(), &mut policy);
        // Interval 0 uses the default initial container, then the pin.
        assert_eq!(report.intervals[0].rung, 2);
        assert_eq!(report.intervals[1].rung, 0);
        assert!(report.intervals[1].cost < report.intervals[0].cost);
    }

    #[test]
    fn initial_container_prefers_rung_two() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.initial_container().rung, 2);
        let pinned = RunConfig {
            initial: Some(cfg.catalog.smallest().id),
            ..RunConfig::default()
        };
        assert_eq!(pinned.initial_container().rung, 0);
    }
}
