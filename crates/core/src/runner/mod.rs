//! The closed loop (§6, Figure 3): engine + workload + telemetry + policy
//! + billing, one decision per billing interval.
//!
//! [`fleet`] scales the loop out: N independent tenants across a sharded
//! worker pool with bit-identical results regardless of thread or shard
//! count; [`shard`] holds the exact-sum monoid that fold rests on.

pub mod fleet;
pub mod shard;

use crate::budget::{BudgetManager, BudgetStrategy};
use crate::knobs::TenantKnobs;
use crate::obs::{IntervalObservation, ObsConfig, RunObservability, TimerId};
use crate::policy::{BalloonCommand, BalloonStatus, PolicyContext, ScalingPolicy};
use crate::report::{IntervalRecord, RunReport};
use dasr_containers::{Catalog, ContainerId, ResourceVector};
use dasr_engine::{Engine, EngineConfig, SimTime};
use dasr_telemetry::{LatencyGoal, TelemetryConfig, TelemetryManager, TelemetrySample};
use dasr_workloads::{Trace, TraceDriver, Workload};

/// Configuration for a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The service's container catalog.
    pub catalog: Catalog,
    /// Engine parameters.
    pub engine: EngineConfig,
    /// Telemetry-manager parameters (thresholds, windows). The latency
    /// goal inside is overwritten from `knobs`.
    pub telemetry: TelemetryConfig,
    /// Tenant knobs (budget, latency goal, sensitivity).
    pub knobs: TenantKnobs,
    /// Budget-manager strategy (only used when a budget is set).
    pub budget_strategy: BudgetStrategy,
    /// Initial container (default: two rungs above the smallest).
    pub initial: Option<ContainerId>,
    /// Buffer-pool pages to prewarm (simulating an already-running, warm
    /// database; see `Engine::prewarm`). Use the workload's hot-set size.
    pub prewarm_pages: u64,
    /// Seed for workload randomness.
    pub seed: u64,
    /// Observability configuration (event-stream verbosity; metrics are
    /// always recorded).
    pub obs: ObsConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            catalog: Catalog::azure_like(),
            engine: EngineConfig::default(),
            telemetry: TelemetryConfig::default(),
            knobs: TenantKnobs::none(),
            budget_strategy: BudgetStrategy::Aggressive,
            initial: None,
            prewarm_pages: 0,
            seed: 0xDA5A,
            obs: ObsConfig::default(),
        }
    }
}

/// The closed-loop experiment driver.
pub struct ClosedLoop;

impl ClosedLoop {
    /// Runs `policy` over `trace` × `workload` and reports.
    ///
    /// Each trace minute is one billing interval: arrivals for the minute
    /// are generated open-loop, the engine advances, telemetry is drained
    /// and turned into signals, the budget is charged for the interval that
    /// just ran, and the policy picks the next interval's container (§6).
    pub fn run<W: Workload>(
        cfg: &RunConfig,
        trace: &Trace,
        workload: W,
        policy: &mut dyn ScalingPolicy,
    ) -> RunReport {
        let catalog = &cfg.catalog;
        let minutes = trace.minutes();
        let initial_id = cfg.initial.unwrap_or_else(|| {
            catalog
                .iter()
                .find(|c| c.rung == 2)
                .unwrap_or_else(|| catalog.smallest())
                .id
        });
        let mut current = catalog
            .get(initial_id)
            .expect("initial container must exist")
            .clone();

        let mut engine = Engine::new(cfg.engine, current.resources);
        if cfg.prewarm_pages > 0 {
            engine.prewarm(cfg.prewarm_pages);
        }
        let mut telemetry_cfg = cfg.telemetry;
        telemetry_cfg.latency_goal = cfg.knobs.latency_goal;
        let mut tm = TelemetryManager::new(telemetry_cfg);
        // The aggregation statistic even without a goal: p95 (paper §7
        // reports 95th percentiles).
        let goal_stat = cfg
            .knobs
            .latency_goal
            .unwrap_or(LatencyGoal::P95(f64::INFINITY));

        let mut budget = cfg.knobs.budget.map(|b| {
            BudgetManager::new(
                b,
                minutes as u64,
                catalog.min_cost(),
                catalog.max_cost(),
                cfg.budget_strategy,
            )
        });

        let mut driver = TraceDriver::new(trace.clone(), workload, cfg.seed);
        let workload_name = driver.workload_name().to_string();

        let mut intervals = Vec::with_capacity(minutes);
        let mut all_latencies = Vec::new();
        let mut resizes = 0u64;
        let mut rejected_total = 0u64;
        let mut obs = RunObservability::new(cfg.obs.verbosity);
        // Reused across intervals: `end_interval_into` ping-pongs the
        // latency buffer with the engine, so the per-minute hot loop does
        // not allocate telemetry.
        let mut stats = dasr_engine::IntervalStats::default();

        for minute in 0..minutes {
            driver.submit_minute(minute, &mut engine);
            engine.run_until(SimTime::from_mins(minute as u64 + 1));
            engine.end_interval_into(&mut stats);
            rejected_total += stats.rejected;
            all_latencies.extend_from_slice(&stats.latencies_ms);

            let sample = TelemetrySample::from_interval(minute as u64, &stats, goal_stat);
            let latency_ms = sample.latency_ms;
            let wait_pct = {
                let mut out = [0.0; dasr_engine::WAIT_CLASSES.len()];
                for class in dasr_engine::WAIT_CLASSES {
                    out[class.index()] = sample.wait_pct(class);
                }
                out
            };
            // §3 signal computation, timed (wall-clock; the timer section
            // is excluded from the determinism contract).
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::SignalsNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let signals = tm.observe(sample);
            obs.metrics
                .observe_ns(TimerId::SignalsNs, t0.elapsed().as_nanos() as u64);

            // Bill the interval that just ran.
            let cost = current.cost;
            if let Some(b) = budget.as_mut() {
                let ok = b.charge(cost);
                debug_assert!(ok, "policy selected an unaffordable container");
            }

            let used = ResourceVector::new(
                stats.cpu_util_pct / 100.0 * current.resources.cpu_cores,
                stats.mem_used_mb,
                stats.disk_util_pct / 100.0 * current.resources.disk_iops,
                stats.log_util_pct / 100.0 * current.resources.log_mbps,
            );

            let balloon_status = if engine.balloon_active() {
                BalloonStatus::Active {
                    reached_target: engine.balloon_reached_target(),
                }
            } else {
                BalloonStatus::Inactive
            };
            let ctx = PolicyContext {
                signals: &signals,
                current: &current,
                catalog,
                available_budget: budget.as_ref().map(|b| b.available()),
                balloon: balloon_status,
            };
            // dasr-lint: allow(D1) reason="obs timer: wall-clock durations feed TimerId::DecideNs only, which PartialEq and the determinism contract exclude"
            let t0 = std::time::Instant::now();
            let decision = policy.decide(&ctx);
            obs.metrics
                .observe_ns(TimerId::DecideNs, t0.elapsed().as_nanos() as u64);

            match decision.balloon {
                BalloonCommand::None => {}
                BalloonCommand::Start { target_mb } => engine.start_balloon(target_mb),
                BalloonCommand::Abort => engine.abort_balloon(),
                BalloonCommand::Commit => engine.commit_balloon(),
            }

            let resized = decision.target != current.id;
            let target = decision.target;
            let target_rung = catalog
                .get(target)
                .expect("policy picked an unknown container")
                .rung;
            obs.record_interval(IntervalObservation {
                trace: &decision.trace,
                latency_ms,
                completed: stats.completed,
                rejected: stats.rejected,
                from_rung: current.rung,
                to_rung: target_rung,
                budget_headroom_pct: budget.as_ref().map(|b| b.remaining() / b.budget() * 100.0),
            });
            intervals.push(IntervalRecord {
                minute: minute as u64,
                container: current.id,
                rung: current.rung,
                cost,
                allocated: current.resources,
                used,
                latency_ms,
                completed: stats.completed,
                rejected: stats.rejected,
                wait_pct,
                mem_used_mb: stats.mem_used_mb,
                resized,
                trace: decision.trace,
            });

            if resized {
                current = catalog
                    .get(target)
                    .expect("policy picked an unknown container")
                    .clone();
                engine.apply_resources(current.resources);
                resizes += 1;
            }
        }

        obs.finish(current.rung, budget.as_ref().map(BudgetManager::remaining));

        RunReport {
            policy: policy.name().to_string(),
            workload: workload_name,
            trace: trace.name.clone(),
            intervals,
            all_latencies_ms: all_latencies,
            resizes,
            rejected_total,
            obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    fn short_trace(rps: f64, minutes: usize) -> Trace {
        Trace::new("test", vec![rps; minutes])
    }

    fn workload() -> CpuIoWorkload {
        CpuIoWorkload::new(CpuIoConfig::small())
    }

    #[test]
    fn static_run_produces_full_report() {
        let cfg = RunConfig::default();
        let mut policy = StaticPolicy::max(&cfg.catalog);
        let report = ClosedLoop::run(&cfg, &short_trace(20.0, 5), workload(), &mut policy);
        assert_eq!(report.intervals.len(), 5);
        assert_eq!(report.resizes, 1, "initial container -> max");
        assert!(
            report.completed_total() > 5 * 60 * 10,
            "most requests complete"
        );
        assert!(report.p95_ms().is_some());
        // After the first interval the max container is billed.
        assert_eq!(report.intervals[2].cost, cfg.catalog.max_cost());
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig::default();
        let run = || {
            let mut policy = StaticPolicy::max(&cfg.catalog);
            let r = ClosedLoop::run(&cfg, &short_trace(10.0, 3), workload(), &mut policy);
            (r.total_cost(), r.completed_total(), r.p95_ms())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budget_is_hard_constraint() {
        use dasr_telemetry::LatencyGoal;

        let minutes = 20;
        let budget = 20.0 * 20.0; // avg 20/interval, Cmin 7
        let cfg = RunConfig {
            knobs: TenantKnobs::none()
                .with_budget(budget)
                .with_latency_goal(LatencyGoal::P95(10.0)), // impossible goal => wants big
            ..RunConfig::default()
        };
        let mut policy = crate::policy::AutoPolicy::with_knobs(cfg.knobs);
        let report = ClosedLoop::run(&cfg, &short_trace(50.0, minutes), workload(), &mut policy);
        assert!(
            report.total_cost() <= budget + 1e-6,
            "spent {} over budget {budget}",
            report.total_cost()
        );
    }

    #[test]
    fn interval_records_track_containers() {
        let cfg = RunConfig::default();
        let mut policy = StaticPolicy::new("pin", cfg.catalog.smallest().id);
        let report = ClosedLoop::run(&cfg, &short_trace(5.0, 4), workload(), &mut policy);
        // Interval 0 uses the default initial container, then the pin.
        assert_eq!(report.intervals[0].rung, 2);
        assert_eq!(report.intervals[1].rung, 0);
        assert!(report.intervals[1].cost < report.intervals[0].cost);
    }
}
