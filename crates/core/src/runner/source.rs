//! The discrete-event simulator as one pluggable loop backend.
//!
//! [`SimulatorSource`] wraps `dasr_engine::Engine` plus a
//! [`TraceDriver`] behind the telemetry seam: it implements both
//! [`TelemetrySource`] (advance one billing minute, surface the interval's
//! [`TelemetrySample`]) and [`ResizeActuator`] (apply resizes and balloon
//! commands to the engine). [`ClosedLoop::run`](super::ClosedLoop::run) is
//! now just "construct a `SimulatorSource`, hand it to the generic loop" —
//! proven bit-identical to the pre-seam loop by the `loop_equivalence`
//! tests against [`OracleLoop`](super::oracle::OracleLoop).

use crate::runner::RunConfig;
use dasr_containers::ResourceVector;
use dasr_engine::{Engine, IntervalStats, SimTime};
use dasr_telemetry::{LatencyGoal, ProbeStatus, ResizeActuator, TelemetrySample, TelemetrySource};
use dasr_workloads::{Trace, TraceDriver, Workload};

/// The engine-backed telemetry source and actuator.
///
/// One instance drives one tenant's run: `observe_interval(m, ..)` submits
/// minute `m`'s arrivals, advances simulated time to the end of the minute,
/// drains the interval stats and returns them as a sample; the actuator
/// half forwards the loop's commands straight to the engine.
pub struct SimulatorSource<W: Workload> {
    engine: Engine,
    driver: TraceDriver<W>,
    // Reused across intervals: `end_interval_into` ping-pongs the
    // latency buffer with the engine, so the per-minute hot loop does
    // not allocate telemetry.
    stats: IntervalStats,
}

impl<W: Workload> SimulatorSource<W> {
    /// Builds the simulator backend exactly as the pre-seam loop did: an
    /// engine sized to `cfg`'s initial container, optionally prewarmed, and
    /// a trace driver seeded from `cfg.seed`.
    pub fn new(cfg: &RunConfig, trace: &Trace, workload: W) -> Self {
        let current = cfg.initial_container();
        let mut engine = Engine::new(cfg.engine, current.resources);
        if cfg.prewarm_pages > 0 {
            engine.prewarm(cfg.prewarm_pages);
        }
        let driver = TraceDriver::new(trace.clone(), workload, cfg.seed);
        Self {
            engine,
            driver,
            stats: IntervalStats::default(),
        }
    }

    /// The wrapped engine (read-only; tests inspect balloon state).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl<W: Workload> TelemetrySource for SimulatorSource<W> {
    // dasr-lint: no-alloc
    fn intervals(&self) -> usize {
        self.driver.minutes()
    }

    // dasr-lint: no-alloc
    fn workload_name(&self) -> &str {
        self.driver.workload_name()
    }

    // dasr-lint: no-alloc
    fn trace_name(&self) -> &str {
        &self.driver.trace().name
    }

    fn observe_interval(&mut self, interval: u64, goal: LatencyGoal) -> TelemetrySample {
        self.driver
            .submit_minute(interval as usize, &mut self.engine);
        self.engine.run_until(SimTime::from_mins(interval + 1));
        self.engine.end_interval_into(&mut self.stats);
        TelemetrySample::from_interval(interval, &self.stats, goal)
    }

    // dasr-lint: no-alloc
    fn interval_latencies_ms(&self) -> &[f64] {
        &self.stats.latencies_ms
    }

    // dasr-lint: no-alloc
    fn probe(&self) -> ProbeStatus {
        if self.engine.balloon_active() {
            ProbeStatus::Active {
                reached_target: self.engine.balloon_reached_target(),
            }
        } else {
            ProbeStatus::Inactive
        }
    }
}

impl<W: Workload> ResizeActuator for SimulatorSource<W> {
    // dasr-lint: no-alloc
    fn apply_resources(&mut self, resources: ResourceVector) {
        self.engine.apply_resources(resources);
    }

    // dasr-lint: no-alloc
    fn start_balloon(&mut self, target_mb: f64) {
        self.engine.start_balloon(target_mb);
    }

    // dasr-lint: no-alloc
    fn abort_balloon(&mut self) {
        self.engine.abort_balloon();
    }

    // dasr-lint: no-alloc
    fn commit_balloon(&mut self) {
        self.engine.commit_balloon();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    fn source() -> SimulatorSource<CpuIoWorkload> {
        let cfg = RunConfig::default();
        let trace = Trace::new("flat", vec![10.0; 3]);
        SimulatorSource::new(&cfg, &trace, CpuIoWorkload::new(CpuIoConfig::small()))
    }

    #[test]
    fn simulator_source_reports_shape() {
        let s = source();
        assert_eq!(s.intervals(), 3);
        assert_eq!(s.trace_name(), "flat");
        assert_eq!(s.probe(), ProbeStatus::Inactive);
    }

    #[test]
    fn observe_interval_advances_the_engine() {
        let mut s = source();
        let goal = LatencyGoal::P95(f64::INFINITY);
        let first = s.observe_interval(0, goal);
        assert_eq!(first.interval, 0);
        assert!(first.arrivals > 0, "open-loop arrivals were submitted");
        assert!(first.completed > 0, "the engine ran the minute");
        assert_eq!(
            s.interval_latencies_ms().len() as u64,
            first.completed,
            "raw latencies match the sample's completion count"
        );
        let second = s.observe_interval(1, goal);
        assert_eq!(second.interval, 1);
    }

    #[test]
    fn actuator_half_reaches_the_engine() {
        let mut s = source();
        let goal = LatencyGoal::P95(f64::INFINITY);
        s.observe_interval(0, goal);
        let cap = s.observe_interval(1, goal).mem_capacity_mb;
        s.start_balloon(cap / 2.0);
        s.observe_interval(2, goal);
        assert!(
            matches!(s.probe(), ProbeStatus::Active { .. }),
            "balloon command reached the engine"
        );
        s.abort_balloon();
        assert_eq!(s.probe(), ProbeStatus::Inactive);
    }
}
