//! Per-shard fleet aggregation: the monoid the sharded scheduler folds.
//!
//! The fleet scheduler (`crate::runner::fleet`) splits the tenant index
//! space into contiguous shards, runs each shard's closed loops on a worker
//! thread, and folds every finished [`RunReport`] into that shard's
//! [`FleetAccumulator`]. Shard accumulators are then merged into one and
//! [`FleetAccumulator::finish`]ed into a [`FleetSummary`].
//!
//! # Why this is a monoid (and why that matters)
//!
//! `fold`/`merge` must be associative with `new()` as identity, or the
//! result would depend on how tenants were grouped into shards and the
//! "bit-identical for any thread/shard count" contract would break.
//! Integer fields (counts, histogram buckets) are trivially associative;
//! the floating-point sums (fleet cost, latency sums, gauge totals) are
//! *not* under plain `f64` addition, so they are carried as
//! [`ExactSum`] error-free expansions and rounded exactly once in
//! `finish`. The result therefore depends only on the multiset of folded
//! reports — never on shard boundaries, merge order, or thread count.
//!
//! # Why a summary at all
//!
//! A full fleet run keeps every [`RunReport`] — O(tenants) memory, with
//! every request latency retained. At 100k+ tenants that is the scaling
//! bottleneck, and §7 of the paper only needs fleet aggregates. Summary
//! mode folds each report into the accumulator and *drops* it, keeping
//! memory O(shards); request latencies survive as a fixed-bucket
//! histogram ([`REQUEST_LATENCY_BOUNDS`]) whose quantile estimates stand
//! in for the pooled exact percentiles.

use crate::obs::{FixedHistogram, MetricRegistry, MetricsAccumulator};
use crate::report::RunReport;
use crate::rules::RuleHistogram;
use dasr_stats::ExactSum;

/// Inclusive upper bounds (ms) of the fleet request-latency histogram, with
/// an implicit overflow bucket above the last bound.
///
/// Log-spaced from sub-millisecond to 10 s so the §2.3 latency-goal range
/// (tens to hundreds of ms) lands in the fine-grained middle: the p95
/// estimate's error is bounded by one bucket's width.
pub const REQUEST_LATENCY_BOUNDS: &[f64] = &[
    0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0,
    500.0, 750.0, 1_000.0, 1_500.0, 2_500.0, 5_000.0, 10_000.0,
];

/// One shard's running fold over finished tenant reports.
///
/// `new` is the identity, [`FleetAccumulator::fold_report`] absorbs one
/// tenant, [`FleetAccumulator::merge`] combines two shards; all three
/// commute and associate at the bit level (see the [module
/// docs](self#why-this-is-a-monoid-and-why-that-matters)).
#[derive(Debug, Clone)]
pub struct FleetAccumulator {
    tenants: u64,
    intervals: u64,
    completed: u64,
    rejected: u64,
    resizes: u64,
    events: u64,
    cost: ExactSum,
    latency_counts: Vec<u64>,
    latency_total: u64,
    latency_sum: ExactSum,
    metrics: MetricsAccumulator,
}

impl FleetAccumulator {
    /// The empty fold (monoid identity).
    pub fn new() -> Self {
        Self {
            tenants: 0,
            intervals: 0,
            completed: 0,
            rejected: 0,
            resizes: 0,
            events: 0,
            cost: ExactSum::new(),
            latency_counts: vec![0; REQUEST_LATENCY_BOUNDS.len() + 1],
            latency_total: 0,
            latency_sum: ExactSum::new(),
            metrics: MetricsAccumulator::new(),
        }
    }

    /// Absorbs one finished tenant report. Called on the worker that ran
    /// the tenant, so in summary mode the report can be dropped right
    /// after and never crosses threads.
    // dasr-lint: no-alloc
    // dasr-lint: entry(G1)
    pub fn fold_report(&mut self, report: &RunReport) {
        self.tenants += 1;
        self.intervals += report.intervals.len() as u64;
        self.rejected += report.rejected_total;
        self.resizes += report.resizes;
        self.events += report.obs.events.len() as u64;
        for rec in &report.intervals {
            self.completed += rec.completed;
            self.cost.add(rec.cost);
        }
        for &ms in &report.all_latencies_ms {
            let slot = REQUEST_LATENCY_BOUNDS.partition_point(|&b| b < ms);
            self.latency_counts[slot] += 1;
            self.latency_total += 1;
            self.latency_sum.add(ms);
        }
        self.metrics.fold(&report.obs.metrics);
    }

    /// Merges another shard's fold in (the monoid operation).
    // dasr-lint: no-alloc
    // dasr-lint: entry(G1)
    pub fn merge(&mut self, other: &FleetAccumulator) {
        self.tenants += other.tenants;
        self.intervals += other.intervals;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.resizes += other.resizes;
        self.events += other.events;
        self.cost.merge(&other.cost);
        for (a, b) in self
            .latency_counts
            .iter_mut()
            .zip(other.latency_counts.iter())
        {
            *a += b;
        }
        self.latency_total += other.latency_total;
        self.latency_sum.merge(&other.latency_sum);
        self.metrics.merge(&other.metrics);
    }

    /// Rounds the exact fold into a [`FleetSummary`].
    pub fn finish(self) -> FleetSummary {
        FleetSummary {
            tenants: self.tenants,
            intervals_total: self.intervals,
            total_cost: self.cost.value(),
            completed_total: self.completed,
            rejected_total: self.rejected,
            resizes_total: self.resizes,
            events_emitted: self.events,
            latency: FixedHistogram::from_parts(
                REQUEST_LATENCY_BOUNDS,
                self.latency_counts,
                self.latency_total,
                self.latency_sum.value(),
            ),
            metrics: self.metrics.finish(),
        }
    }
}

impl Default for FleetAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Fleet-wide aggregates in O(1) fields — the memory-flat alternative to
/// keeping every tenant's [`RunReport`].
///
/// Produced by the scheduler's monoid fold, so every field is bit-identical
/// for any thread or shard count. Equality covers all of it (the
/// [`MetricRegistry`] inside compares its deterministic sections only, as
/// everywhere else).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Tenants folded in.
    pub tenants: u64,
    /// Billing intervals across the fleet.
    pub intervals_total: u64,
    /// Total cost across the fleet (exact sum, correctly rounded).
    pub total_cost: f64,
    /// Requests completed across the fleet.
    pub completed_total: u64,
    /// Requests rejected across the fleet.
    pub rejected_total: u64,
    /// Resize operations across the fleet.
    pub resizes_total: u64,
    /// Run events recorded across the fleet (kept in full mode, streamed
    /// to the sink in summary mode).
    pub events_emitted: u64,
    /// Pooled request latencies as a fixed-bucket histogram
    /// ([`REQUEST_LATENCY_BOUNDS`]).
    pub latency: FixedHistogram,
    /// Every tenant's registry folded exactly (see
    /// [`MetricsAccumulator`]).
    pub metrics: MetricRegistry,
}

impl FleetSummary {
    /// Mean per-interval cost across all tenants' intervals.
    pub fn avg_cost_per_interval(&self) -> f64 {
        if self.intervals_total == 0 {
            0.0
        } else {
            self.total_cost / self.intervals_total as f64
        }
    }

    /// Pooled 95th-percentile request latency *estimate*, ms, from the
    /// latency histogram (accuracy bounded by the bucket width — see
    /// [`FixedHistogram::quantile_estimate`]).
    pub fn p95_estimate_ms(&self) -> Option<f64> {
        self.latency.quantile_estimate(95.0)
    }

    /// Mean request latency, ms (`None` when no requests completed).
    pub fn mean_latency_ms(&self) -> Option<f64> {
        self.latency.mean()
    }

    /// Fleet-wide rule-fire counts (from the folded registries).
    pub fn rule_histogram(&self) -> &RuleHistogram {
        self.metrics.rules()
    }

    /// One-line fleet summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "fleet of {:>4}: ~p95 {:>8.1} ms | avg cost/interval {:>7.2} | resizes {:>5} | rejected {}",
            self.tenants,
            self.p95_estimate_ms().unwrap_or(f64::NAN),
            self.avg_cost_per_interval(),
            self.resizes_total,
            self.rejected_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{EventVerbosity, RunObservability};
    use crate::report::IntervalRecord;
    use crate::trace::DecisionTrace;
    use dasr_containers::{ContainerId, ResourceVector};

    fn record(minute: u64, cost: f64, completed: u64) -> IntervalRecord {
        IntervalRecord {
            minute,
            container: ContainerId(0),
            rung: 0,
            cost,
            allocated: ResourceVector::new(1.0, 1024.0, 100.0, 5.0),
            used: ResourceVector::ZERO,
            latency_ms: Some(10.0),
            completed,
            rejected: 0,
            wait_pct: [0.0; 7],
            mem_used_mb: 0.0,
            resized: false,
            trace: DecisionTrace::empty(minute, ContainerId(0)),
        }
    }

    fn report(seed: u64) -> RunReport {
        // Mixed-magnitude costs/latencies so a plain f64 fold would be
        // grouping-dependent.
        let scale = 1.0 + (seed % 7) as f64 * 1e11;
        RunReport {
            policy: "auto".into(),
            workload: "cpuio".into(),
            trace: "t".into(),
            intervals: vec![
                record(0, 0.07 * scale, 10 + seed),
                record(1, 0.30 / scale, 5),
            ],
            all_latencies_ms: vec![0.2, 4.0 * (seed + 1) as f64, 180.0, 20_000.0],
            resizes: seed % 3,
            rejected_total: seed % 2,
            obs: RunObservability::new(EventVerbosity::Notable),
        }
    }

    #[test]
    fn empty_fold_finishes_to_zeros() {
        let s = FleetAccumulator::new().finish();
        assert_eq!(s.tenants, 0);
        assert_eq!(s.total_cost, 0.0);
        assert_eq!(s.avg_cost_per_interval(), 0.0);
        assert_eq!(s.p95_estimate_ms(), None);
        assert_eq!(s.mean_latency_ms(), None);
    }

    #[test]
    fn fold_counts_everything() {
        let mut acc = FleetAccumulator::new();
        acc.fold_report(&report(0));
        acc.fold_report(&report(1));
        let s = acc.finish();
        assert_eq!(s.tenants, 2);
        assert_eq!(s.intervals_total, 4);
        assert_eq!(s.completed_total, 10 + 5 + 11 + 5);
        assert_eq!(s.rejected_total, 1);
        assert_eq!(s.resizes_total, 1);
        assert_eq!(s.latency.total(), 8);
        // 20_000 ms lands in the overflow bucket.
        assert_eq!(
            s.latency.counts()[REQUEST_LATENCY_BOUNDS.len()],
            2,
            "overflow bucket"
        );
        assert!(s.summary().contains("fleet of"));
    }

    #[test]
    fn merge_is_grouping_independent_bit_for_bit() {
        let reports: Vec<RunReport> = (0..40).map(report).collect();
        let mut sequential = FleetAccumulator::new();
        for r in &reports {
            sequential.fold_report(r);
        }
        let sequential = sequential.finish();
        for group in [1usize, 3, 8, 17, 40] {
            let mut merged = FleetAccumulator::new();
            for chunk in reports.chunks(group) {
                let mut shard = FleetAccumulator::new();
                for r in chunk {
                    shard.fold_report(r);
                }
                merged.merge(&shard);
            }
            let merged = merged.finish();
            assert_eq!(merged, sequential, "shard size {group} diverged");
            assert_eq!(
                merged.total_cost.to_bits(),
                sequential.total_cost.to_bits(),
                "cost bits diverged at shard size {group}"
            );
            assert_eq!(
                merged.latency.sum().to_bits(),
                sequential.latency.sum().to_bits(),
                "latency sum bits diverged at shard size {group}"
            );
        }
    }

    #[test]
    fn latency_bucketing_matches_fixed_histogram_observe() {
        let mut reference = FixedHistogram::new(REQUEST_LATENCY_BOUNDS);
        let mut acc = FleetAccumulator::new();
        let r = report(3);
        for &ms in &r.all_latencies_ms {
            reference.observe(ms);
        }
        acc.fold_report(&r);
        assert_eq!(acc.finish().latency.counts(), reference.counts());
    }
}
