//! Fleet observability: the metrics registry and structured run-event
//! stream over the §6 closed loop.
//!
//! §7 of the paper evaluates the auto-scaling policies entirely through
//! aggregate fleet telemetry — cost relative to peak provisioning, latency
//! against the goal, resize counts. This module is that layer for the
//! reproduction:
//!
//! - [`MetricRegistry`] — counters, gauges and fixed-bucket histograms
//!   covering the whole loop: interval/request totals, resize traffic and
//!   denials (§6 cooldown, §5 budget), balloon-probe lifecycle (§4.3),
//!   latency-goal violations (§2.3), budget token-bucket levels (§5), and
//!   the absorbed [`crate::rules::RuleHistogram`] of §4 rule fires.
//! - [`RunEvent`] — a structured stream of the notable moments (resizes,
//!   denials, throttles, balloon transitions, SLO violations), each one a
//!   JSON line.
//! - [`RunObservability`] — one tenant's registry + event stream, recorded
//!   per interval by the runner and merged deterministically across a
//!   fleet.
//!
//! # Determinism
//!
//! Everything here is recorded from the *simulated* run, so a fleet's
//! merged observability is bit-identical for any thread count — the same
//! guarantee [`crate::runner::fleet::FleetRunner`] gives for reports. The
//! single exception is wall-clock [`TimerId`] histograms, which measure
//! the harness itself and are excluded from equality (see
//! [`MetricRegistry`]).
//!
//! # Rendering rule
//!
//! Human-readable output (registry [`std::fmt::Display`], event
//! [`std::fmt::Display`], run summaries) is always *rendered from* the
//! structured data on demand, never stored alongside it.

mod events;
mod metrics;
mod sink;

pub use events::{BalloonPhase, DenyReason, EventKind, RunEvent};
pub use metrics::{
    CounterId, FixedHistogram, GaugeId, HistogramId, MetricRegistry, MetricsAccumulator, TimerId,
};
pub use sink::{CountingSink, EventSink, JsonlSink, NullSink, VecSink};

use crate::rules::RuleId;
use crate::trace::{BalloonGate, DecisionTrace};
use std::fmt::Write as _;

/// How much of the event stream to keep.
///
/// Metrics are always recorded (they are O(1) per run); verbosity only
/// controls the [`RunEvent`] stream, whose size grows with the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventVerbosity {
    /// No events are kept.
    Off,
    /// Notable events only: resizes, denials, budget throttles, balloon
    /// transitions, SLO violations. Bounded by the number of notable
    /// moments, not by run length — safe for 1000-tenant fleets.
    #[default]
    Notable,
    /// Everything, including per-interval start/end events. One tenant ×
    /// one day is ~2880 extra events; use for debugging single runs.
    Verbose,
}

/// Observability configuration carried by
/// [`crate::runner::RunConfig::obs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Event-stream verbosity.
    pub verbosity: EventVerbosity,
}

/// Everything one interval hands to [`RunObservability::record_interval`].
///
/// All fields come from structured state the loop already produced (the
/// [`DecisionTrace`], the engine's interval stats, the §5 budget manager)
/// — events are derived from this, never from formatted text.
#[derive(Debug, Clone, Copy)]
pub struct IntervalObservation<'a> {
    /// The interval's decision trace.
    pub trace: &'a DecisionTrace,
    /// Aggregated latency over the interval, ms (`None` when idle).
    pub latency_ms: Option<f64>,
    /// Requests completed in the interval.
    pub completed: u64,
    /// Requests rejected in the interval.
    pub rejected: u64,
    /// Container rung billed for the interval.
    pub from_rung: u8,
    /// Container rung chosen for the next interval.
    pub to_rung: u8,
    /// Whole-period budget remaining after this interval's charge, % of
    /// the budget (§5), when a budget is set.
    pub budget_headroom_pct: Option<f64>,
}

/// One run's observability: a [`MetricRegistry`] plus the [`RunEvent`]
/// stream, recorded interval by interval and merged across fleets.
///
/// Equality compares the deterministic sections only (see
/// [`MetricRegistry`]'s `PartialEq`), which is what the fleet determinism
/// property test asserts across thread counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunObservability {
    /// The metrics registry.
    pub metrics: MetricRegistry,
    /// Structured events, in interval order.
    pub events: Vec<RunEvent>,
    /// The verbosity events were recorded at.
    pub verbosity: EventVerbosity,
}

impl RunObservability {
    /// An empty stream at `verbosity`.
    pub fn new(verbosity: EventVerbosity) -> Self {
        Self {
            metrics: MetricRegistry::new(),
            events: Vec::new(),
            verbosity,
        }
    }

    fn push(&mut self, interval: u64, kind: EventKind) {
        if self.verbosity != EventVerbosity::Off {
            self.events.push(RunEvent {
                tenant: None,
                interval,
                kind,
            });
        }
    }

    /// Records one closed-loop interval: counters, histograms, rule fires
    /// and the derived notable events.
    pub fn record_interval(&mut self, o: IntervalObservation<'_>) {
        let t = o.trace;
        let i = t.interval;
        if self.verbosity == EventVerbosity::Verbose {
            self.push(i, EventKind::IntervalStart);
        }

        self.metrics.inc(CounterId::IntervalsRun);
        self.metrics.add(CounterId::RequestsCompleted, o.completed);
        self.metrics.add(CounterId::RequestsRejected, o.rejected);
        t.record_fires(self.metrics.rules_mut());
        if let Some(ms) = o.latency_ms {
            self.metrics.observe(HistogramId::IntervalLatencyMs, ms);
        }

        // Resize outcome (§2.2 / §6): issued, or derived denial.
        if t.target != t.from {
            let step = o.to_rung as i8 - o.from_rung as i8;
            self.metrics.inc(CounterId::ResizesIssued);
            self.metrics.inc(if step > 0 {
                CounterId::ResizesUp
            } else {
                CounterId::ResizesDown
            });
            self.metrics.observe(HistogramId::ResizeStep, step as f64);
            self.push(
                i,
                EventKind::ResizeIssued {
                    from_rung: o.from_rung,
                    to_rung: o.to_rung,
                },
            );
        } else if t.branch == RuleId::CooldownHold {
            self.metrics.inc(CounterId::ResizesDeniedCooldown);
            self.push(
                i,
                EventKind::ResizeDenied {
                    reason: DenyReason::Cooldown,
                },
            );
        } else if t.branch == RuleId::ScaleUpDemand && t.gates.contains(&RuleId::BudgetConstrained)
        {
            self.metrics.inc(CounterId::ResizesDeniedBudget);
            self.push(
                i,
                EventKind::ResizeDenied {
                    reason: DenyReason::Budget,
                },
            );
        }

        // Budget gate (§5).
        if t.budget_limited {
            self.metrics.inc(CounterId::BudgetThrottles);
            self.push(
                i,
                EventKind::BudgetThrottle {
                    headroom_pct: o.budget_headroom_pct.unwrap_or(0.0),
                },
            );
        }
        if t.gates.contains(&RuleId::BudgetForcedDowngrade) {
            self.metrics.inc(CounterId::BudgetForcedDowngrades);
        }
        if t.gates.contains(&RuleId::EmergencyBypass) {
            self.metrics.inc(CounterId::EmergencyBypasses);
        }
        if let Some(pct) = o.budget_headroom_pct {
            self.metrics.observe(HistogramId::BudgetHeadroomPct, pct);
        }

        // Balloon probe (§4.3).
        match t.balloon {
            BalloonGate::Disabled | BalloonGate::Idle => {}
            BalloonGate::Started { target_mb } => {
                self.metrics.inc(CounterId::BalloonStarts);
                self.push(
                    i,
                    EventKind::BalloonTrigger {
                        phase: BalloonPhase::Started,
                        target_mb: Some(target_mb),
                    },
                );
            }
            BalloonGate::Aborted => {
                self.metrics.inc(CounterId::BalloonAborts);
                self.push(
                    i,
                    EventKind::BalloonTrigger {
                        phase: BalloonPhase::Aborted,
                        target_mb: None,
                    },
                );
            }
            BalloonGate::Confirmed { target_mb } => {
                self.metrics.inc(CounterId::BalloonCommits);
                self.push(
                    i,
                    EventKind::BalloonTrigger {
                        phase: BalloonPhase::Confirmed,
                        target_mb: Some(target_mb),
                    },
                );
            }
        }

        // Latency goal (§2.3).
        if let (Some(observed_ms), Some(goal_ms)) = (t.latency.observed_ms, t.latency.goal_ms) {
            if observed_ms > goal_ms {
                self.metrics.inc(CounterId::SloViolations);
                self.push(
                    i,
                    EventKind::SloViolation {
                        observed_ms,
                        goal_ms,
                    },
                );
            }
        }

        if self.verbosity == EventVerbosity::Verbose {
            self.push(
                i,
                EventKind::IntervalEnd {
                    latency_ms: o.latency_ms,
                    completed: o.completed,
                    rejected: o.rejected,
                },
            );
        }
    }

    /// Records end-of-run gauges: the final container rung and, when a
    /// budget is set, the tokens remaining (§5).
    pub fn finish(&mut self, final_rung: u8, budget_remaining: Option<f64>) {
        self.metrics
            .set_gauge(GaugeId::FinalRung, final_rung as f64);
        if let Some(rem) = budget_remaining {
            self.metrics.set_gauge(GaugeId::BudgetRemaining, rem);
        }
    }

    /// Stamps every event with `tenant` (done by the fleet runner so a
    /// merged stream stays attributable).
    pub fn stamp_tenant(&mut self, tenant: u64) {
        for ev in &mut self.events {
            ev.tenant = Some(tenant);
        }
    }

    /// Merges another tenant's observability into this fleet aggregate:
    /// metrics add, events append. Call in tenant-index order — the result
    /// is then a pure fold and bit-identical for any thread count.
    pub fn merge(&mut self, other: &RunObservability) {
        self.metrics.merge(&other.metrics);
        self.events.extend(other.events.iter().cloned());
    }

    /// The event stream as JSON lines (one [`RunEvent`] per line).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the run's observability summary — counters, gauges,
    /// histogram digests, rule fires — from the structured registry.
    pub fn summary(&self) -> String {
        let mut out = String::from("observability:\n");
        let _ = write!(out, "{}", self.metrics);
        let _ = writeln!(
            out,
            "  events recorded            {:>10}",
            self.events.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_containers::ContainerId;

    fn trace(interval: u64, from: u32, target: u32) -> DecisionTrace {
        let mut t = DecisionTrace::empty(interval, ContainerId(from));
        t.target = ContainerId(target);
        t
    }

    fn obs_of(t: &DecisionTrace, from_rung: u8, to_rung: u8) -> IntervalObservation<'_> {
        IntervalObservation {
            trace: t,
            latency_ms: Some(12.0),
            completed: 100,
            rejected: 1,
            from_rung,
            to_rung,
            budget_headroom_pct: Some(80.0),
        }
    }

    #[test]
    fn resize_is_counted_and_evented() {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        let t = trace(3, 1, 2);
        obs.record_interval(obs_of(&t, 1, 3));
        assert_eq!(obs.metrics.counter(CounterId::ResizesIssued), 1);
        assert_eq!(obs.metrics.counter(CounterId::ResizesUp), 1);
        assert_eq!(obs.metrics.histogram(HistogramId::ResizeStep).sum(), 2.0);
        assert_eq!(obs.events.len(), 1);
        assert!(matches!(
            obs.events[0].kind,
            EventKind::ResizeIssued {
                from_rung: 1,
                to_rung: 3
            }
        ));
    }

    #[test]
    fn cooldown_and_budget_denials_are_derived_from_the_trace() {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        let mut t = trace(1, 2, 2);
        t.branch = RuleId::CooldownHold;
        obs.record_interval(obs_of(&t, 2, 2));
        let mut t = trace(2, 2, 2);
        t.branch = RuleId::ScaleUpDemand;
        t.gates.push(RuleId::BudgetConstrained);
        t.budget_limited = true;
        obs.record_interval(obs_of(&t, 2, 2));
        assert_eq!(obs.metrics.counter(CounterId::ResizesDeniedCooldown), 1);
        assert_eq!(obs.metrics.counter(CounterId::ResizesDeniedBudget), 1);
        assert_eq!(obs.metrics.counter(CounterId::BudgetThrottles), 1);
        let kinds: Vec<&str> = obs.events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["resize_denied", "resize_denied", "budget_throttle"]
        );
    }

    #[test]
    fn slo_violation_needs_goal_exceeded() {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        let mut t = trace(0, 1, 1);
        t.latency.observed_ms = Some(80.0);
        t.latency.goal_ms = Some(100.0);
        obs.record_interval(obs_of(&t, 1, 1));
        assert_eq!(obs.metrics.counter(CounterId::SloViolations), 0);
        t.latency.observed_ms = Some(120.0);
        obs.record_interval(obs_of(&t, 1, 1));
        assert_eq!(obs.metrics.counter(CounterId::SloViolations), 1);
    }

    #[test]
    fn verbosity_gates_the_stream_not_the_metrics() {
        let t = trace(0, 1, 2);
        let mut off = RunObservability::new(EventVerbosity::Off);
        let mut verbose = RunObservability::new(EventVerbosity::Verbose);
        off.record_interval(obs_of(&t, 1, 2));
        verbose.record_interval(obs_of(&t, 1, 2));
        assert!(off.events.is_empty());
        // verbose: start + resize + end
        assert_eq!(verbose.events.len(), 3);
        assert_eq!(verbose.events[0].kind.name(), "interval_start");
        assert_eq!(verbose.events[2].kind.name(), "interval_end");
        assert_eq!(
            off.metrics.counter(CounterId::IntervalsRun),
            verbose.metrics.counter(CounterId::IntervalsRun)
        );
    }

    #[test]
    fn balloon_transitions_map_to_events() {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        for (gate, starts, aborts, commits) in [
            (BalloonGate::Started { target_mb: 512.0 }, 1, 0, 0),
            (BalloonGate::Aborted, 1, 1, 0),
            (BalloonGate::Confirmed { target_mb: 400.0 }, 1, 1, 1),
        ] {
            let mut t = trace(0, 1, 1);
            t.balloon = gate;
            obs.record_interval(obs_of(&t, 1, 1));
            assert_eq!(obs.metrics.counter(CounterId::BalloonStarts), starts);
            assert_eq!(obs.metrics.counter(CounterId::BalloonAborts), aborts);
            assert_eq!(obs.metrics.counter(CounterId::BalloonCommits), commits);
        }
        assert_eq!(obs.events.len(), 3);
    }

    #[test]
    fn merge_stamps_and_round_trips_jsonl() {
        let mut a = RunObservability::new(EventVerbosity::Notable);
        a.record_interval(obs_of(&trace(0, 1, 2), 1, 2));
        a.finish(2, Some(100.0));
        let mut b = a.clone();
        a.stamp_tenant(0);
        b.stamp_tenant(1);
        let mut fleet = RunObservability::new(EventVerbosity::Notable);
        fleet.merge(&a);
        fleet.merge(&b);
        assert_eq!(fleet.metrics.counter(CounterId::ResizesIssued), 2);
        assert_eq!(fleet.metrics.gauge(GaugeId::BudgetRemaining), 200.0);
        let jsonl = fleet.events_jsonl();
        let parsed: Vec<RunEvent> = jsonl
            .lines()
            .map(|l| RunEvent::from_json_line(l).unwrap())
            .collect();
        assert_eq!(parsed, fleet.events);
        assert_eq!(parsed[0].tenant, Some(0));
        assert_eq!(parsed[1].tenant, Some(1));
    }

    #[test]
    fn summary_renders_from_structure() {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        obs.record_interval(obs_of(&trace(0, 1, 2), 1, 2));
        let s = obs.summary();
        assert!(s.contains("intervals_run"));
        assert!(s.contains("events recorded"));
    }
}
