//! The fleet metrics registry: counters, gauges and fixed-bucket
//! histograms with stable wire names.
//!
//! Mirrors the design of [`crate::rules::RuleId`] and the no-serde JSONL
//! style of [`crate::trace`]: every metric has a stable dense identifier
//! (an enum with a wire name), the registry is a handful of flat arrays
//! indexed by those identifiers, and serialization is an explicit
//! hand-rolled mapping. There are no locks anywhere — each tenant's closed
//! loop owns its registry exclusively, and fleet-wide aggregation is a
//! deterministic post-hoc [`MetricRegistry::merge`] in tenant-index order
//! (the same contract as [`crate::runner::fleet::FleetRunner`]).
//!
//! The registry is split into a **deterministic** section (counters,
//! gauges, value histograms — pure functions of the simulated run, §7's
//! aggregate fleet telemetry) and a **wall-clock timer** section
//! ([`TimerId`]) measuring the *harness itself* (e.g. §3 signal-computation
//! time). Timers are inherently non-deterministic, so they are excluded
//! from [`PartialEq`] and from the bit-identical fleet-merge guarantee;
//! everything else participates.

use crate::rules::{RuleHistogram, RuleId};
use dasr_stats::ExactSum;
use std::fmt;
use std::fmt::Write as _;

/// Monotone event counts over one run (or one merged fleet).
///
/// The variants cover the §6 loop end to end: intervals and requests,
/// resize traffic (§2.2's change events), budget-gate engagements (§5),
/// balloon-probe lifecycle (§4.3) and latency-goal violations (§2.3).
/// Discriminant order is the wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterId {
    /// Billing intervals executed (§6: one decision each).
    IntervalsRun,
    /// Requests completed across the run.
    RequestsCompleted,
    /// Requests rejected by admission control.
    RequestsRejected,
    /// Resize operations issued (any direction, §2.2).
    ResizesIssued,
    /// Resizes to a larger (more expensive) container.
    ResizesUp,
    /// Resizes to a smaller (cheaper) container.
    ResizesDown,
    /// Scale-up demand present but both directions sat inside the
    /// post-resize cooldown (§6's damping).
    ResizesDeniedCooldown,
    /// A recommended scale-up was truncated or blocked by the available
    /// budget (§5).
    ResizesDeniedBudget,
    /// The budget gate engaged in any form — truncation, block or forced
    /// downgrade (§5).
    BudgetThrottles,
    /// The bucket could no longer afford the *current* container and forced
    /// a downgrade (§5).
    BudgetForcedDowngrades,
    /// Latency beyond the emergency factor bypassed the cooldown (§6).
    EmergencyBypasses,
    /// Balloon probes started (§4.3).
    BalloonStarts,
    /// Balloon probes aborted on rising disk I/O (§4.3).
    BalloonAborts,
    /// Balloon probes committed, authorizing a memory shrink (§4.3).
    BalloonCommits,
    /// Intervals whose observed latency exceeded the tenant's goal (§2.3 —
    /// RobustScaler's QoS-violation axis).
    SloViolations,
}

impl CounterId {
    /// Number of counters.
    pub const COUNT: usize = 15;

    /// Every counter, in wire order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::IntervalsRun,
        CounterId::RequestsCompleted,
        CounterId::RequestsRejected,
        CounterId::ResizesIssued,
        CounterId::ResizesUp,
        CounterId::ResizesDown,
        CounterId::ResizesDeniedCooldown,
        CounterId::ResizesDeniedBudget,
        CounterId::BudgetThrottles,
        CounterId::BudgetForcedDowngrades,
        CounterId::EmergencyBypasses,
        CounterId::BalloonStarts,
        CounterId::BalloonAborts,
        CounterId::BalloonCommits,
        CounterId::SloViolations,
    ];

    /// Dense index (the discriminant), for registry slots.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name used by the JSONL metric dump.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::IntervalsRun => "intervals_run",
            CounterId::RequestsCompleted => "requests_completed",
            CounterId::RequestsRejected => "requests_rejected",
            CounterId::ResizesIssued => "resizes_issued",
            CounterId::ResizesUp => "resizes_up",
            CounterId::ResizesDown => "resizes_down",
            CounterId::ResizesDeniedCooldown => "resizes_denied_cooldown",
            CounterId::ResizesDeniedBudget => "resizes_denied_budget",
            CounterId::BudgetThrottles => "budget_throttles",
            CounterId::BudgetForcedDowngrades => "budget_forced_downgrades",
            CounterId::EmergencyBypasses => "emergency_bypasses",
            CounterId::BalloonStarts => "balloon_starts",
            CounterId::BalloonAborts => "balloon_aborts",
            CounterId::BalloonCommits => "balloon_commits",
            CounterId::SloViolations => "slo_violations",
        }
    }
}

/// Last-value-wins instantaneous readings.
///
/// Gauges record the most recent observation; the fleet merge *sums* them
/// (documented per variant), which is the meaningful fleet aggregate for
/// every gauge defined here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GaugeId {
    /// Budget tokens remaining at the end of the run (§5); fleet merge:
    /// total remaining across tenants.
    BudgetRemaining,
    /// Container rung in effect after the final decision; fleet merge: sum
    /// of rungs (divide by tenant count for the mean).
    FinalRung,
}

impl GaugeId {
    /// Number of gauges.
    pub const COUNT: usize = 2;

    /// Every gauge, in wire order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [GaugeId::BudgetRemaining, GaugeId::FinalRung];

    /// Dense index (the discriminant), for registry slots.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name used by the JSONL metric dump.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::BudgetRemaining => "budget_remaining",
            GaugeId::FinalRung => "final_rung",
        }
    }
}

/// Deterministic fixed-bucket value histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HistogramId {
    /// Signed rung delta of every issued resize (§2.2's step-size
    /// distribution, Figure 2).
    ResizeStep,
    /// Per-interval aggregated latency, ms (the §7 latency axis).
    IntervalLatencyMs,
    /// Budget headroom at each interval's charge, % of the full-period
    /// budget remaining (§5 token-bucket level).
    BudgetHeadroomPct,
}

impl HistogramId {
    /// Number of value histograms.
    pub const COUNT: usize = 3;

    /// Every histogram, in wire order.
    pub const ALL: [HistogramId; HistogramId::COUNT] = [
        HistogramId::ResizeStep,
        HistogramId::IntervalLatencyMs,
        HistogramId::BudgetHeadroomPct,
    ];

    /// Dense index (the discriminant), for registry slots.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name used by the JSONL metric dump.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::ResizeStep => "resize_step",
            HistogramId::IntervalLatencyMs => "interval_latency_ms",
            HistogramId::BudgetHeadroomPct => "budget_headroom_pct",
        }
    }

    /// Inclusive upper bounds of the histogram's buckets (one implicit
    /// overflow bucket above the last bound).
    pub fn bounds(self) -> &'static [f64] {
        match self {
            HistogramId::ResizeStep => &[-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0],
            HistogramId::IntervalLatencyMs => &[
                5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
            ],
            HistogramId::BudgetHeadroomPct => {
                &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
            }
        }
    }
}

/// Wall-clock timing histograms over the harness's own hot paths.
///
/// Timers measure the *implementation* (how long §3 signal computation or a
/// §6 decision takes on this machine), not the simulated system, so they
/// are **excluded** from [`MetricRegistry`]'s `PartialEq` and from the
/// fleet determinism contract. They still merge additively for fleet-wide
/// latency profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerId {
    /// Nanoseconds per telemetry-manager `observe` + signal computation
    /// (§3).
    SignalsNs,
    /// Nanoseconds per policy decision (§4 tables + §6 arbitration).
    DecideNs,
}

impl TimerId {
    /// Number of timers.
    pub const COUNT: usize = 2;

    /// Every timer, in wire order.
    pub const ALL: [TimerId; TimerId::COUNT] = [TimerId::SignalsNs, TimerId::DecideNs];

    /// Dense index (the discriminant), for registry slots.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name used by the JSONL metric dump.
    pub fn name(self) -> &'static str {
        match self {
            TimerId::SignalsNs => "signals_ns",
            TimerId::DecideNs => "decide_ns",
        }
    }

    /// Inclusive upper bounds, ns (log-spaced; implicit overflow bucket).
    pub fn bounds(self) -> &'static [f64] {
        const NS: &[f64] = &[
            250.0,
            500.0,
            1_000.0,
            2_500.0,
            5_000.0,
            10_000.0,
            25_000.0,
            50_000.0,
            100_000.0,
            250_000.0,
            1_000_000.0,
            10_000_000.0,
        ];
        NS
    }
}

/// A fixed-bucket histogram: counts per inclusive upper bound plus one
/// overflow bucket, with the observation total and value sum.
///
/// Buckets are *fixed at construction* (per [`HistogramId::bounds`] /
/// [`TimerId::bounds`]) so two histograms of the same metric always merge
/// bucket-for-bucket — the property the deterministic fleet merge rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl FixedHistogram {
    /// An empty histogram over `bounds` (inclusive upper bounds, ascending).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Deterministic quantile *estimate* from the bucket counts
    /// (`q` in percent, e.g. `95.0`), `None` when empty.
    ///
    /// Uses nearest-rank bucket selection with linear interpolation
    /// inside the bucket; observations in the first bucket report its
    /// upper bound and overflow observations report the last bound, so
    /// the estimate is always one of finitely many values — bit-identical
    /// for any merge grouping. Accuracy is bounded by the bucket width;
    /// use the pooled exact percentile when per-request samples are kept.
    pub fn quantile_estimate(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= rank {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: the last bound is the best lower
                    // bound we can report.
                    return self.bounds.last().copied();
                };
                if i == 0 {
                    return Some(upper);
                }
                let lower = self.bounds[i - 1];
                let into = (rank - before) as f64 / c as f64;
                return Some(lower + (upper - lower) * into);
            }
        }
        self.bounds.last().copied()
    }

    /// Builds a histogram from already-merged parts (the fleet
    /// accumulator's exact fold).
    pub(crate) fn from_parts(
        bounds: &'static [f64],
        counts: Vec<u64>,
        total: u64,
        sum: f64,
    ) -> Self {
        debug_assert_eq!(counts.len(), bounds.len() + 1);
        Self {
            bounds,
            counts,
            total,
            sum,
        }
    }

    /// Adds `other`'s buckets into `self`.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ (merging different metrics).
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            std::ptr::eq(self.bounds, other.bounds) || self.bounds == other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// The per-run metrics registry.
///
/// One registry per tenant closed loop (no shared mutable state, no
/// locks); fleet-wide numbers come from [`MetricRegistry::merge`] applied
/// in tenant-index order, which is deterministic by construction. The §4/§6
/// [`RuleHistogram`] lives inside the registry, so rule-fire counts travel
/// with the rest of the run's telemetry.
///
/// # Example
///
/// ```
/// use dasr_core::obs::{CounterId, GaugeId, HistogramId, MetricRegistry};
///
/// let mut reg = MetricRegistry::new();
/// reg.inc(CounterId::IntervalsRun);
/// reg.add(CounterId::RequestsCompleted, 640);
/// reg.set_gauge(GaugeId::FinalRung, 3.0);
/// reg.observe(HistogramId::ResizeStep, 1.0);
///
/// assert_eq!(reg.counter(CounterId::IntervalsRun), 1);
/// assert_eq!(reg.counter(CounterId::RequestsCompleted), 640);
/// assert_eq!(reg.histogram(HistogramId::ResizeStep).total(), 1);
///
/// // Fleet aggregation is an explicit, deterministic merge.
/// let mut fleet = MetricRegistry::new();
/// fleet.merge(&reg);
/// fleet.merge(&reg);
/// assert_eq!(fleet.counter(CounterId::RequestsCompleted), 1280);
/// ```
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    counters: [u64; CounterId::COUNT],
    gauges: [f64; GaugeId::COUNT],
    hists: Vec<FixedHistogram>,
    timers: Vec<FixedHistogram>,
    rules: RuleHistogram,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            counters: [0; CounterId::COUNT],
            gauges: [0.0; GaugeId::COUNT],
            hists: HistogramId::ALL
                .iter()
                .map(|h| FixedHistogram::new(h.bounds()))
                .collect(),
            timers: TimerId::ALL
                .iter()
                .map(|t| FixedHistogram::new(t.bounds()))
                .collect(),
            rules: RuleHistogram::new(),
        }
    }

    /// Increments `id` by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.index()] += 1;
    }

    /// Increments `id` by `n`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.index()] += n;
    }

    /// Current value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Sets gauge `id` to `value` (last-value-wins).
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.index()] = value;
    }

    /// Current value of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> f64 {
        self.gauges[id.index()]
    }

    /// Records `value` into histogram `id`.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.hists[id.index()].observe(value);
    }

    /// The value histogram for `id`.
    pub fn histogram(&self, id: HistogramId) -> &FixedHistogram {
        &self.hists[id.index()]
    }

    /// Records a wall-clock duration (ns) into timer `id`.
    pub fn observe_ns(&mut self, id: TimerId, ns: u64) {
        self.timers[id.index()].observe(ns as f64);
    }

    /// The wall-clock timer histogram for `id` (non-deterministic section).
    pub fn timer(&self, id: TimerId) -> &FixedHistogram {
        &self.timers[id.index()]
    }

    /// Records one rule fire (the absorbed [`RuleHistogram`]).
    pub fn record_rule(&mut self, id: RuleId) {
        self.rules.record(id);
    }

    /// The §4/§6 rule-fire histogram carried by this registry.
    pub fn rules(&self) -> &RuleHistogram {
        &self.rules
    }

    /// Mutable access to the rule histogram, for recording a whole trace's
    /// fires via [`crate::trace::DecisionTrace::record_fires`].
    pub fn rules_mut(&mut self) -> &mut RuleHistogram {
        &mut self.rules
    }

    /// Adds every metric from `other`: counters, histogram buckets, timer
    /// buckets and rule fires add; gauges sum (see [`GaugeId`]). Called in
    /// tenant-index order by the fleet aggregation, so the result is a pure
    /// fold over per-tenant registries — deterministic for any thread
    /// count.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        for (a, b) in self.timers.iter_mut().zip(other.timers.iter()) {
            a.merge(b);
        }
        self.rules.merge(&other.rules);
    }

    /// Serializes the registry as JSON lines, one metric per line, in wire
    /// order — the same hand-rolled no-serde style as
    /// [`crate::trace::DecisionTrace::to_json_line`]. Timers are emitted
    /// with `"type":"timer"` so consumers can separate the
    /// non-deterministic section.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for id in CounterId::ALL {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"type\":\"counter\",\"value\":{}}}",
                id.name(),
                self.counter(id)
            );
        }
        for id in GaugeId::ALL {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"type\":\"gauge\",\"value\":{}}}",
                id.name(),
                self.gauge(id)
            );
        }
        for id in HistogramId::ALL {
            let _ = writeln!(
                out,
                "{}",
                histogram_json(id.name(), "histogram", self.histogram(id))
            );
        }
        for id in TimerId::ALL {
            let _ = writeln!(
                out,
                "{}",
                histogram_json(id.name(), "timer", self.timer(id))
            );
        }
        for (rule, n) in self.rules.ranked() {
            let _ = writeln!(
                out,
                "{{\"metric\":\"rule_fires.{}\",\"type\":\"counter\",\"value\":{n}}}",
                rule.name()
            );
        }
        out
    }
}

fn histogram_json(name: &str, ty: &str, h: &FixedHistogram) -> String {
    let mut out = format!("{{\"metric\":\"{name}\",\"type\":\"{ty}\",\"bounds\":[");
    for (i, b) in h.bounds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("],\"counts\":[");
    for (i, c) in h.counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    let _ = write!(out, "],\"total\":{},\"sum\":{}}}", h.total(), h.sum());
    out
}

impl Default for MetricRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Equality over the **deterministic** section only: counters, gauges,
/// value histograms and rule fires. Wall-clock timers measure the harness,
/// not the simulated system, and are deliberately excluded so the fleet
/// determinism property (`run(1 thread) == run(8 threads)`) is expressible
/// as plain `==`.
impl PartialEq for MetricRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.hists == other.hists
            && self.rules == other.rules
    }
}

/// One fixed-bucket histogram being folded exactly: counts add as
/// integers, the value sum accumulates error-free.
#[derive(Debug, Clone)]
struct HistAcc {
    bounds: &'static [f64],
    counts: Vec<u64>,
    total: u64,
    sum: ExactSum,
}

impl HistAcc {
    fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: ExactSum::new(),
        }
    }

    /// Adds one already-aggregated histogram (a tenant's) into the fold.
    // dasr-lint: no-alloc
    fn fold(&mut self, h: &FixedHistogram) {
        debug_assert_eq!(self.bounds, h.bounds());
        for (a, b) in self.counts.iter_mut().zip(h.counts().iter()) {
            *a += b;
        }
        self.total += h.total();
        self.sum.add(h.sum());
    }

    /// Merges another accumulator (a shard's) into the fold.
    // dasr-lint: no-alloc
    fn merge(&mut self, other: &HistAcc) {
        debug_assert_eq!(self.bounds, other.bounds);
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum.merge(&other.sum);
    }

    fn finish(self) -> FixedHistogram {
        let sum = self.sum.value();
        FixedHistogram::from_parts(self.bounds, self.counts, self.total, sum)
    }
}

/// Exact, grouping-independent fleet aggregation of [`MetricRegistry`]s.
///
/// [`MetricRegistry::merge`] adds `f64` gauge values and histogram sums
/// with plain floating-point addition, which is fine for a fixed
/// tenant-order fold but *not* associative — two different shard groupings
/// of the same tenants could differ in the last ulp. The accumulator
/// instead carries every merged float as a [`dasr_stats::ExactSum`], so
/// folding tenants into shards and merging shards in any grouping yields a
/// bit-identical [`MetricsAccumulator::finish`] result. This is what makes
/// the sharded fleet scheduler's per-shard registry merge a true monoid
/// (see `crate::runner::fleet`).
#[derive(Debug, Clone)]
pub struct MetricsAccumulator {
    counters: [u64; CounterId::COUNT],
    gauges: [ExactSum; GaugeId::COUNT],
    hists: Vec<HistAcc>,
    timers: Vec<HistAcc>,
    rules: RuleHistogram,
}

impl MetricsAccumulator {
    /// An empty accumulator (the monoid identity).
    pub fn new() -> Self {
        Self {
            counters: [0; CounterId::COUNT],
            gauges: [ExactSum::new(); GaugeId::COUNT],
            hists: HistogramId::ALL
                .iter()
                .map(|h| HistAcc::new(h.bounds()))
                .collect(),
            timers: TimerId::ALL
                .iter()
                .map(|t| HistAcc::new(t.bounds()))
                .collect(),
            rules: RuleHistogram::new(),
        }
    }

    /// Folds one tenant's registry into the accumulator. Counters,
    /// histogram buckets and rule fires add as integers; gauges and
    /// histogram sums accumulate error-free.
    // dasr-lint: no-alloc
    pub fn fold(&mut self, reg: &MetricRegistry) {
        for (a, b) in self.counters.iter_mut().zip(reg.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(reg.gauges.iter()) {
            a.add(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(reg.hists.iter()) {
            a.fold(b);
        }
        for (a, b) in self.timers.iter_mut().zip(reg.timers.iter()) {
            a.fold(b);
        }
        self.rules.merge(&reg.rules);
    }

    /// Merges another accumulator in (the monoid operation). Because every
    /// float is an exact sum, `merge` is associative and commutative at
    /// the bit level.
    // dasr-lint: no-alloc
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            a.merge(b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        for (a, b) in self.timers.iter_mut().zip(other.timers.iter()) {
            a.merge(b);
        }
        self.rules.merge(&other.rules);
    }

    /// Rounds the exact fold into a plain [`MetricRegistry`]. The result
    /// depends only on the multiset of folded registries, never on the
    /// shard grouping or merge order.
    pub fn finish(self) -> MetricRegistry {
        let mut gauges = [0.0; GaugeId::COUNT];
        for (slot, g) in gauges.iter_mut().zip(self.gauges.iter()) {
            *slot = g.value();
        }
        MetricRegistry {
            counters: self.counters,
            gauges,
            hists: self.hists.into_iter().map(HistAcc::finish).collect(),
            timers: self.timers.into_iter().map(HistAcc::finish).collect(),
            rules: self.rules,
        }
    }
}

impl Default for MetricsAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for MetricRegistry {
    /// Human-readable rendering, always derived from the structured
    /// registry (never stored): non-zero counters, gauges, and histogram
    /// summaries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in CounterId::ALL {
            let n = self.counter(id);
            if n > 0 {
                writeln!(f, "  {:<26} {n:>10}", id.name())?;
            }
        }
        for id in GaugeId::ALL {
            writeln!(f, "  {:<26} {:>10.2}", id.name(), self.gauge(id))?;
        }
        for id in HistogramId::ALL {
            let h = self.histogram(id);
            if h.total() > 0 {
                writeln!(
                    f,
                    "  {:<26} {:>10} obs, mean {:.2}",
                    id.name(),
                    h.total(),
                    h.mean().unwrap_or(f64::NAN)
                )?;
            }
        }
        for id in TimerId::ALL {
            let t = self.timer(id);
            if t.total() > 0 {
                writeln!(
                    f,
                    "  {:<26} {:>10} obs, mean {:.0} ns (wall, non-deterministic)",
                    id.name(),
                    t.total(),
                    t.mean().unwrap_or(f64::NAN)
                )?;
            }
        }
        if self.rules.total() > 0 {
            writeln!(f, "  rule fires:")?;
            write!(f, "{}", self.rules)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_named_uniquely() {
        for (i, id) in CounterId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in GaugeId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in HistogramId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in TimerId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.extend(GaugeId::ALL.iter().map(|g| g.name()));
        names.extend(HistogramId::ALL.iter().map(|h| h.name()));
        names.extend(TimerId::ALL.iter().map(|t| t.name()));
        let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len(), "wire names collide");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = FixedHistogram::new(HistogramId::ResizeStep.bounds());
        h.observe(-5.0); // below the first bound → first bucket
        h.observe(-1.0);
        h.observe(0.0);
        h.observe(1.0);
        h.observe(9.0); // overflow
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 1, "-5 clamps into the lowest bucket");
        assert_eq!(*h.counts().last().unwrap(), 1, "9 overflows");
        assert_eq!(h.sum(), 4.0);
        assert_eq!(h.mean(), Some(0.8));
    }

    #[test]
    fn merge_is_additive_everywhere() {
        let mut a = MetricRegistry::new();
        a.inc(CounterId::ResizesIssued);
        a.set_gauge(GaugeId::FinalRung, 2.0);
        a.observe(HistogramId::IntervalLatencyMs, 40.0);
        a.observe_ns(TimerId::SignalsNs, 900);
        a.record_rule(RuleId::HighA);
        let mut b = a.clone();
        b.add(CounterId::ResizesIssued, 2);
        a.merge(&b);
        assert_eq!(a.counter(CounterId::ResizesIssued), 4);
        assert_eq!(a.gauge(GaugeId::FinalRung), 4.0);
        assert_eq!(a.histogram(HistogramId::IntervalLatencyMs).total(), 2);
        assert_eq!(a.timer(TimerId::SignalsNs).total(), 2);
        assert_eq!(a.rules().count(RuleId::HighA), 2);
    }

    #[test]
    fn equality_ignores_wall_timers() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        a.inc(CounterId::IntervalsRun);
        b.inc(CounterId::IntervalsRun);
        a.observe_ns(TimerId::SignalsNs, 1_000);
        b.observe_ns(TimerId::SignalsNs, 999_999);
        assert_eq!(a, b, "timers are the non-deterministic section");
        b.inc(CounterId::SloViolations);
        assert_ne!(a, b);
    }

    #[test]
    fn jsonl_lists_every_metric_once() {
        let mut reg = MetricRegistry::new();
        reg.inc(CounterId::IntervalsRun);
        reg.record_rule(RuleId::HoldSteady);
        let out = reg.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines.len(),
            CounterId::COUNT + GaugeId::COUNT + HistogramId::COUNT + TimerId::COUNT + 1
        );
        assert!(lines[0].contains("\"metric\":\"intervals_run\""));
        assert!(out.contains("\"type\":\"timer\""));
        assert!(out.contains("rule_fires.hold_steady"));
        // Every line parses as one JSON object via the trace parser.
        for line in lines {
            crate::trace::json::parse(line).expect("valid JSON line");
        }
    }

    #[test]
    fn display_renders_from_structure() {
        let mut reg = MetricRegistry::new();
        reg.add(CounterId::RequestsCompleted, 7);
        reg.observe(HistogramId::BudgetHeadroomPct, 55.0);
        let text = reg.to_string();
        assert!(text.contains("requests_completed"));
        assert!(text.contains("budget_headroom_pct"));
    }

    #[test]
    fn quantile_estimate_walks_buckets() {
        let mut h = FixedHistogram::new(HistogramId::BudgetHeadroomPct.bounds());
        assert_eq!(h.quantile_estimate(95.0), None);
        for v in [5.0, 15.0, 15.0, 25.0] {
            h.observe(v);
        }
        // First bucket reports its upper bound.
        assert_eq!(h.quantile_estimate(1.0), Some(10.0));
        // Median falls in the (10, 20] bucket, interpolated.
        let med = h.quantile_estimate(50.0).unwrap();
        assert!((10.0..=20.0).contains(&med), "median estimate {med}");
        // Overflow observations report the last bound.
        let mut o = FixedHistogram::new(HistogramId::BudgetHeadroomPct.bounds());
        o.observe(1_000.0);
        assert_eq!(o.quantile_estimate(99.0), Some(100.0));
    }

    #[test]
    fn accumulator_matches_sequential_merge_and_is_grouping_independent() {
        // Per-tenant registries with awkward float gauges/sums.
        let regs: Vec<MetricRegistry> = (0..20)
            .map(|i| {
                let mut r = MetricRegistry::new();
                r.add(CounterId::RequestsCompleted, i as u64 + 1);
                r.set_gauge(GaugeId::BudgetRemaining, 1e15 / (i as f64 + 1.0));
                r.observe(HistogramId::IntervalLatencyMs, 0.1 * (i as f64 + 1.0));
                r.record_rule(RuleId::HoldSteady);
                r
            })
            .collect();
        let finish_grouped = |chunk: usize| {
            let mut total = MetricsAccumulator::new();
            for group in regs.chunks(chunk) {
                let mut shard = MetricsAccumulator::new();
                for r in group {
                    shard.fold(r);
                }
                total.merge(&shard);
            }
            total.finish()
        };
        let reference = finish_grouped(1);
        for chunk in [3usize, 7, 20] {
            let merged = finish_grouped(chunk);
            assert_eq!(merged, reference, "grouping {chunk} diverged");
            // Bitwise equality of the float sections, beyond PartialEq.
            assert_eq!(
                merged.gauge(GaugeId::BudgetRemaining).to_bits(),
                reference.gauge(GaugeId::BudgetRemaining).to_bits()
            );
            assert_eq!(
                merged
                    .histogram(HistogramId::IntervalLatencyMs)
                    .sum()
                    .to_bits(),
                reference
                    .histogram(HistogramId::IntervalLatencyMs)
                    .sum()
                    .to_bits()
            );
        }
        assert_eq!(reference.counter(CounterId::RequestsCompleted), 210);
        assert_eq!(reference.rules().count(RuleId::HoldSteady), 20);
    }
}
