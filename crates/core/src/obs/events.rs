//! Structured run events: the notable moments of a §6 closed-loop run as
//! data, one JSON line each.
//!
//! Where the [`crate::obs::MetricRegistry`] answers "how often", the event
//! stream answers "when and in what order". Every event is *derived* from
//! structured state the loop already produced — the
//! [`crate::trace::DecisionTrace`], the interval's counters — never from
//! formatted text, honoring the repo rule that human-readable output is
//! rendered from structure, not stored. Serialization reuses the same
//! hand-rolled JSON writer/parser as [`crate::trace`] (the workspace is
//! offline and serde-free).

use crate::trace::json::{self, Json};
use std::fmt;

/// Why a wanted resize was not issued (§5 budget gate, §6 cooldown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// Both scale directions sat inside the post-resize cooldown (§6).
    Cooldown,
    /// The §5 budget truncated or blocked the recommended move.
    Budget,
}

impl DenyReason {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            DenyReason::Cooldown => "cooldown",
            DenyReason::Budget => "budget",
        }
    }

    /// Parses a wire name back to the reason.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "cooldown" => Some(DenyReason::Cooldown),
            "budget" => Some(DenyReason::Budget),
            _ => None,
        }
    }
}

/// Which §4.3 balloon-probe transition an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalloonPhase {
    /// A probe started (deflating the pool toward the target).
    Started,
    /// The active probe aborted on rising disk I/O.
    Aborted,
    /// The probe committed, authorizing a memory shrink.
    Confirmed,
}

impl BalloonPhase {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            BalloonPhase::Started => "started",
            BalloonPhase::Aborted => "aborted",
            BalloonPhase::Confirmed => "confirmed",
        }
    }

    /// Parses a wire name back to the phase.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "started" => Some(BalloonPhase::Started),
            "aborted" => Some(BalloonPhase::Aborted),
            "confirmed" => Some(BalloonPhase::Confirmed),
            _ => None,
        }
    }
}

/// What happened (the payload of a [`RunEvent`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A billing interval opened (§2.2). Emitted only at
    /// [`crate::obs::EventVerbosity::Verbose`].
    IntervalStart,
    /// A billing interval closed with its headline telemetry. Emitted only
    /// at [`crate::obs::EventVerbosity::Verbose`].
    IntervalEnd {
        /// Aggregated latency over the interval, ms (`None` when idle).
        latency_ms: Option<f64>,
        /// Requests completed in the interval.
        completed: u64,
        /// Requests rejected in the interval.
        rejected: u64,
    },
    /// A resize was issued (§2.2 change event).
    ResizeIssued {
        /// Container rung before the move.
        from_rung: u8,
        /// Container rung after the move.
        to_rung: u8,
    },
    /// A wanted resize was denied (§5 / §6).
    ResizeDenied {
        /// Why the move did not happen.
        reason: DenyReason,
    },
    /// The §5 token bucket engaged: truncation, block or forced downgrade.
    BudgetThrottle {
        /// Budget remaining after the interval's charge, % of the full
        /// period budget.
        headroom_pct: f64,
    },
    /// A §4.3 balloon-probe transition.
    BalloonTrigger {
        /// Which transition.
        phase: BalloonPhase,
        /// Probe / confirmed pool target, MB (absent for aborts).
        target_mb: Option<f64>,
    },
    /// The interval's latency exceeded the tenant's goal (§2.3).
    SloViolation {
        /// Observed latency, ms.
        observed_ms: f64,
        /// The goal it exceeded, ms.
        goal_ms: f64,
    },
}

impl EventKind {
    /// Stable wire name of the event type.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::IntervalStart => "interval_start",
            EventKind::IntervalEnd { .. } => "interval_end",
            EventKind::ResizeIssued { .. } => "resize_issued",
            EventKind::ResizeDenied { .. } => "resize_denied",
            EventKind::BudgetThrottle { .. } => "budget_throttle",
            EventKind::BalloonTrigger { .. } => "balloon_trigger",
            EventKind::SloViolation { .. } => "slo_violation",
        }
    }
}

/// One structured run event: who, when, what.
///
/// # Example
///
/// ```
/// use dasr_core::obs::{EventKind, RunEvent};
///
/// let ev = RunEvent {
///     tenant: Some(3),
///     interval: 17,
///     kind: EventKind::ResizeIssued { from_rung: 1, to_rung: 2 },
/// };
/// let line = ev.to_json_line();
/// assert_eq!(RunEvent::from_json_line(&line).unwrap(), ev);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEvent {
    /// Tenant index within a fleet run (`None` for single-tenant runs
    /// until the fleet aggregation stamps it).
    pub tenant: Option<u64>,
    /// Billing interval the event belongs to.
    pub interval: u64,
    /// What happened.
    pub kind: EventKind,
}

impl RunEvent {
    /// Serializes the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("event".to_string(), Json::Str(self.kind.name().into())),
            (
                "tenant".into(),
                match self.tenant {
                    Some(t) => Json::Num(t as f64),
                    None => Json::Null,
                },
            ),
            ("interval".into(), Json::Num(self.interval as f64)),
        ];
        match &self.kind {
            EventKind::IntervalStart => {}
            EventKind::IntervalEnd {
                latency_ms,
                completed,
                rejected,
            } => {
                fields.push(("latency_ms".into(), Json::from_opt(*latency_ms)));
                fields.push(("completed".into(), Json::Num(*completed as f64)));
                fields.push(("rejected".into(), Json::Num(*rejected as f64)));
            }
            EventKind::ResizeIssued { from_rung, to_rung } => {
                fields.push(("from_rung".into(), Json::Num(*from_rung as f64)));
                fields.push(("to_rung".into(), Json::Num(*to_rung as f64)));
            }
            EventKind::ResizeDenied { reason } => {
                fields.push(("reason".into(), Json::Str(reason.name().into())));
            }
            EventKind::BudgetThrottle { headroom_pct } => {
                fields.push(("headroom_pct".into(), Json::Num(*headroom_pct)));
            }
            EventKind::BalloonTrigger { phase, target_mb } => {
                fields.push(("phase".into(), Json::Str(phase.name().into())));
                fields.push(("target_mb".into(), Json::from_opt(*target_mb)));
            }
            EventKind::SloViolation {
                observed_ms,
                goal_ms,
            } => {
                fields.push(("observed_ms".into(), Json::Num(*observed_ms)));
                fields.push(("goal_ms".into(), Json::Num(*goal_ms)));
            }
        }
        Json::Obj(fields).write()
    }

    /// Parses an event back from [`RunEvent::to_json_line`] output.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line)?;
        let kind = match v.get("event")?.str()? {
            "interval_start" => EventKind::IntervalStart,
            "interval_end" => EventKind::IntervalEnd {
                latency_ms: v.get("latency_ms")?.opt_num()?,
                completed: v.get("completed")?.num()? as u64,
                rejected: v.get("rejected")?.num()? as u64,
            },
            "resize_issued" => EventKind::ResizeIssued {
                from_rung: v.get("from_rung")?.num()? as u8,
                to_rung: v.get("to_rung")?.num()? as u8,
            },
            "resize_denied" => EventKind::ResizeDenied {
                reason: DenyReason::from_name(v.get("reason")?.str()?)
                    .ok_or_else(|| "unknown deny reason".to_string())?,
            },
            "budget_throttle" => EventKind::BudgetThrottle {
                headroom_pct: v.get("headroom_pct")?.num()?,
            },
            "balloon_trigger" => EventKind::BalloonTrigger {
                phase: BalloonPhase::from_name(v.get("phase")?.str()?)
                    .ok_or_else(|| "unknown balloon phase".to_string())?,
                target_mb: v.get("target_mb")?.opt_num()?,
            },
            "slo_violation" => EventKind::SloViolation {
                observed_ms: v.get("observed_ms")?.num()?,
                goal_ms: v.get("goal_ms")?.num()?,
            },
            other => return Err(format!("unknown event {other:?}")),
        };
        Ok(Self {
            tenant: match v.get("tenant")? {
                Json::Null => None,
                other => Some(other.num()? as u64),
            },
            interval: v.get("interval")?.num()? as u64,
            kind,
        })
    }
}

impl fmt::Display for RunEvent {
    /// One-line human rendering, derived from the structured event.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tenant {
            Some(t) => write!(f, "[t{t:03} i{:04}] ", self.interval)?,
            None => write!(f, "[i{:04}] ", self.interval)?,
        }
        match &self.kind {
            EventKind::IntervalStart => write!(f, "interval start"),
            EventKind::IntervalEnd {
                latency_ms,
                completed,
                rejected,
            } => match latency_ms {
                Some(ms) => write!(
                    f,
                    "interval end: {completed} ok / {rejected} rejected, {ms:.1} ms"
                ),
                None => write!(f, "interval end: idle"),
            },
            EventKind::ResizeIssued { from_rung, to_rung } => {
                write!(f, "resize rung {from_rung} -> {to_rung}")
            }
            EventKind::ResizeDenied { reason } => write!(f, "resize denied ({})", reason.name()),
            EventKind::BudgetThrottle { headroom_pct } => {
                write!(f, "budget throttle ({headroom_pct:.0}% headroom)")
            }
            EventKind::BalloonTrigger { phase, target_mb } => match target_mb {
                Some(mb) => write!(f, "balloon {} -> {mb:.0} MB", phase.name()),
                None => write!(f, "balloon {}", phase.name()),
            },
            EventKind::SloViolation {
                observed_ms,
                goal_ms,
            } => write!(
                f,
                "SLO violation: {observed_ms:.1} ms > {goal_ms:.1} ms goal"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::IntervalStart,
            EventKind::IntervalEnd {
                latency_ms: Some(41.25),
                completed: 640,
                rejected: 2,
            },
            EventKind::IntervalEnd {
                latency_ms: None,
                completed: 0,
                rejected: 0,
            },
            EventKind::ResizeIssued {
                from_rung: 2,
                to_rung: 4,
            },
            EventKind::ResizeDenied {
                reason: DenyReason::Cooldown,
            },
            EventKind::ResizeDenied {
                reason: DenyReason::Budget,
            },
            EventKind::BudgetThrottle { headroom_pct: 12.5 },
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Started,
                target_mb: Some(1740.5),
            },
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Aborted,
                target_mb: None,
            },
            EventKind::SloViolation {
                observed_ms: 150.5,
                goal_ms: 100.0,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = RunEvent {
                tenant: if i % 2 == 0 { Some(i as u64) } else { None },
                interval: 100 + i as u64,
                kind,
            };
            let line = ev.to_json_line();
            assert!(!line.contains('\n'));
            let back = RunEvent::from_json_line(&line).expect(&line);
            assert_eq!(back, ev);
            assert_eq!(back.to_json_line(), line, "stable serialization");
        }
    }

    #[test]
    fn display_renders_every_kind() {
        for kind in all_kinds() {
            let ev = RunEvent {
                tenant: Some(1),
                interval: 5,
                kind,
            };
            assert!(!ev.to_string().is_empty());
            assert!(ev.to_string().starts_with("[t001 i0005]"));
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(RunEvent::from_json_line("").is_err());
        assert!(RunEvent::from_json_line("{}").is_err());
        assert!(
            RunEvent::from_json_line("{\"event\":\"nope\",\"tenant\":null,\"interval\":1}")
                .is_err()
        );
    }
}
