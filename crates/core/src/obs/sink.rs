//! Streaming event delivery for fleet-scale runs.
//!
//! Buffering every tenant's [`RunEvent`] stream in memory makes fleet
//! observability O(total events) in RAM — fine for 64 tenants, fatal for
//! 100k. An [`EventSink`] inverts the flow: the sharded fleet scheduler
//! delivers each shard's events to the sink *in shard order* as shards
//! complete, so a summary-mode run holds only the not-yet-flushed shards'
//! events in memory (O(in-flight shards), not O(tenants)).
//!
//! # Ordering contract
//!
//! The scheduler calls [`EventSink::emit`] for every event of shard 0,
//! then shard 1, and so on — regardless of which worker finished which
//! shard first — and events within a shard arrive in tenant order, each
//! already stamped with its tenant index. The delivered stream is
//! therefore byte-identical to the buffered
//! [`crate::runner::fleet::FleetReport::events_jsonl`] dump for any
//! thread or shard count.

use super::events::RunEvent;
use std::io::Write;

/// Receives a fleet run's event stream, shard by shard, in tenant order.
///
/// Implementations must be `Send`: the scheduler invokes the sink from
/// whichever worker thread closes the next gap in shard order (under a
/// lock, so calls never overlap).
pub trait EventSink: Send {
    /// Delivers one event. Events arrive in fleet order (tenant-major).
    fn emit(&mut self, event: &RunEvent);

    /// Called once after the last event of the run has been delivered.
    fn finish(&mut self) {}
}

/// Discards every event (metrics-only summary runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &RunEvent) {}
}

/// Counts events without keeping them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Events seen so far.
    pub count: u64,
}

impl EventSink for CountingSink {
    fn emit(&mut self, _event: &RunEvent) {
        self.count += 1;
    }
}

/// Collects events into a `Vec` — the buffered reference for equivalence
/// tests and small fleets.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Events in delivery order.
    pub events: Vec<RunEvent>,
}

impl VecSink {
    /// The collected stream as JSON lines, matching
    /// [`crate::obs::RunObservability::events_jsonl`].
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, event: &RunEvent) {
        self.events.push(*event);
    }
}

/// Streams events as JSON lines into any [`Write`] (a file, a socket, a
/// pipe) — constant memory no matter the fleet size.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`. Callers that care about throughput should hand in
    /// a `BufWriter`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error encountered, if any (later events are dropped
    /// once a write fails).
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &RunEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json_line();
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::EventKind;

    fn event(i: u64) -> RunEvent {
        RunEvent {
            tenant: Some(i),
            interval: i,
            kind: EventKind::ResizeIssued {
                from_rung: 1,
                to_rung: 2,
            },
        }
    }

    #[test]
    fn counting_and_null_sinks() {
        let mut n = NullSink;
        let mut c = CountingSink::default();
        for i in 0..5 {
            n.emit(&event(i));
            c.emit(&event(i));
        }
        assert_eq!(c.count, 5);
    }

    #[test]
    fn vec_sink_matches_jsonl_format() {
        let mut v = VecSink::default();
        v.emit(&event(0));
        v.emit(&event(1));
        v.finish();
        let jsonl = v.events_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert_eq!(
            RunEvent::from_json_line(jsonl.lines().next().unwrap()).unwrap(),
            event(0)
        );
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&event(0));
        sink.emit(&event(1));
        sink.finish();
        assert_eq!(sink.written(), 2);
        assert!(sink.error().is_none());
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_records_first_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.emit(&event(0));
        sink.emit(&event(1));
        assert_eq!(sink.written(), 0);
        assert!(sink.error().is_some());
    }
}
