//! **Util** — the utilization-only online baseline (§7.2.2).
//!
//! Emulates the auto-scaling offerings of today's clouds, translated to
//! container sizing: track latency, and
//!
//! - latency BAD and some resource's utilization at least moderate →
//!   scale up one rung;
//! - latency GOOD and every resource's utilization LOW → scale down one
//!   rung.
//!
//! Without wait statistics it cannot tell unmet resource demand from
//! non-resource bottlenecks, so on a lock-bound workload it keeps scaling
//! up as long as latency stays bad — the Figure 13 overshoot.

use crate::explain::Explanation;
use crate::policy::{BalloonCommand, PolicyContext, PolicyDecision, ScalingPolicy};
use crate::rules::RuleId;
use crate::trace::DecisionTrace;
use dasr_containers::{Container, ResourceKind, RESOURCE_KINDS};
use dasr_telemetry::categorize::UtilLevel;

/// Intervals between scale-downs: cloud autoscalers scale in deliberately
/// slowly (long scale-in cooldowns) to avoid flapping.
const DOWN_COOLDOWN: u64 = 5;

/// The utilization-only baseline policy.
#[derive(Debug, Default)]
pub struct UtilPolicy {
    last_resize: Option<u64>,
}

impl UtilPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a move into a decision whose trace names `branch` and carries
    /// `explanation`. Util has no rule tables; its trace records the branch
    /// taken and the signals it saw.
    fn moved(
        ctx: &PolicyContext<'_>,
        branch: RuleId,
        target: &Container,
        explanation: Explanation,
    ) -> PolicyDecision {
        let mut trace = DecisionTrace::from_signals(ctx.signals, ctx.current.id);
        trace.branch = branch;
        trace.target = target.id;
        trace.grant(ctx.current.rung, target.rung);
        trace.explanations = vec![explanation];
        PolicyDecision {
            target: target.id,
            trace,
            balloon: BalloonCommand::None,
        }
    }
}

impl ScalingPolicy for UtilPolicy {
    fn name(&self) -> &'static str {
        "util"
    }

    // dasr-lint: entry(G1)
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> PolicyDecision {
        let sig = ctx.signals;
        let max_level = RESOURCE_KINDS
            .iter()
            .map(|&k| sig.resource(k).util_level)
            .max()
            .expect("resources non-empty");
        let all_low = RESOURCE_KINDS
            .iter()
            // Memory utilization is structurally high (caches); a
            // utilization-only scaler has to ignore it for scale-down or it
            // would never shrink.
            .filter(|&&k| k != ResourceKind::Memory)
            .all(|&k| sig.resource(k).util_level == UtilLevel::Low);

        // Step scaling, as in today's cloud autoscalers: react every
        // interval while latency is degraded, and jump harder the further
        // the goal is missed — "when Util decides to scale up, it ends up
        // scaling much higher to compensate" (§7.3, Figure 13).
        if sig.latency.needs_attention() && max_level >= UtilLevel::Medium {
            let badly_missed = match (sig.latency.observed_ms, sig.latency.goal_ms) {
                (Some(obs), Some(goal)) => obs > 2.0 * goal,
                _ => false,
            };
            let step = if badly_missed { 2 } else { 1 };
            let desired = ctx.catalog.desired_after_steps(ctx.current, [step; 4]);
            if let Some(t) = ctx
                .catalog
                .cheapest_covering(&desired, ctx.available_budget)
            {
                if t.id != ctx.current.id {
                    self.last_resize = Some(sig.interval);
                    let busiest = RESOURCE_KINDS
                        .iter()
                        .copied()
                        .max_by(|a, b| {
                            sig.resource(*a)
                                .util_pct
                                .total_cmp(&sig.resource(*b).util_pct)
                        })
                        .expect("non-empty");
                    return Self::moved(
                        ctx,
                        RuleId::ScaleUpDemand,
                        t,
                        Explanation::UtilScaleUp { resource: busiest },
                    );
                }
            }
        } else if !sig.latency.needs_attention()
            && all_low
            // Slow scale-in, like commercial autoscalers.
            && self.last_resize.is_none_or(|at| sig.interval >= at + DOWN_COOLDOWN)
        {
            let desired = ctx.catalog.desired_after_steps(ctx.current, [-1; 4]);
            if let Some(t) = ctx
                .catalog
                .cheapest_covering(&desired, ctx.available_budget)
            {
                if t.cost < ctx.current.cost {
                    self.last_resize = Some(sig.interval);
                    return Self::moved(
                        ctx,
                        RuleId::ScaleDownDemand,
                        t,
                        Explanation::ScaleDownLowDemand {
                            resources: RESOURCE_KINDS.to_vec(),
                        },
                    );
                }
            }
        }
        PolicyDecision::pin(ctx, ctx.current.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::tests_support::quiet_signal_set;
    use crate::policy::BalloonStatus;
    use dasr_containers::{Catalog, Container, ContainerId};
    use dasr_telemetry::categorize::LatencyVerdict;
    use dasr_telemetry::SignalSet;

    fn ctx<'a>(
        signals: &'a SignalSet,
        current: &'a Container,
        catalog: &'a Catalog,
    ) -> PolicyContext<'a> {
        PolicyContext {
            signals,
            current,
            catalog,
            available_budget: None,
            balloon: BalloonStatus::Inactive,
        }
    }

    fn bad_latency(mut s: SignalSet) -> SignalSet {
        s.latency.observed_ms = Some(500.0);
        s.latency.goal_ms = Some(100.0);
        s.latency.verdict = LatencyVerdict::Bad;
        s
    }

    #[test]
    fn scales_up_on_bad_latency_with_any_moderate_utilization() {
        let cat = Catalog::azure_like();
        let current = cat.get(ContainerId(2)).unwrap().clone();
        let s = bad_latency(quiet_signal_set(3)); // quiet = MEDIUM cpu util
        let mut p = UtilPolicy::new();
        let d = p.decide(&ctx(&s, &current, &cat));
        assert!(cat.get(d.target).unwrap().cost > current.cost);
    }

    #[test]
    fn keeps_climbing_on_lock_bound_workload() {
        // The Figure 13 overshoot: lock-bound latency stays bad; Util keeps
        // scaling up interval after interval.
        let cat = Catalog::azure_like();
        let mut current = cat.get(ContainerId(1)).unwrap().clone();
        let mut p = UtilPolicy::new();
        for i in 0..12u64 {
            let mut s = bad_latency(quiet_signal_set(i * 2)); // skip cooldowns
            s.lock_wait_pct = 95.0; // Util cannot see this
            let d = p.decide(&ctx(&s, &current, &cat));
            current = cat.get(d.target).unwrap().clone();
        }
        assert_eq!(current.id, cat.largest().id, "Util climbs to the top");
    }

    #[test]
    fn scales_down_only_when_all_utilizations_low() {
        let cat = Catalog::azure_like();
        let current = cat.get(ContainerId(4)).unwrap().clone();
        let mut p = UtilPolicy::new();
        // Quiet signals: cpu MEDIUM -> no scale-down.
        let s = quiet_signal_set(3);
        let d = p.decide(&ctx(&s, &current, &cat));
        assert_eq!(d.target, current.id);
        // All low (except memory, which Util ignores): scale down.
        let mut s = quiet_signal_set(4);
        for k in RESOURCE_KINDS {
            if k != ResourceKind::Memory {
                s.resources[k.index()].util_level = UtilLevel::Low;
                s.resources[k.index()].util_pct = 10.0;
            } else {
                s.resources[k.index()].util_level = UtilLevel::High;
                s.resources[k.index()].util_pct = 95.0;
            }
        }
        let d = p.decide(&ctx(&s, &current, &cat));
        assert!(cat.get(d.target).unwrap().cost < current.cost, "{d:?}");
    }

    #[test]
    fn badly_missed_goal_jumps_two_rungs() {
        let cat = Catalog::azure_like();
        let current = cat.get(ContainerId(2)).unwrap().clone();
        let mut p = UtilPolicy::new();
        let mut s = bad_latency(quiet_signal_set(5));
        s.latency.observed_ms = Some(1_000.0); // 10x the 100 ms goal
        let d = p.decide(&ctx(&s, &current, &cat));
        assert_eq!(cat.get(d.target).unwrap().rung, 4, "two-rung jump");
    }

    #[test]
    fn down_hysteresis_skips_one_interval() {
        let cat = Catalog::azure_like();
        let current = cat.get(ContainerId(4)).unwrap().clone();
        let mut p = UtilPolicy::new();
        let mut low = quiet_signal_set(5);
        for k in RESOURCE_KINDS {
            if k != ResourceKind::Memory {
                low.resources[k.index()].util_level = UtilLevel::Low;
                low.resources[k.index()].util_pct = 10.0;
            }
        }
        let d1 = p.decide(&ctx(&low, &current, &cat));
        assert!(cat.get(d1.target).unwrap().cost < current.cost);
        // Within the scale-in cooldown the down hysteresis holds.
        let after = cat.get(d1.target).unwrap().clone();
        let mut low2 = low.clone();
        low2.interval = 5 + DOWN_COOLDOWN - 1;
        let d2 = p.decide(&ctx(&low2, &after, &cat));
        assert_eq!(d2.target, after.id, "down hysteresis");
        // After the cooldown it steps down again.
        let mut low3 = low.clone();
        low3.interval = 5 + DOWN_COOLDOWN;
        let d3 = p.decide(&ctx(&low3, &after, &cat));
        assert!(cat.get(d3.target).unwrap().cost < after.cost);
    }
}
