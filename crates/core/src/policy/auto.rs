//! **Auto** — the paper's auto-scaling logic (§6).
//!
//! At the end of every billing interval:
//!
//! 1. estimate per-resource demand with the §4 rule hierarchy;
//! 2. if latency is BAD or degrading → scale up the demanded dimensions,
//!    within the available budget — but *only* when there is resource
//!    demand: a lock-dominated workload gets an explanation instead of
//!    resources (Figure 13);
//! 3. if latency is comfortably within the goal (or the tenant has no goal
//!    and demand is low) → scale down, gating memory shrinks behind the
//!    §4.3 ballooning probe;
//! 4. every action carries an [`Explanation`] inside a full
//!    [`DecisionTrace`].
//!
//! The whole loop is one table evaluation (the §4 demand tables, via the
//! estimator) plus one arbitration pass: a [`FactSet`] is computed from
//! the signals and policy state, [`ARBITRATION`] picks the branch
//! (cooldown / scale-up / lock-dominance / latency-explain / scale-down /
//! hold), and the branch body below executes it. Gates (emergency bypass,
//! budget, latency headroom, ballooning) annotate the trace as named
//! [`RuleId`]s.

use crate::estimator::memory::BalloonAction;
use crate::estimator::{BalloonConfig, BalloonController, DemandEstimator, EstimatorConfig};
use crate::explain::Explanation;
use crate::knobs::TenantKnobs;
use crate::policy::{BalloonCommand, PolicyContext, PolicyDecision, ScalingPolicy};
use crate::rules::{EvalCtx, Fact, FactSet, RuleId, ARBITRATION};
use crate::trace::{BalloonGate, DecisionTrace};
use dasr_containers::{Catalog, Container, ResourceKind, RESOURCE_KINDS};

/// Auto-policy tuning.
#[derive(Debug, Clone, Copy)]
pub struct AutoConfig {
    /// Tenant knobs (§2.3).
    pub knobs: TenantKnobs,
    /// Demand-estimator tuning (§4).
    pub estimator: EstimatorConfig,
    /// Balloon-controller tuning (§4.3).
    pub balloon: BalloonConfig,
    /// Lock share of waits above which a bad latency is attributed to a
    /// non-resource bottleneck (Figure 13).
    pub lock_dominance_pct: f64,
    /// Latency beyond `emergency_factor × goal` bypasses the post-resize
    /// cooldown.
    pub emergency_factor: f64,
    /// Intervals a balloon commit remains valid for a memory shrink.
    pub balloon_confirm_ttl: u64,
    /// Disable the §4.3 ballooning probe (the Figure 14 "No Ballooning"
    /// comparison): memory shrinks follow the other dimensions immediately,
    /// risking working-set eviction.
    pub balloon_enabled: bool,
}

impl Default for AutoConfig {
    fn default() -> Self {
        Self {
            knobs: TenantKnobs::none(),
            estimator: EstimatorConfig::default(),
            balloon: BalloonConfig::default(),
            lock_dominance_pct: 60.0,
            emergency_factor: 2.0,
            balloon_confirm_ttl: 10,
            balloon_enabled: true,
        }
    }
}

impl AutoConfig {
    /// Config with the given knobs and defaults elsewhere.
    pub fn with_knobs(knobs: TenantKnobs) -> Self {
        Self {
            knobs,
            ..Self::default()
        }
    }
}

/// The paper's auto-scaling policy.
#[derive(Debug)]
pub struct AutoPolicy {
    cfg: AutoConfig,
    estimator: DemandEstimator,
    balloon: BalloonController,
    last_resize: Option<u64>,
    /// `(interval, target_mb)` of the last committed probe: memory may
    /// shrink only to containers with at least `target_mb` of memory.
    balloon_confirmed: Option<(u64, f64)>,
}

impl AutoPolicy {
    /// Creates the policy.
    pub fn new(cfg: AutoConfig) -> Self {
        Self {
            estimator: DemandEstimator::new(cfg.estimator),
            balloon: BalloonController::new(cfg.balloon),
            cfg,
            last_resize: None,
            balloon_confirmed: None,
        }
    }

    /// Creates the policy with knobs and default tuning.
    pub fn with_knobs(knobs: TenantKnobs) -> Self {
        Self::new(AutoConfig::with_knobs(knobs))
    }

    /// The configuration in use.
    pub fn config(&self) -> &AutoConfig {
        &self.cfg
    }

    /// Scale-ups respect the sensitivity cooldown; scale-downs only need
    /// one interval of separation (they are cheap to revert and the cost
    /// clock is ticking).
    fn in_up_cooldown(&self, interval: u64) -> bool {
        self.last_resize
            .is_some_and(|at| interval < at + self.cfg.knobs.sensitivity.cooldown_intervals())
    }

    fn in_down_cooldown(&self, interval: u64) -> bool {
        self.last_resize.is_some_and(|at| interval < at + 1)
    }

    fn memory_of_next_lower_rung(_catalog: &Catalog, current: &Container) -> Option<f64> {
        let rung = current.rung as usize;
        if rung == 0 {
            None
        } else {
            Some(Catalog::rung_resources(rung - 1).memory_mb)
        }
    }

    /// Whether a memory shrink to `target_mb` is safe without a balloon:
    /// the pool isn't even using that much.
    fn mem_shrink_safe(signals: &dasr_telemetry::SignalSet, target_mb: f64) -> bool {
        signals.mem_used_mb <= 0.9 * target_mb
    }

    /// Whether the current load would keep CPU, disk and log utilization
    /// below the HIGH band on container `target` (memory is judged by its
    /// own gate).
    fn projected_util_ok(
        signals: &dasr_telemetry::SignalSet,
        current: &Container,
        target: &Container,
    ) -> bool {
        const PROJECTED_UTIL_CAP_PCT: f64 = 65.0;
        [ResourceKind::Cpu, ResourceKind::DiskIo, ResourceKind::LogIo]
            .into_iter()
            .all(|k| {
                let cur = current.resources[k];
                let tgt = target.resources[k];
                if tgt <= 0.0 {
                    return false;
                }
                signals.resource(k).util_pct * cur / tgt <= PROJECTED_UTIL_CAP_PCT
            })
    }
}

impl ScalingPolicy for AutoPolicy {
    fn name(&self) -> &'static str {
        "auto"
    }

    // dasr-lint: entry(G1)
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> PolicyDecision {
        let sig = ctx.signals;
        let catalog = ctx.catalog;
        let current = ctx.current;
        let mut explanations = Vec::new();
        let est = self.estimator.estimate(sig);
        let mut trace = DecisionTrace::with_estimate(sig, &est, current.id);

        let goal = sig.latency.goal_ms;
        let margin = self.cfg.knobs.sensitivity.downscale_margin();
        // Latency comfortably inside the goal (idle counts as comfortable).
        let headroom_ok = match (sig.latency.observed_ms, goal) {
            (Some(obs), Some(g)) => obs <= margin * g,
            (None, Some(_)) => true,
            _ => false,
        };
        let wants_down = !est.any_up()
            && !sig.latency.needs_attention()
            && (est.any_down() || (headroom_ok && !sig.latency.trend.is_increasing()));

        // --- Balloon management (independent of cooldown) -----------------
        let next_mem = Self::memory_of_next_lower_rung(catalog, current);
        let mut balloon_cmd = if self.cfg.balloon_enabled {
            trace.balloon = BalloonGate::Idle;
            self.balloon.step(sig, wants_down, next_mem, ctx.balloon)
        } else {
            BalloonAction::None
        };
        match balloon_cmd {
            BalloonAction::Start { target_mb } => {
                trace.balloon = BalloonGate::Started { target_mb };
                trace.gates.push(RuleId::BalloonStart);
                explanations.push(Explanation::BalloonStarted { target_mb });
            }
            BalloonAction::Abort => {
                trace.balloon = BalloonGate::Aborted;
                trace.gates.push(RuleId::BalloonAbort);
                explanations.push(Explanation::BalloonAborted);
                self.balloon_confirmed = None;
            }
            BalloonAction::Commit => {
                if let Some(target) = next_mem {
                    trace.balloon = BalloonGate::Confirmed { target_mb: target };
                    self.balloon_confirmed = Some((sig.interval, target));
                }
            }
            BalloonAction::None => {}
        }
        // The confirmation authorizes shrinking memory to `mb` or more.
        let confirmed_down_to = self
            .balloon_confirmed
            .and_then(|(at, mb)| (sig.interval <= at + self.cfg.balloon_confirm_ttl).then_some(mb));

        // --- Facts + one arbitration pass (§6) -----------------------------
        let emergency = match (sig.latency.observed_ms, goal) {
            (Some(obs), Some(g)) => obs > self.cfg.emergency_factor * g,
            _ => false,
        };
        if emergency && self.in_up_cooldown(sig.interval) {
            trace.gates.push(RuleId::EmergencyBypass);
        }
        let up_blocked = self.in_up_cooldown(sig.interval) && !emergency;
        let down_blocked = self.in_down_cooldown(sig.interval);
        let scale_up_gate = match goal {
            Some(_) => sig.latency.needs_attention(),
            // No latency goal: scale purely on demand (§2.3).
            None => true,
        };
        let facts = FactSet::new()
            .with(Fact::HasGoal, goal.is_some())
            .with(Fact::LatencyAttention, sig.latency.needs_attention())
            .with(Fact::Emergency, emergency)
            .with(Fact::UpBlocked, up_blocked)
            .with(Fact::DownBlocked, down_blocked)
            .with(Fact::DemandUp, est.any_up())
            .with(Fact::DemandDown, est.any_down())
            .with(Fact::WantsDown, wants_down)
            .with(Fact::ScaleUpGate, scale_up_gate)
            .with(
                Fact::LockShareHigh,
                sig.lock_bottleneck(self.cfg.lock_dominance_pct),
            )
            .with(Fact::HeadroomOk, headroom_ok)
            .with(Fact::BalloonEnabled, self.cfg.balloon_enabled);
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&self.cfg.estimator, facts));
        trace.arbitration = eval.evaluated;
        let branch = eval.fired.expect("arbitration table has a fallback").id;
        trace.branch = branch;

        match branch {
            // Both directions inside the cooldown: explicit no-op.
            RuleId::CooldownHold => {
                explanations.push(Explanation::Cooldown);
                Self::finish(trace, explanations, current, current, balloon_cmd)
            }

            // --- Scale-up branch (§6) ----------------------------------------
            RuleId::ScaleUpDemand => {
                for kind in est.up_resources() {
                    explanations.push(Explanation::ScaleUpBottleneck {
                        resource: kind,
                        rule: est.demand(kind).rule.expect("up demand fired a rule"),
                    });
                }
                let desired = catalog.desired_after_steps(current, est.up_steps());
                let unconstrained = catalog.cheapest_covering(&desired, None);
                let pick = catalog.cheapest_covering(&desired, ctx.available_budget);
                let target = match (pick, unconstrained) {
                    (Some(p), u) => {
                        if u.is_some_and(|u| p.id != u.id) {
                            trace.budget_limited = true;
                            trace.gates.push(RuleId::BudgetConstrained);
                            explanations.push(Explanation::ScaleUpConstrainedByBudget);
                        }
                        Some(p)
                    }
                    (None, _) => {
                        // Budget cannot cover the desired container: take the
                        // most expensive affordable one (§6).
                        trace.budget_limited = true;
                        trace.gates.push(RuleId::BudgetConstrained);
                        explanations.push(Explanation::ScaleUpConstrainedByBudget);
                        ctx.available_budget
                            .and_then(|b| catalog.most_expensive_under(b))
                            .filter(|c| c.cost > current.cost)
                    }
                };
                if let Some(t) = target {
                    if t.id != current.id {
                        self.last_resize = Some(sig.interval);
                        return Self::finish(trace, explanations, t, current, balloon_cmd);
                    }
                }
                self.finish_no_move(ctx, trace, explanations, balloon_cmd)
            }

            // Latency bad but waits are lock-dominated: explain, don't scale
            // (§6, Figure 13).
            RuleId::LockDominated => {
                explanations.push(Explanation::NonResourceBottleneck {
                    lock_wait_pct: sig.lock_wait_pct,
                });
                self.finish_no_move(ctx, trace, explanations, balloon_cmd)
            }

            // Latency bad but no resource demand: explain, don't scale.
            RuleId::LatencyBadNoDemand => {
                explanations.push(Explanation::LatencyBadNoDemand);
                self.finish_no_move(ctx, trace, explanations, balloon_cmd)
            }

            // --- Scale-down branch ---------------------------------------------
            RuleId::ScaleDownDemand => {
                // Candidate step vectors, most conservative first: the
                // demand-based steps, then — when latency headroom allows a
                // smaller container even with demand (§2.3) — a
                // whole-container step down, which is what a lockstep catalog
                // needs when only some dimensions look idle.
                let mut candidates: Vec<([i8; RESOURCE_KINDS.len()], bool)> = Vec::new();
                if est.any_down() {
                    candidates.push((est.down_steps(), false));
                }
                if headroom_ok && goal.is_some() && !sig.latency.trend.is_increasing() {
                    let mut all_down = est.down_steps();
                    for s in all_down.iter_mut() {
                        *s = (*s).min(-1);
                    }
                    candidates.push((all_down, true));
                } else if !est.any_down() {
                    candidates.push(([-1; RESOURCE_KINDS.len()], true));
                }
                for (mut steps, from_headroom) in candidates {
                    // Memory shrinks only with evidence (§4.3): a balloon
                    // commit justifies exactly one rung (the probed target); a
                    // pool that is not even using the target justifies going
                    // as deep as the usage allows.
                    let mem_idx = ResourceKind::Memory.index();
                    if steps.iter().any(|&s| s < 0) && steps[mem_idx] == 0 {
                        steps[mem_idx] = *steps.iter().min().expect("non-empty");
                    }
                    if steps[mem_idx] < 0 && self.cfg.balloon_enabled {
                        let requested = (-steps[mem_idx]) as usize;
                        let cur_rung = current.rung as usize;
                        let mut depth = 0usize;
                        for d in 1..=requested.min(cur_rung) {
                            let target = Catalog::rung_resources(cur_rung - d).memory_mb;
                            let safe = Self::mem_shrink_safe(sig, target);
                            let confirmed = confirmed_down_to.is_some_and(|mb| target >= mb - 1e-6);
                            if safe || confirmed {
                                depth = d;
                            } else {
                                break;
                            }
                        }
                        steps[mem_idx] = -(depth as i8);
                    }
                    let desired = catalog.desired_after_steps(current, steps);
                    let Some(t) = catalog.cheapest_covering(&desired, ctx.available_budget) else {
                        continue;
                    };
                    // Capacity sanity check for headroom-motivated shrinks: a
                    // smaller container must keep every governed resource out
                    // of the HIGH band at the current load, or the step lands
                    // on the saturation cliff instead of trading a little
                    // latency for cost.
                    if from_headroom && !Self::projected_util_ok(sig, current, t) {
                        continue;
                    }
                    if t.cost < current.cost {
                        if confirmed_down_to.is_some() && steps[mem_idx] < 0 {
                            trace.gates.push(RuleId::BalloonConfirmedShrink);
                            explanations.push(Explanation::ScaleDownBalloonConfirmed);
                            self.balloon_confirmed = None;
                        }
                        // A probe started this very decision would target the
                        // rung we are leaving; cancel it rather than racing
                        // the resize.
                        if matches!(balloon_cmd, BalloonAction::Start { .. }) {
                            balloon_cmd = BalloonAction::None;
                            trace.balloon = BalloonGate::Idle;
                            trace.gates.retain(|&g| g != RuleId::BalloonStart);
                            explanations
                                .retain(|e| !matches!(e, Explanation::BalloonStarted { .. }));
                        }
                        if from_headroom {
                            if let (Some(obs), Some(g)) = (sig.latency.observed_ms, goal) {
                                trace.gates.push(RuleId::LatencyHeadroom);
                                explanations.push(Explanation::ScaleDownLatencyHeadroom {
                                    observed_ms: obs,
                                    goal_ms: g,
                                });
                            } else {
                                explanations.push(Explanation::ScaleDownLowDemand {
                                    resources: RESOURCE_KINDS.to_vec(),
                                });
                            }
                        } else {
                            explanations.push(Explanation::ScaleDownLowDemand {
                                resources: est.down_resources(),
                            });
                        }
                        self.last_resize = Some(sig.interval);
                        return Self::finish(trace, explanations, t, current, balloon_cmd);
                    }
                }
                self.finish_no_move(ctx, trace, explanations, balloon_cmd)
            }

            // HoldSteady (and, defensively, anything else): keep the
            // container, still enforcing the budget.
            _ => self.finish_no_move(ctx, trace, explanations, balloon_cmd),
        }
    }
}

impl AutoPolicy {
    /// Seals a decision: records the granted rung delta and the
    /// explanations in the trace, then wraps everything up.
    fn finish(
        mut trace: DecisionTrace,
        explanations: Vec<Explanation>,
        target: &Container,
        current: &Container,
        balloon: BalloonCommand,
    ) -> PolicyDecision {
        trace.target = target.id;
        trace.grant(current.rung, target.rung);
        trace.explanations = explanations;
        PolicyDecision {
            target: target.id,
            trace,
            balloon,
        }
    }

    /// Terminal no-move path, still enforcing the budget: if the bucket can
    /// no longer afford the *current* container, downgrade to the most
    /// expensive affordable one.
    fn finish_no_move(
        &mut self,
        ctx: &PolicyContext<'_>,
        mut trace: DecisionTrace,
        mut explanations: Vec<Explanation>,
        balloon: BalloonCommand,
    ) -> PolicyDecision {
        if let Some(b) = ctx.available_budget {
            if ctx.current.cost > b + 1e-9 {
                trace.budget_limited = true;
                trace.gates.push(RuleId::BudgetForcedDowngrade);
                explanations.push(Explanation::ScaleUpConstrainedByBudget);
                if let Some(t) = ctx.catalog.most_expensive_under(b) {
                    self.last_resize = Some(ctx.signals.interval);
                    return Self::finish(trace, explanations, t, ctx.current, balloon);
                }
            }
        }
        if explanations.is_empty() {
            explanations.push(Explanation::NoChange);
        }
        Self::finish(trace, explanations, ctx.current, ctx.current, balloon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::tests_support::quiet_signal_set;
    use crate::knobs::PerfSensitivity;
    use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
    use dasr_telemetry::LatencyGoal;
    use dasr_telemetry::SignalSet;

    fn catalog() -> Catalog {
        Catalog::azure_like()
    }

    fn high_cpu_pressure(mut s: SignalSet) -> SignalSet {
        let cpu = &mut s.resources[ResourceKind::Cpu.index()];
        cpu.util_pct = 85.0;
        cpu.util_level = UtilLevel::High;
        cpu.wait_level = WaitTimeLevel::High;
        cpu.wait_pct = 60.0;
        cpu.wait_pct_level = WaitPctLevel::Significant;
        s
    }

    fn bad_latency(mut s: SignalSet) -> SignalSet {
        s.latency.observed_ms = Some(150.0);
        s.latency.goal_ms = Some(100.0);
        s.latency.verdict = LatencyVerdict::Bad;
        s
    }

    fn policy() -> AutoPolicy {
        AutoPolicy::with_knobs(TenantKnobs::none().with_latency_goal(LatencyGoal::P95(100.0)))
    }

    fn ctx<'a>(
        signals: &'a SignalSet,
        current: &'a Container,
        catalog: &'a Catalog,
        budget: Option<f64>,
    ) -> PolicyContext<'a> {
        PolicyContext {
            signals,
            current,
            catalog,
            available_budget: budget,
            balloon: crate::policy::BalloonStatus::Inactive,
        }
    }

    #[test]
    fn scales_up_on_demand_with_bad_latency() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let s = bad_latency(high_cpu_pressure(quiet_signal_set(5)));
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, None));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost > current.cost, "must scale up: {d:?}");
        assert!(d
            .explanations()
            .iter()
            .any(|e| matches!(e, Explanation::ScaleUpBottleneck { .. })));
    }

    #[test]
    fn no_scale_up_when_latency_good_despite_demand() {
        // §2.3: latency goals reduce cost — demand alone doesn't scale up.
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let mut s = high_cpu_pressure(quiet_signal_set(5));
        s.latency.observed_ms = Some(90.0); // within the 100 ms goal
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, None));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost <= current.cost, "must not scale up: {d:?}");
    }

    #[test]
    fn lock_bottleneck_blocks_scale_up_with_explanation() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let mut s = bad_latency(quiet_signal_set(5));
        s.lock_wait_pct = 93.0;
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, None));
        assert_eq!(d.target, current.id);
        assert!(
            d.explanations()
                .iter()
                .any(|e| matches!(e, Explanation::NonResourceBottleneck { .. })),
            "{d:?}"
        );
    }

    #[test]
    fn budget_constrains_scale_up() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(1)).unwrap().clone(); // cost 15
        let s = bad_latency(high_cpu_pressure(quiet_signal_set(5)));
        let mut p = policy();
        // Budget allows only up to cost 30 (C2), though demand wants C2+.
        let d = p.decide(&ctx(&s, &current, &cat, Some(30.0)));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost <= 30.0, "cost {} exceeds budget", target.cost);
    }

    #[test]
    fn headroom_scales_down_even_with_demand() {
        // Loose goal: latency far inside it, utilization HIGH — Auto still
        // steps down (the §7.3 "5× Max" behaviour).
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(4)).unwrap().clone();
        let mut s = quiet_signal_set(5);
        s.latency.observed_ms = Some(50.0);
        s.latency.goal_ms = Some(500.0);
        // Pool barely used: memory shrink is safe without balloon.
        s.mem_used_mb = 100.0;
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, None));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost < current.cost, "{d:?}");
        assert!(d
            .explanations()
            .iter()
            .any(|e| matches!(e, Explanation::ScaleDownLatencyHeadroom { .. })));
    }

    #[test]
    fn memory_gate_blocks_scale_down_until_balloon_confirms() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(4)).unwrap().clone();
        let mut s = quiet_signal_set(5);
        s.latency.observed_ms = Some(50.0);
        s.latency.goal_ms = Some(500.0);
        // Pool full at the current container's size: memory shrink is NOT
        // trivially safe.
        s.mem_capacity_mb = 7_000.0;
        s.mem_used_mb = 7_000.0;
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, None));
        assert_eq!(d.target, current.id, "lockstep shrink blocked: {d:?}");
        // A balloon probe should have been started instead.
        assert!(matches!(d.balloon, BalloonCommand::Start { .. }), "{d:?}");
    }

    #[test]
    fn cooldown_suppresses_consecutive_resizes() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let mut p = AutoPolicy::with_knobs(
            TenantKnobs::none()
                .with_latency_goal(LatencyGoal::P95(100.0))
                .with_sensitivity(PerfSensitivity::Medium),
        );
        let s5 = bad_latency(high_cpu_pressure(quiet_signal_set(5)));
        let d1 = p.decide(&ctx(&s5, &current, &cat, None));
        assert_ne!(d1.target, current.id);
        // Same interval again (e.g. re-evaluation): both directions are
        // blocked and the decision is an explicit cooldown no-op.
        let s5b = bad_latency(high_cpu_pressure(quiet_signal_set(5)));
        let after = cat.get(d1.target).unwrap().clone();
        let d1b = p.decide(&ctx(&s5b, &after, &cat, None));
        assert_eq!(d1b.target, after.id);
        assert!(d1b.explanations().contains(&Explanation::Cooldown));
        // Next interval, mildly bad latency again: scale-ups still cool
        // down (no further climb), though scale-downs would be allowed.
        let mut s6 = bad_latency(high_cpu_pressure(quiet_signal_set(6)));
        s6.latency.observed_ms = Some(120.0);
        let d2 = p.decide(&ctx(&s6, &after, &cat, None));
        assert_eq!(d2.target, after.id);
        assert!(!d2
            .explanations()
            .iter()
            .any(|e| matches!(e, Explanation::ScaleUpBottleneck { .. })));
    }

    #[test]
    fn emergency_bypasses_cooldown() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let mut p = policy();
        let s5 = bad_latency(high_cpu_pressure(quiet_signal_set(5)));
        let d1 = p.decide(&ctx(&s5, &current, &cat, None));
        let after = cat.get(d1.target).unwrap().clone();
        // Latency exploded to > 2x goal: act despite cooldown.
        let mut s6 = bad_latency(high_cpu_pressure(quiet_signal_set(6)));
        s6.latency.observed_ms = Some(900.0);
        let d2 = p.decide(&ctx(&s6, &after, &cat, None));
        assert_ne!(d2.target, after.id, "{d2:?}");
    }

    #[test]
    fn pure_demand_mode_without_goal() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(2)).unwrap().clone();
        let mut p = AutoPolicy::with_knobs(TenantKnobs::none());
        // Latency "good" (no goal), but demand high: scale up anyway.
        let mut s = high_cpu_pressure(quiet_signal_set(5));
        s.latency.goal_ms = None;
        let d = p.decide(&ctx(&s, &current, &cat, None));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost > current.cost, "{d:?}");
    }

    #[test]
    fn forced_downgrade_when_budget_below_current() {
        let cat = catalog();
        let current = cat.get(dasr_containers::ContainerId(5)).unwrap().clone(); // cost 90
        let s = quiet_signal_set(5);
        let mut p = policy();
        let d = p.decide(&ctx(&s, &current, &cat, Some(40.0)));
        let target = cat.get(d.target).unwrap();
        assert!(target.cost <= 40.0, "{d:?}");
        assert!(d
            .explanations()
            .contains(&Explanation::ScaleUpConstrainedByBudget));
    }
}
