//! Scaling policies: the paper's Auto (§6) and the §7.2 baselines.

pub mod auto;
pub mod offline;
pub mod util;

pub use auto::AutoPolicy;
pub use util::UtilPolicy;

use crate::estimator::memory::{BalloonAction, BalloonProbe};
use crate::explain::Explanation;
use crate::trace::DecisionTrace;
use dasr_containers::{Catalog, Container, ContainerId};
use dasr_telemetry::SignalSet;

/// Re-export: engine-side balloon status, supplied by the runner.
pub type BalloonStatus = BalloonProbe;

/// Re-export: balloon command issued by a policy.
pub type BalloonCommand = BalloonAction;

/// Everything a policy may consult when deciding the next interval's
/// container.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Signals for the interval that just ended.
    pub signals: &'a SignalSet,
    /// The container currently allocated.
    pub current: &'a Container,
    /// The service's container offering.
    pub catalog: &'a Catalog,
    /// Budget available for the next interval (`Bᵢ`), `None` when
    /// unconstrained (§5).
    pub available_budget: Option<f64>,
    /// Engine-side balloon status.
    pub balloon: BalloonStatus,
}

/// A policy's decision for the next billing interval.
///
/// Every decision carries a complete [`DecisionTrace`] — signals seen,
/// rules evaluated/fired, steps demanded vs granted, gates engaged — and
/// the §4 explanations live inside it as structured data.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// Container for the next interval (may equal the current one).
    pub target: ContainerId,
    /// The structured end-to-end record of this decision.
    pub trace: DecisionTrace,
    /// Balloon command for the engine.
    pub balloon: BalloonCommand,
}

impl PolicyDecision {
    /// A decision pinning `target` regardless of signals (the static and
    /// schedule baselines). The trace still records what the signals said.
    pub fn pin(ctx: &PolicyContext<'_>, target: ContainerId) -> Self {
        let mut trace = DecisionTrace::from_signals(ctx.signals, ctx.current.id);
        trace.target = target;
        if let Some(t) = ctx.catalog.get(target) {
            trace.grant(ctx.current.rung, t.rung);
        }
        trace.explanations.push(Explanation::NoChange);
        Self {
            target,
            trace,
            balloon: BalloonCommand::None,
        }
    }

    /// The §4 explanations this decision carries.
    pub fn explanations(&self) -> &[Explanation] {
        &self.trace.explanations
    }
}

/// A container-sizing policy evaluated once per billing interval (§6).
pub trait ScalingPolicy {
    /// Name used in reports (`auto`, `util`, `max`, `peak`, `avg`, `trace`).
    fn name(&self) -> &'static str;

    /// Decides the container for the next billing interval.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> PolicyDecision;
}

/// A fixed container for the whole run (the `Max`, `Peak` and `Avg`
/// baselines, §7.2.1).
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    name: &'static str,
    container: ContainerId,
}

impl StaticPolicy {
    /// Pins `container` for the whole run.
    pub fn new(name: &'static str, container: ContainerId) -> Self {
        Self { name, container }
    }

    /// The largest container in `catalog` (the `Max` gold standard).
    pub fn max(catalog: &Catalog) -> Self {
        Self::new("max", catalog.largest().id)
    }
}

impl ScalingPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    // dasr-lint: entry(G1)
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> PolicyDecision {
        PolicyDecision::pin(ctx, self.container)
    }
}

/// A precomputed per-interval schedule (the offline `Trace` baseline,
/// §7.2.1: a sequence of container sizes that "hugs" the demand curve).
#[derive(Debug, Clone)]
pub struct SchedulePolicy {
    schedule: Vec<ContainerId>,
    next: usize,
}

impl SchedulePolicy {
    /// Creates the policy; interval `i` uses `schedule[i]` (clamped to the
    /// last entry).
    ///
    /// # Panics
    /// Panics if the schedule is empty.
    pub fn new(schedule: Vec<ContainerId>) -> Self {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        Self { schedule, next: 0 }
    }
}

impl ScalingPolicy for SchedulePolicy {
    fn name(&self) -> &'static str {
        "trace"
    }

    // dasr-lint: entry(G1)
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> PolicyDecision {
        // decide() is called at the END of interval i to pick interval
        // i+1's container.
        self.next += 1;
        let idx = self.next.min(self.schedule.len() - 1);
        PolicyDecision::pin(ctx, self.schedule[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::tests_support::quiet_signal_set;

    fn ctx<'a>(
        signals: &'a SignalSet,
        current: &'a Container,
        catalog: &'a Catalog,
    ) -> PolicyContext<'a> {
        PolicyContext {
            signals,
            current,
            catalog,
            available_budget: None,
            balloon: BalloonStatus::Inactive,
        }
    }

    #[test]
    fn static_policy_never_moves() {
        let catalog = Catalog::azure_like();
        let mut p = StaticPolicy::max(&catalog);
        let signals = quiet_signal_set(0);
        let current = catalog.smallest().clone();
        let d = p.decide(&ctx(&signals, &current, &catalog));
        assert_eq!(d.target, catalog.largest().id);
        assert_eq!(p.name(), "max");
    }

    #[test]
    fn schedule_policy_follows_schedule_offset_by_one() {
        let catalog = Catalog::azure_like();
        let ids: Vec<ContainerId> = catalog.iter().take(3).map(|c| c.id).collect();
        let mut p = SchedulePolicy::new(ids.clone());
        let signals = quiet_signal_set(0);
        let current = catalog.smallest().clone();
        // First decision (end of interval 0) must pick schedule[1].
        let d = p.decide(&ctx(&signals, &current, &catalog));
        assert_eq!(d.target, ids[1]);
        let d = p.decide(&ctx(&signals, &current, &catalog));
        assert_eq!(d.target, ids[2]);
        // Past the end: clamps.
        let d = p.decide(&ctx(&signals, &current, &catalog));
        assert_eq!(d.target, ids[2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_schedule_panics() {
        let _ = SchedulePolicy::new(vec![]);
    }
}
