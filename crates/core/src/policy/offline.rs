//! Offline baselines (§7.2.1): **Peak**, **Avg** and **Trace**.
//!
//! These have the luxury of observing the workload's resource demands
//! before choosing: the workload is first executed with the `Max`
//! container to record per-interval absolute resource usage, then
//!
//! - **Peak** — a static container covering the 95th-percentile usage;
//! - **Avg** — a static container covering the mean usage;
//! - **Trace** — a per-interval schedule of smallest covering containers
//!   ("hugs" the demand curve).

use crate::policy::{SchedulePolicy, StaticPolicy};
use crate::report::RunReport;
use crate::runner::{ClosedLoop, RunConfig};
use dasr_containers::{Catalog, ContainerId, ResourceVector, RESOURCE_KINDS};
use dasr_stats::percentile;
use dasr_workloads::{Trace, Workload};

/// Per-interval absolute resource usage observed under `Max`.
#[derive(Debug, Clone)]
pub struct UsageProfile {
    /// Usage per billing interval.
    pub usage: Vec<ResourceVector>,
}

impl UsageProfile {
    /// Profiles the workload by running it once with the largest container.
    pub fn profile<W: Workload>(cfg: &RunConfig, trace: &Trace, workload: W) -> (Self, RunReport) {
        let mut max_policy = StaticPolicy::max(&cfg.catalog);
        let mut cfg = cfg.clone();
        cfg.initial = Some(cfg.catalog.largest().id);
        let report = ClosedLoop::run(&cfg, trace, workload, &mut max_policy);
        let usage = report.intervals.iter().map(|i| i.used).collect();
        (Self { usage }, report)
    }

    /// The `p`-th percentile of usage, per dimension.
    pub fn percentile_usage(&self, p: f64) -> ResourceVector {
        let mut out = ResourceVector::ZERO;
        for kind in RESOURCE_KINDS {
            let series: Vec<f64> = self.usage.iter().map(|u| u[kind]).collect();
            out[kind] = percentile(&series, p).unwrap_or(0.0);
        }
        out
    }

    /// The mean usage, per dimension.
    pub fn mean_usage(&self) -> ResourceVector {
        let mut out = ResourceVector::ZERO;
        if self.usage.is_empty() {
            return out;
        }
        for kind in RESOURCE_KINDS {
            let sum: f64 = self.usage.iter().map(|u| u[kind]).sum();
            out[kind] = sum / self.usage.len() as f64;
        }
        out
    }

    /// The `Peak` baseline's static container: smallest covering the 95th
    /// percentile of usage.
    pub fn peak_container(&self, catalog: &Catalog) -> ContainerId {
        catalog
            .assign_for_utilization(&self.percentile_usage(95.0))
            .id
    }

    /// The `Avg` baseline's static container: smallest covering the mean.
    pub fn avg_container(&self, catalog: &Catalog) -> ContainerId {
        catalog.assign_for_utilization(&self.mean_usage()).id
    }

    /// The `Trace` baseline's schedule: per-interval smallest covering
    /// container.
    pub fn trace_schedule(&self, catalog: &Catalog) -> Vec<ContainerId> {
        self.usage
            .iter()
            .map(|u| catalog.assign_for_utilization(u).id)
            .collect()
    }
}

/// Builds the `Peak` policy from a profile.
pub fn peak_policy(profile: &UsageProfile, catalog: &Catalog) -> StaticPolicy {
    StaticPolicy::new("peak", profile.peak_container(catalog))
}

/// Builds the `Avg` policy from a profile.
pub fn avg_policy(profile: &UsageProfile, catalog: &Catalog) -> StaticPolicy {
    StaticPolicy::new("avg", profile.avg_container(catalog))
}

/// Builds the `Trace` policy from a profile.
pub fn trace_policy(profile: &UsageProfile, catalog: &Catalog) -> SchedulePolicy {
    SchedulePolicy::new(profile.trace_schedule(catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_workloads::{CpuIoConfig, CpuIoWorkload};

    fn profile_of(rps: Vec<f64>) -> (UsageProfile, Catalog) {
        let cfg = RunConfig::default();
        let trace = Trace::new("t", rps);
        let (p, _) = UsageProfile::profile(&cfg, &trace, CpuIoWorkload::new(CpuIoConfig::small()));
        (p, cfg.catalog)
    }

    #[test]
    fn peak_covers_more_than_avg_for_bursty_loads() {
        let mut rps = vec![2.0; 12];
        for slot in rps.iter_mut().take(3) {
            *slot = 120.0;
        }
        let (p, catalog) = profile_of(rps);
        let peak = catalog.get(p.peak_container(&catalog)).unwrap();
        let avg = catalog.get(p.avg_container(&catalog)).unwrap();
        assert!(
            peak.cost >= avg.cost,
            "peak {} should cost at least avg {}",
            peak.cost,
            avg.cost
        );
    }

    #[test]
    fn trace_schedule_follows_demand() {
        let mut rps = vec![2.0; 10];
        for slot in rps.iter_mut().skip(4).take(3) {
            *slot = 150.0;
        }
        let (p, catalog) = profile_of(rps);
        let schedule = p.trace_schedule(&catalog);
        assert_eq!(schedule.len(), 10);
        let rung = |id: ContainerId| catalog.get(id).unwrap().rung;
        let burst_max = (4..7).map(|i| rung(schedule[i])).max().unwrap();
        let idle_max = (8..10).map(|i| rung(schedule[i])).max().unwrap();
        assert!(
            burst_max > idle_max,
            "burst rung {burst_max} must exceed idle rung {idle_max}: {schedule:?}"
        );
    }

    #[test]
    fn usage_statistics_are_ordered() {
        let (p, _) = profile_of(vec![30.0; 8]);
        let mean = p.mean_usage();
        let p95 = p.percentile_usage(95.0);
        for kind in RESOURCE_KINDS {
            assert!(p95[kind] >= mean[kind] - 1e-9, "{kind}: p95 < mean");
        }
    }
}
