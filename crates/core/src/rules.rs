//! The declarative §4 rule engine: the paper's manually-constructed rule
//! hierarchy as *data*, not control flow.
//!
//! The seed reproduction encoded the §4.2/§4.3 scenarios as `if` chains in
//! [`crate::estimator::rules`] (kept there as the reference oracle). This
//! module expresses the same hierarchy as static [`RuleTable`]s — ordered
//! lists of [`Rule`]s whose conditions are [`Predicate`] combinators over
//! the categorized signal domain — evaluated by a generic first-match
//! engine. The payoff, following RobustScaler and Daedalus's
//! model-as-data designs:
//!
//! - every decision names the [`RuleId`] that produced it, so traces,
//!   histograms and golden tests speak one stable vocabulary;
//! - human-readable explanations are *rendered from* the structured
//!   [`RuleFire`] (id + captured bindings) instead of being stored as
//!   strings;
//! - the §6 arbitration (scale-up vs lock-dominance vs scale-down vs
//!   hold) is one more table over policy-level [`Fact`]s, so the whole
//!   loop is one evaluation plus one arbitration pass.
//!
//! Behaviour is preserved by construction (first-match over the same
//! conditions in the same order) and verified bit-for-bit against the seed
//! chain by `tests/decision_equivalence.rs`.

use crate::estimator::EstimatorConfig;
use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
use dasr_telemetry::signals::{LatencySignals, ResourceSignals};
use std::fmt;

/// Stable identifier of every rule in the system.
///
/// The first block is the §4.2 high-demand hierarchy and the §4.3-adjacent
/// low-demand rules; the second block is the §6 arbitration branches; the
/// third is the gate rules that annotate a decision (budget, balloon,
/// emergency, headroom). The discriminant order is the wire order — do not
/// reorder without bumping the trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// §4.2(a) at extreme pressure: everything HIGH/SIGNIFICANT *and*
    /// utilization ≥ `very_high_util_pct` *and* wait share ≥
    /// `dominant_wait_pct` *and* an increasing trend — jump two rungs.
    HighASurge,
    /// §4.2(a): utilization HIGH, waits HIGH, wait share SIGNIFICANT.
    HighA,
    /// §4.2(b): utilization HIGH, waits HIGH, share NOT significant, but a
    /// SIGNIFICANT increasing trend corroborates.
    HighB,
    /// §4.2(c): utilization HIGH, waits MEDIUM yet SIGNIFICANT, with an
    /// increasing trend.
    HighC,
    /// §3.2.2 bottleneck identification: latency BAD and rank-correlated
    /// with SIGNIFICANT waits of at least MEDIUM magnitude.
    HighCorr,
    /// Scale-down at near-idle utilization (≤ `very_low_util_pct`): two
    /// rungs.
    LowIdle,
    /// Scale-down: utilization LOW, waits LOW, no increasing trend.
    Low,
    /// §6 branch: both scale directions are inside the post-resize
    /// cooldown — hold.
    CooldownHold,
    /// §6 branch: the latency gate is open and some resource demands more
    /// — scale up.
    ScaleUpDemand,
    /// §6 / Figure 13 branch: latency is bad but waits are dominated by
    /// application locks — explain instead of scaling.
    LockDominated,
    /// §6 branch: latency is bad yet no resource shows demand — explain.
    LatencyBadNoDemand,
    /// §6 branch: nothing needs attention and demand (or latency headroom)
    /// points down — scale down.
    ScaleDownDemand,
    /// §6 fallback branch: no rule fired — keep the current container.
    HoldSteady,
    /// Gate: latency beyond `emergency_factor × goal` bypassed the
    /// scale-up cooldown.
    EmergencyBypass,
    /// Gate: the available budget truncated or blocked a recommended
    /// scale-up (§5).
    BudgetConstrained,
    /// Gate: the bucket can no longer afford the *current* container — a
    /// forced downgrade to the most expensive affordable one (§5).
    BudgetForcedDowngrade,
    /// Gate: latency comfortably inside the goal justified a
    /// whole-container step down despite demand (§2.3).
    LatencyHeadroom,
    /// Gate: a balloon probe was started to test low memory demand (§4.3).
    BalloonStart,
    /// Gate: a balloon probe aborted because disk I/O rose (§4.3).
    BalloonAbort,
    /// Gate: a committed balloon probe authorized a memory shrink (§4.3).
    BalloonConfirmedShrink,
}

impl RuleId {
    /// Number of rule identifiers.
    pub const COUNT: usize = 20;

    /// Every identifier, in wire order.
    pub const ALL: [RuleId; RuleId::COUNT] = [
        RuleId::HighASurge,
        RuleId::HighA,
        RuleId::HighB,
        RuleId::HighC,
        RuleId::HighCorr,
        RuleId::LowIdle,
        RuleId::Low,
        RuleId::CooldownHold,
        RuleId::ScaleUpDemand,
        RuleId::LockDominated,
        RuleId::LatencyBadNoDemand,
        RuleId::ScaleDownDemand,
        RuleId::HoldSteady,
        RuleId::EmergencyBypass,
        RuleId::BudgetConstrained,
        RuleId::BudgetForcedDowngrade,
        RuleId::LatencyHeadroom,
        RuleId::BalloonStart,
        RuleId::BalloonAbort,
        RuleId::BalloonConfirmedShrink,
    ];

    /// Dense index (the discriminant), for histogram slots.
    pub fn index(self) -> usize {
        RuleId::ALL
            .iter()
            .position(|&r| r == self)
            .expect("RuleId::ALL is total")
    }

    /// Stable wire name used by the JSONL trace format.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HighASurge => "high_a_surge",
            RuleId::HighA => "high_a",
            RuleId::HighB => "high_b",
            RuleId::HighC => "high_c",
            RuleId::HighCorr => "high_corr",
            RuleId::LowIdle => "low_idle",
            RuleId::Low => "low",
            RuleId::CooldownHold => "cooldown_hold",
            RuleId::ScaleUpDemand => "scale_up_demand",
            RuleId::LockDominated => "lock_dominated",
            RuleId::LatencyBadNoDemand => "latency_bad_no_demand",
            RuleId::ScaleDownDemand => "scale_down_demand",
            RuleId::HoldSteady => "hold_steady",
            RuleId::EmergencyBypass => "emergency_bypass",
            RuleId::BudgetConstrained => "budget_constrained",
            RuleId::BudgetForcedDowngrade => "budget_forced_downgrade",
            RuleId::LatencyHeadroom => "latency_headroom",
            RuleId::BalloonStart => "balloon_start",
            RuleId::BalloonAbort => "balloon_abort",
            RuleId::BalloonConfirmedShrink => "balloon_confirmed_shrink",
        }
    }

    /// Parses a wire name back to the identifier.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A tunable threshold referenced *by name* from a static rule table and
/// resolved against the live [`EstimatorConfig`] at evaluation time — what
/// keeps the tables `static` while the knobs stay runtime-tunable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threshold {
    /// [`EstimatorConfig::very_high_util_pct`].
    VeryHighUtil,
    /// [`EstimatorConfig::very_low_util_pct`].
    VeryLowUtil,
    /// [`EstimatorConfig::dominant_wait_pct`].
    DominantWaitPct,
    /// [`EstimatorConfig::corr_threshold`].
    CorrThreshold,
}

impl Threshold {
    /// The threshold's current value under `cfg`.
    pub fn resolve(self, cfg: &EstimatorConfig) -> f64 {
        match self {
            Threshold::VeryHighUtil => cfg.very_high_util_pct,
            Threshold::VeryLowUtil => cfg.very_low_util_pct,
            Threshold::DominantWaitPct => cfg.dominant_wait_pct,
            Threshold::CorrThreshold => cfg.corr_threshold,
        }
    }
}

/// A named policy-level boolean the §6 arbitration predicates test.
///
/// Facts are computed once per decision from the signal set, the policy's
/// cooldown state and the tenant knobs, then the arbitration table is
/// evaluated over the resulting [`FactSet`] — one evaluation, one
/// arbitration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    /// The tenant set a latency goal.
    HasGoal,
    /// Latency is BAD or trending up significantly (§6).
    LatencyAttention,
    /// Latency exceeds `emergency_factor × goal`.
    Emergency,
    /// Scale-ups are blocked (inside the sensitivity cooldown and no
    /// emergency).
    UpBlocked,
    /// Scale-downs are blocked (resized last interval).
    DownBlocked,
    /// Some resource demands a larger container.
    DemandUp,
    /// Some resource demands a smaller container.
    DemandDown,
    /// The scale-down preconditions hold (no up demand, latency calm, and
    /// either down demand or latency headroom).
    WantsDown,
    /// The scale-up gate is open (latency needs attention, or the tenant
    /// has no goal and scales purely on demand, §2.3).
    ScaleUpGate,
    /// Lock waits dominate total waits (Figure 13).
    LockShareHigh,
    /// Latency is comfortably inside the goal (margin applied).
    HeadroomOk,
    /// The §4.3 ballooning probe is enabled.
    BalloonEnabled,
}

impl Fact {
    const COUNT: usize = 12;

    fn bit(self) -> u16 {
        1 << (self as usize)
    }

    /// Stable wire name (lower snake case of the variant).
    pub fn name(self) -> &'static str {
        match self {
            Fact::HasGoal => "has_goal",
            Fact::LatencyAttention => "latency_attention",
            Fact::Emergency => "emergency",
            Fact::UpBlocked => "up_blocked",
            Fact::DownBlocked => "down_blocked",
            Fact::DemandUp => "demand_up",
            Fact::DemandDown => "demand_down",
            Fact::WantsDown => "wants_down",
            Fact::ScaleUpGate => "scale_up_gate",
            Fact::LockShareHigh => "lock_share_high",
            Fact::HeadroomOk => "headroom_ok",
            Fact::BalloonEnabled => "balloon_enabled",
        }
    }
}

/// A small bitset of [`Fact`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FactSet(u16);

impl FactSet {
    /// The empty set.
    pub const fn new() -> Self {
        FactSet(0)
    }

    /// Adds `fact` when `holds`, returning the set (builder style).
    pub fn with(mut self, fact: Fact, holds: bool) -> Self {
        if holds {
            self.0 |= fact.bit();
        }
        self
    }

    /// True when `fact` is in the set.
    pub fn contains(self, fact: Fact) -> bool {
        self.0 & fact.bit() != 0
    }

    /// The facts present, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Fact> {
        const ALL: [Fact; Fact::COUNT] = [
            Fact::HasGoal,
            Fact::LatencyAttention,
            Fact::Emergency,
            Fact::UpBlocked,
            Fact::DownBlocked,
            Fact::DemandUp,
            Fact::DemandDown,
            Fact::WantsDown,
            Fact::ScaleUpGate,
            Fact::LockShareHigh,
            Fact::HeadroomOk,
            Fact::BalloonEnabled,
        ];
        ALL.into_iter().filter(move |f| self.contains(*f))
    }
}

/// A condition over categorized signals and policy facts.
///
/// The leaf predicates mirror the paper's categorical vocabulary
/// (`UtilIs(HIGH)`, `WaitPctIs(SIGNIFICANT)`, …); [`Predicate::All`],
/// [`Predicate::Any`] and [`Predicate::Not`] combine them. Threshold
/// guards reference the [`EstimatorConfig`] indirectly through
/// [`Threshold`] so the tables stay `static`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// The resource's utilization category equals the level.
    UtilIs(UtilLevel),
    /// The resource's wait-magnitude category equals the level.
    WaitIs(WaitTimeLevel),
    /// The resource's wait-magnitude category is at least the level.
    WaitAtLeast(WaitTimeLevel),
    /// The resource's wait-percentage category equals the level.
    WaitPctIs(WaitPctLevel),
    /// The latency verdict equals the value.
    LatencyIs(LatencyVerdict),
    /// Utilization and/or waits show a SIGNIFICANT increasing trend.
    Trending,
    /// The resource's (continuous) utilization is at least the threshold.
    UtilAtLeastPct(Threshold),
    /// The resource's (continuous) utilization is at most the threshold.
    UtilAtMostPct(Threshold),
    /// The resource's (continuous) wait share is at least the threshold.
    WaitPctAtLeastPct(Threshold),
    /// Latency rank-correlates (ρ ≥ threshold) with the resource's waits
    /// or utilization (§3.2.2).
    CorrAbove(Threshold),
    /// A policy-level fact holds.
    Is(Fact),
    /// Every sub-predicate holds.
    All(&'static [Predicate]),
    /// At least one sub-predicate holds.
    Any(&'static [Predicate]),
    /// The sub-predicate does not hold.
    Not(&'static Predicate),
    /// Always holds (the fallback rule's condition).
    True,
}

/// Everything a predicate may consult during one evaluation.
///
/// Resource-level predicates need `resource` (and `latency` for the
/// correlation rule); the arbitration table needs only `facts`. A resource
/// predicate evaluated without a resource is vacuously false.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Threshold knobs the `Threshold` guards resolve against.
    pub cfg: &'a EstimatorConfig,
    /// The resource dimension under evaluation, if any.
    pub resource: Option<&'a ResourceSignals>,
    /// Latency signals, if available.
    pub latency: Option<&'a LatencySignals>,
    /// Policy-level facts.
    pub facts: FactSet,
}

impl<'a> EvalCtx<'a> {
    /// Context for evaluating the per-resource demand tables.
    pub fn demand(
        cfg: &'a EstimatorConfig,
        resource: &'a ResourceSignals,
        latency: &'a LatencySignals,
    ) -> Self {
        Self {
            cfg,
            resource: Some(resource),
            latency: Some(latency),
            facts: FactSet::new(),
        }
    }

    /// Context for evaluating the §6 arbitration table.
    pub fn arbitration(cfg: &'a EstimatorConfig, facts: FactSet) -> Self {
        Self {
            cfg,
            resource: None,
            latency: None,
            facts,
        }
    }
}

impl Predicate {
    /// Evaluates the predicate under `ctx`.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> bool {
        match *self {
            Predicate::UtilIs(level) => ctx
                .resource
                .is_some_and(|sig| sig.categories().util == level),
            Predicate::WaitIs(level) => ctx
                .resource
                .is_some_and(|sig| sig.categories().wait == level),
            Predicate::WaitAtLeast(level) => ctx
                .resource
                .is_some_and(|sig| sig.categories().wait >= level),
            Predicate::WaitPctIs(level) => ctx
                .resource
                .is_some_and(|sig| sig.categories().wait_pct == level),
            Predicate::LatencyIs(verdict) => ctx.latency.is_some_and(|l| l.verdict == verdict),
            Predicate::Trending => ctx
                .resource
                .is_some_and(ResourceSignals::increasing_pressure_trend),
            Predicate::UtilAtLeastPct(t) => ctx
                .resource
                .is_some_and(|sig| sig.util_pct >= t.resolve(ctx.cfg)),
            Predicate::UtilAtMostPct(t) => ctx
                .resource
                .is_some_and(|sig| sig.util_pct <= t.resolve(ctx.cfg)),
            Predicate::WaitPctAtLeastPct(t) => ctx
                .resource
                .is_some_and(|sig| sig.wait_pct >= t.resolve(ctx.cfg)),
            Predicate::CorrAbove(t) => ctx
                .resource
                .is_some_and(|sig| sig.latency_correlated(t.resolve(ctx.cfg))),
            Predicate::Is(fact) => ctx.facts.contains(fact),
            Predicate::All(subs) => subs.iter().all(|p| p.eval(ctx)),
            Predicate::Any(subs) => subs.iter().any(|p| p.eval(ctx)),
            Predicate::Not(sub) => !sub.eval(ctx),
            Predicate::True => true,
        }
    }
}

/// One row of a rule table: when `when` holds, the rule fires with `step`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The rule's stable identity.
    pub id: RuleId,
    /// Container-rung step the rule demands (0 for arbitration branches).
    pub step: i8,
    /// The condition.
    pub when: Predicate,
}

/// An ordered rule table evaluated first-match-wins — the §4 hierarchy
/// ("manually constructed hierarchy of rules") as data.
#[derive(Debug, Clone, Copy)]
pub struct RuleTable {
    /// Table name, used by traces and docs.
    pub name: &'static str,
    /// The rules, in priority order.
    pub rules: &'static [Rule],
}

/// Numeric signal values captured when a rule fires, so the explanation
/// can be rendered later without keeping any formatted string.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bindings {
    /// Median utilization % at fire time.
    pub util_pct: f64,
    /// Median wait share % at fire time.
    pub wait_pct: f64,
    /// The correlation threshold in force (for the §3.2.2 rule's text).
    pub corr_threshold: f64,
}

impl Bindings {
    /// Captures the bindings for `sig` under `cfg`.
    pub fn capture(cfg: &EstimatorConfig, sig: &ResourceSignals) -> Self {
        Self {
            util_pct: sig.util_pct,
            wait_pct: sig.wait_pct,
            corr_threshold: cfg.corr_threshold,
        }
    }
}

/// A fired rule: identity, demanded step, and the captured bindings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleFire {
    /// Which rule fired.
    pub id: RuleId,
    /// The step it demands.
    pub step: i8,
    /// Signal values captured at fire time.
    pub bindings: Bindings,
}

impl RuleFire {
    /// Renders the rule's explanation in the paper's categorical
    /// vocabulary — the same wording the seed if-chain emitted, now
    /// *derived* from the structured fire instead of stored.
    pub fn render(&self) -> String {
        let b = &self.bindings;
        match self.id {
            RuleId::HighASurge => format!(
                "utilization {:.0}% HIGH, waits HIGH, {:.0}% of waits SIGNIFICANT, increasing trend",
                b.util_pct, b.wait_pct
            ),
            RuleId::HighA => format!(
                "utilization {:.0}% HIGH, waits HIGH, {:.0}% of waits SIGNIFICANT",
                b.util_pct, b.wait_pct
            ),
            RuleId::HighB => "utilization HIGH, waits HIGH, increasing trend corroborates".into(),
            RuleId::HighC => {
                "utilization HIGH, waits MEDIUM but SIGNIFICANT with increasing trend".into()
            }
            RuleId::HighCorr => format!(
                "latency BAD and rank-correlated (ρ≥{:.1}) with these waits",
                b.corr_threshold
            ),
            RuleId::LowIdle => format!(
                "utilization {:.0}% nearly idle, waits LOW",
                b.util_pct
            ),
            RuleId::Low => format!(
                "utilization {:.0}% LOW, waits LOW, no increasing trend",
                b.util_pct
            ),
            other => other.name().to_string(),
        }
    }
}

/// The result of evaluating one table: which rules were *tried*, in order,
/// and the first that fired (if any) — the raw material of a
/// [`crate::trace::DecisionTrace`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Evaluation {
    /// Rules evaluated, in table order, up to and including the fired one.
    pub evaluated: Vec<RuleId>,
    /// The first rule whose condition held.
    pub fired: Option<RuleFire>,
}

impl RuleTable {
    /// Evaluates the table first-match-wins under `ctx`.
    ///
    /// # Examples
    ///
    /// The §6 arbitration table evaluated over a per-decision fact set —
    /// the first row whose predicate holds wins:
    ///
    /// ```
    /// use dasr_core::rules::{EvalCtx, Fact, FactSet, RuleId, ARBITRATION};
    /// use dasr_core::EstimatorConfig;
    ///
    /// let cfg = EstimatorConfig::default();
    ///
    /// // Scale-up demand with the gate open and no cooldown block…
    /// let facts = FactSet::new()
    ///     .with(Fact::ScaleUpGate, true)
    ///     .with(Fact::DemandUp, true);
    /// let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&cfg, facts));
    /// assert_eq!(eval.fired.map(|f| f.id), Some(RuleId::ScaleUpDemand));
    ///
    /// // …while an empty fact set falls through every branch to the
    /// // catch-all hold row, recording each rule it tried on the way.
    /// let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&cfg, FactSet::new()));
    /// assert_eq!(eval.fired.map(|f| f.id), Some(RuleId::HoldSteady));
    /// assert_eq!(eval.evaluated.len(), 6);
    /// ```
    pub fn evaluate(&self, ctx: &EvalCtx<'_>) -> Evaluation {
        let mut evaluated = Vec::with_capacity(self.rules.len());
        for rule in self.rules {
            evaluated.push(rule.id);
            if rule.when.eval(ctx) {
                let bindings = match ctx.resource {
                    Some(sig) => Bindings::capture(ctx.cfg, sig),
                    None => Bindings {
                        corr_threshold: ctx.cfg.corr_threshold,
                        ..Bindings::default()
                    },
                };
                return Evaluation {
                    evaluated,
                    fired: Some(RuleFire {
                        id: rule.id,
                        step: rule.step,
                        bindings,
                    }),
                };
            }
        }
        Evaluation {
            evaluated,
            fired: None,
        }
    }
}

use Predicate::*;

/// §4.2 high-demand (scale-up) scenarios, in the paper's priority order.
///
/// | row | §4.2 scenario | step |
/// |-----|---------------|------|
/// | [`RuleId::HighASurge`] | (a) at extreme pressure + trend | +2 |
/// | [`RuleId::HighA`] | (a) util HIGH ∧ waits HIGH ∧ share SIGNIFICANT | +1 |
/// | [`RuleId::HighB`] | (b) … share not significant, trend corroborates | +1 |
/// | [`RuleId::HighC`] | (c) waits MEDIUM yet SIGNIFICANT, trending | +1 |
/// | [`RuleId::HighCorr`] | §3.2.2 latency/wait rank correlation | +1 |
pub static HIGH_DEMAND: RuleTable = RuleTable {
    name: "high_demand",
    rules: &[
        Rule {
            id: RuleId::HighASurge,
            step: 2,
            when: All(&[
                UtilIs(UtilLevel::High),
                WaitIs(WaitTimeLevel::High),
                WaitPctIs(WaitPctLevel::Significant),
                UtilAtLeastPct(Threshold::VeryHighUtil),
                WaitPctAtLeastPct(Threshold::DominantWaitPct),
                Trending,
            ]),
        },
        Rule {
            id: RuleId::HighA,
            step: 1,
            when: All(&[
                UtilIs(UtilLevel::High),
                WaitIs(WaitTimeLevel::High),
                WaitPctIs(WaitPctLevel::Significant),
            ]),
        },
        Rule {
            id: RuleId::HighB,
            step: 1,
            when: All(&[
                UtilIs(UtilLevel::High),
                WaitIs(WaitTimeLevel::High),
                Not(&WaitPctIs(WaitPctLevel::Significant)),
                Trending,
            ]),
        },
        Rule {
            id: RuleId::HighC,
            step: 1,
            when: All(&[
                UtilIs(UtilLevel::High),
                WaitIs(WaitTimeLevel::Medium),
                WaitPctIs(WaitPctLevel::Significant),
                Trending,
            ]),
        },
        Rule {
            id: RuleId::HighCorr,
            step: 1,
            when: All(&[
                LatencyIs(LatencyVerdict::Bad),
                WaitPctIs(WaitPctLevel::Significant),
                WaitAtLeast(WaitTimeLevel::Medium),
                CorrAbove(Threshold::CorrThreshold),
            ]),
        },
    ],
};

/// Low-demand (scale-down) rules: the other end of the §4.2 spectrum.
/// Never evaluated for memory — low memory demand needs the §4.3 balloon.
pub static LOW_DEMAND: RuleTable = RuleTable {
    name: "low_demand",
    rules: &[
        Rule {
            id: RuleId::LowIdle,
            step: -2,
            when: All(&[
                UtilIs(UtilLevel::Low),
                WaitIs(WaitTimeLevel::Low),
                Not(&Trending),
                UtilAtMostPct(Threshold::VeryLowUtil),
            ]),
        },
        Rule {
            id: RuleId::Low,
            step: -1,
            when: All(&[
                UtilIs(UtilLevel::Low),
                WaitIs(WaitTimeLevel::Low),
                Not(&Trending),
            ]),
        },
    ],
};

/// The §6 loop's arbitration: which branch handles this interval.
///
/// Evaluated over the per-decision [`FactSet`]; the branch bodies in
/// `policy::auto` then execute the chosen action. Matches the seed
/// control-flow order exactly: cooldown short-circuit, then scale-up, then
/// the Figure 13 explain-only paths, then scale-down, then hold.
pub static ARBITRATION: RuleTable = RuleTable {
    name: "arbitration",
    rules: &[
        Rule {
            id: RuleId::CooldownHold,
            step: 0,
            when: All(&[Is(Fact::UpBlocked), Is(Fact::DownBlocked)]),
        },
        Rule {
            id: RuleId::ScaleUpDemand,
            step: 0,
            when: All(&[
                Is(Fact::ScaleUpGate),
                Is(Fact::DemandUp),
                Not(&Is(Fact::UpBlocked)),
            ]),
        },
        Rule {
            id: RuleId::LockDominated,
            step: 0,
            when: All(&[
                Is(Fact::HasGoal),
                Is(Fact::LatencyAttention),
                Is(Fact::LockShareHigh),
            ]),
        },
        Rule {
            id: RuleId::LatencyBadNoDemand,
            step: 0,
            when: All(&[Is(Fact::HasGoal), Is(Fact::LatencyAttention)]),
        },
        Rule {
            id: RuleId::ScaleDownDemand,
            step: 0,
            when: All(&[Is(Fact::WantsDown), Not(&Is(Fact::DownBlocked))]),
        },
        Rule {
            id: RuleId::HoldSteady,
            step: 0,
            when: True,
        },
    ],
};

/// Per-run counts of rule fires — which rules drove scaling, how often.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuleHistogram {
    counts: [u64; RuleId::COUNT],
}

impl RuleHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; RuleId::COUNT],
        }
    }

    /// Records one fire of `id`.
    pub fn record(&mut self, id: RuleId) {
        self.counts[id.index()] += 1;
    }

    /// Fires recorded for `id`.
    pub fn count(&self, id: RuleId) -> u64 {
        self.counts[id.index()]
    }

    /// Total fires across all rules.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every count from `other`.
    pub fn merge(&mut self, other: &RuleHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// `(rule, count)` pairs with non-zero counts, most-fired first (ties
    /// broken by wire order, so output is deterministic).
    pub fn ranked(&self) -> Vec<(RuleId, u64)> {
        let mut out: Vec<(RuleId, u64)> = RuleId::ALL
            .iter()
            .map(|&id| (id, self.count(id)))
            .filter(|&(_, n)| n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        out
    }
}

impl fmt::Display for RuleHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ranked = self.ranked();
        if ranked.is_empty() {
            return writeln!(f, "  (no rule fires)");
        }
        let total = self.total();
        for (id, n) in ranked {
            writeln!(
                f,
                "  {:<24} {:>8}  ({:>5.1}%)",
                id.name(),
                n,
                n as f64 / total as f64 * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_containers::ResourceKind;
    use dasr_stats::{Trend, TrendDirection};

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    fn latency(verdict: LatencyVerdict) -> LatencySignals {
        LatencySignals {
            observed_ms: Some(100.0),
            goal_ms: Some(50.0),
            verdict,
            trend: Trend::None,
        }
    }

    fn sig(
        util: f64,
        util_level: UtilLevel,
        wait_level: WaitTimeLevel,
        pct: f64,
        pct_level: WaitPctLevel,
    ) -> ResourceSignals {
        ResourceSignals {
            kind: ResourceKind::Cpu,
            util_pct: util,
            util_level,
            wait_ms: 1_000.0,
            wait_level,
            wait_pct: pct,
            wait_pct_level: pct_level,
            util_trend: Trend::None,
            wait_trend: Trend::None,
            corr_latency_wait: None,
            corr_latency_util: None,
        }
    }

    fn up() -> Trend {
        Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: 1.0,
            agreement: 0.8,
        }
    }

    #[test]
    fn rule_ids_round_trip_names() {
        for id in RuleId::ALL {
            assert_eq!(RuleId::from_name(id.name()), Some(id));
        }
        assert_eq!(RuleId::from_name("nonsense"), None);
        // Dense indexing covers 0..COUNT exactly once.
        let mut seen = [false; RuleId::COUNT];
        for id in RuleId::ALL {
            assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
    }

    #[test]
    fn scenario_a_fires_high_a() {
        let s = sig(
            80.0,
            UtilLevel::High,
            WaitTimeLevel::High,
            50.0,
            WaitPctLevel::Significant,
        );
        let lat = latency(LatencyVerdict::Good);
        let eval = HIGH_DEMAND.evaluate(&EvalCtx::demand(&cfg(), &s, &lat));
        let fire = eval.fired.unwrap();
        assert_eq!(fire.id, RuleId::HighA);
        assert_eq!(fire.step, 1);
        assert_eq!(
            eval.evaluated,
            vec![RuleId::HighASurge, RuleId::HighA],
            "first-match stops the scan"
        );
        assert!(fire.render().contains("80% HIGH"));
    }

    #[test]
    fn surge_outranks_plain_a() {
        let mut s = sig(
            95.0,
            UtilLevel::High,
            WaitTimeLevel::High,
            85.0,
            WaitPctLevel::Significant,
        );
        s.wait_trend = up();
        let lat = latency(LatencyVerdict::Good);
        let eval = HIGH_DEMAND.evaluate(&EvalCtx::demand(&cfg(), &s, &lat));
        assert_eq!(eval.fired.unwrap().id, RuleId::HighASurge);
        assert_eq!(eval.fired.unwrap().step, 2);
    }

    #[test]
    fn no_fire_scans_whole_table() {
        let s = sig(
            40.0,
            UtilLevel::Medium,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        let lat = latency(LatencyVerdict::Good);
        let eval = HIGH_DEMAND.evaluate(&EvalCtx::demand(&cfg(), &s, &lat));
        assert!(eval.fired.is_none());
        assert_eq!(eval.evaluated.len(), HIGH_DEMAND.rules.len());
    }

    #[test]
    fn low_demand_depth() {
        let lat = latency(LatencyVerdict::Good);
        let s = sig(
            20.0,
            UtilLevel::Low,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        let eval = LOW_DEMAND.evaluate(&EvalCtx::demand(&cfg(), &s, &lat));
        assert_eq!(eval.fired.unwrap().id, RuleId::Low);
        let idle = sig(
            3.0,
            UtilLevel::Low,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        let eval = LOW_DEMAND.evaluate(&EvalCtx::demand(&cfg(), &idle, &lat));
        assert_eq!(eval.fired.unwrap().id, RuleId::LowIdle);
        assert_eq!(eval.fired.unwrap().step, -2);
    }

    #[test]
    fn arbitration_branch_priority() {
        let c = cfg();
        // Both directions blocked: cooldown wins over everything.
        let facts = FactSet::new()
            .with(Fact::UpBlocked, true)
            .with(Fact::DownBlocked, true)
            .with(Fact::ScaleUpGate, true)
            .with(Fact::DemandUp, true);
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&c, facts));
        assert_eq!(eval.fired.unwrap().id, RuleId::CooldownHold);
        // Open gate + demand: scale up.
        let facts = FactSet::new()
            .with(Fact::ScaleUpGate, true)
            .with(Fact::DemandUp, true);
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&c, facts));
        assert_eq!(eval.fired.unwrap().id, RuleId::ScaleUpDemand);
        // Bad latency without demand: lock dominance splits the explain
        // path.
        let base = FactSet::new()
            .with(Fact::HasGoal, true)
            .with(Fact::LatencyAttention, true);
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&c, base));
        assert_eq!(eval.fired.unwrap().id, RuleId::LatencyBadNoDemand);
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(
            &c,
            base.with(Fact::LockShareHigh, true),
        ));
        assert_eq!(eval.fired.unwrap().id, RuleId::LockDominated);
        // Nothing at all: hold.
        let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&c, FactSet::new()));
        assert_eq!(eval.fired.unwrap().id, RuleId::HoldSteady);
        assert_eq!(eval.evaluated.len(), ARBITRATION.rules.len());
    }

    #[test]
    fn histogram_ranks_and_merges() {
        let mut h = RuleHistogram::new();
        h.record(RuleId::HighA);
        h.record(RuleId::HighA);
        h.record(RuleId::Low);
        let mut other = RuleHistogram::new();
        other.record(RuleId::Low);
        other.record(RuleId::BalloonStart);
        h.merge(&other);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(RuleId::HighA), 2);
        assert_eq!(h.count(RuleId::Low), 2);
        let ranked = h.ranked();
        assert_eq!(ranked[0].0, RuleId::HighA, "wire order breaks the tie");
        assert_eq!(ranked[1].0, RuleId::Low);
        assert_eq!(ranked[2], (RuleId::BalloonStart, 1));
        let shown = h.to_string();
        assert!(shown.contains("high_a") && shown.contains("40.0%"));
    }

    #[test]
    fn fact_set_round_trip() {
        let facts = FactSet::new()
            .with(Fact::HasGoal, true)
            .with(Fact::Emergency, false)
            .with(Fact::WantsDown, true);
        assert!(facts.contains(Fact::HasGoal));
        assert!(!facts.contains(Fact::Emergency));
        let listed: Vec<Fact> = facts.iter().collect();
        assert_eq!(listed, vec![Fact::HasGoal, Fact::WantsDown]);
    }
}
