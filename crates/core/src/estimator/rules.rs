//! The rule hierarchy over categorized signals (§4.2, §4.3).
//!
//! High-demand scenarios (scale-up), quoted from the paper:
//!
//! - **(a)** utilization HIGH and wait times HIGH with SIGNIFICANT
//!   percentage waits;
//! - **(b)** utilization HIGH, wait times HIGH, percentage waits NOT
//!   SIGNIFICANT, and a SIGNIFICANT increasing trend in utilization and/or
//!   waits;
//! - **(c)** utilization HIGH, wait times MEDIUM, percentage waits
//!   SIGNIFICANT, and a SIGNIFICANT increasing trend;
//! - **(corr)** latency BAD with waits that are SIGNIFICANT and strongly
//!   rank-correlated with latency (the §3.2.2 bottleneck-identification
//!   signal).
//!
//! Every scenario combines two or more signals; when one signal is weak the
//! rules demand corroboration — the crux of turning weakly-predictive
//! signals into an accurate estimate.
//!
//! Low-demand rules test the other end of the spectrum: LOW utilization,
//! LOW waits, and *no* increasing trend.
//!
//! **Legacy oracle.** The production path no longer calls these if-chains:
//! [`DemandEstimator::estimate`](crate::estimator::DemandEstimator::estimate)
//! evaluates the declarative tables in [`crate::rules`] instead. This module
//! is kept verbatim as the reference implementation the decision-equivalence
//! test (`crates/core/tests/decision_equivalence.rs`) pins the tables
//! against, bit-for-bit. Change the rules in `crate::rules`, then mirror the
//! change here so the oracle stays meaningful.

use crate::estimator::EstimatorConfig;
use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
use dasr_telemetry::signals::{LatencySignals, ResourceSignals};

/// Returns the scale-up step and the rule description when a high-demand
/// scenario fires for this resource.
pub fn high_demand(
    cfg: &EstimatorConfig,
    sig: &ResourceSignals,
    latency: &LatencySignals,
) -> Option<(i8, String)> {
    let util_high = sig.util_level == UtilLevel::High;
    let wait_high = sig.wait_level == WaitTimeLevel::High;
    let wait_med = sig.wait_level == WaitTimeLevel::Medium;
    let pct_sig = sig.wait_pct_level == WaitPctLevel::Significant;
    let trending = sig.increasing_pressure_trend();

    // Scenario (a).
    if util_high && wait_high && pct_sig {
        // Extreme pressure with corroborating trend: jump two rungs (§4:
        // 2-step changes are ~8% of real changes).
        if sig.util_pct >= cfg.very_high_util_pct
            && sig.wait_pct >= cfg.dominant_wait_pct
            && trending
        {
            return Some((
                2,
                format!(
                    "utilization {:.0}% HIGH, waits HIGH, {:.0}% of waits SIGNIFICANT, increasing trend",
                    sig.util_pct, sig.wait_pct
                ),
            ));
        }
        return Some((
            1,
            format!(
                "utilization {:.0}% HIGH, waits HIGH, {:.0}% of waits SIGNIFICANT",
                sig.util_pct, sig.wait_pct
            ),
        ));
    }

    // Scenario (b).
    if util_high && wait_high && !pct_sig && trending {
        return Some((
            1,
            "utilization HIGH, waits HIGH, increasing trend corroborates".to_string(),
        ));
    }

    // Scenario (c).
    if util_high && wait_med && pct_sig && trending {
        return Some((
            1,
            "utilization HIGH, waits MEDIUM but SIGNIFICANT with increasing trend".to_string(),
        ));
    }

    // Correlation rule: latency is bad and strongly tracks this resource's
    // waits — the bottleneck even if utilization is not yet HIGH.
    if latency.verdict == LatencyVerdict::Bad
        && pct_sig
        && sig.wait_level >= WaitTimeLevel::Medium
        && sig.latency_correlated(cfg.corr_threshold)
    {
        return Some((
            1,
            format!(
                "latency BAD and rank-correlated (ρ≥{:.1}) with these waits",
                cfg.corr_threshold
            ),
        ));
    }

    None
}

/// Returns the scale-down step and rule description when demand for this
/// resource is low. Never called for memory (§4.3: ballooning).
pub fn low_demand(cfg: &EstimatorConfig, sig: &ResourceSignals) -> Option<(i8, String)> {
    let util_low = sig.util_level == UtilLevel::Low;
    let wait_low = sig.wait_level == WaitTimeLevel::Low;
    if util_low && wait_low && sig.no_increasing_trend() {
        if sig.util_pct <= cfg.very_low_util_pct {
            return Some((
                -2,
                format!("utilization {:.0}% nearly idle, waits LOW", sig.util_pct),
            ));
        }
        return Some((
            -1,
            format!(
                "utilization {:.0}% LOW, waits LOW, no increasing trend",
                sig.util_pct
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_containers::ResourceKind;
    use dasr_stats::{Trend, TrendDirection};

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    fn latency(verdict: LatencyVerdict) -> LatencySignals {
        LatencySignals {
            observed_ms: Some(100.0),
            goal_ms: Some(50.0),
            verdict,
            trend: Trend::None,
        }
    }

    fn sig(
        util: f64,
        util_level: UtilLevel,
        wait_level: WaitTimeLevel,
        pct: f64,
        pct_level: WaitPctLevel,
    ) -> ResourceSignals {
        ResourceSignals {
            kind: ResourceKind::Cpu,
            util_pct: util,
            util_level,
            wait_ms: 1_000.0,
            wait_level,
            wait_pct: pct,
            wait_pct_level: pct_level,
            util_trend: Trend::None,
            wait_trend: Trend::None,
            corr_latency_wait: None,
            corr_latency_util: None,
        }
    }

    fn up() -> Trend {
        Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: 1.0,
            agreement: 0.8,
        }
    }

    #[test]
    fn single_weak_signal_never_fires() {
        // Utilization HIGH alone is not demand (§1's central claim).
        let s = sig(
            85.0,
            UtilLevel::High,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        assert!(high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).is_none());
        // Waits HIGH alone (low utilization) is not demand either.
        let s = sig(
            10.0,
            UtilLevel::Low,
            WaitTimeLevel::High,
            80.0,
            WaitPctLevel::Significant,
        );
        assert!(high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).is_none());
    }

    #[test]
    fn scenario_a() {
        let s = sig(
            80.0,
            UtilLevel::High,
            WaitTimeLevel::High,
            50.0,
            WaitPctLevel::Significant,
        );
        let (step, rule) = high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).unwrap();
        assert_eq!(step, 1);
        assert!(rule.contains("SIGNIFICANT"));
    }

    #[test]
    fn scenario_b_needs_trend() {
        let mut s = sig(
            80.0,
            UtilLevel::High,
            WaitTimeLevel::High,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        assert!(high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).is_none());
        s.util_trend = up();
        assert_eq!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Good))
                .unwrap()
                .0,
            1
        );
    }

    #[test]
    fn scenario_c_needs_trend_and_significance() {
        let mut s = sig(
            80.0,
            UtilLevel::High,
            WaitTimeLevel::Medium,
            60.0,
            WaitPctLevel::Significant,
        );
        assert!(high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).is_none());
        s.wait_trend = up();
        assert_eq!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Good))
                .unwrap()
                .0,
            1
        );
        // Without significance the medium-wait path must not fire.
        let mut weak = sig(
            80.0,
            UtilLevel::High,
            WaitTimeLevel::Medium,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        weak.wait_trend = up();
        assert!(high_demand(&cfg(), &weak, &latency(LatencyVerdict::Good)).is_none());
    }

    #[test]
    fn two_step_requires_everything_extreme() {
        let mut s = sig(
            95.0,
            UtilLevel::High,
            WaitTimeLevel::High,
            85.0,
            WaitPctLevel::Significant,
        );
        // No trend yet: only 1 step.
        assert_eq!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Good))
                .unwrap()
                .0,
            1
        );
        s.wait_trend = up();
        assert_eq!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Good))
                .unwrap()
                .0,
            2
        );
    }

    #[test]
    fn correlation_rule() {
        let mut s = sig(
            50.0,
            UtilLevel::Medium,
            WaitTimeLevel::Medium,
            70.0,
            WaitPctLevel::Significant,
        );
        s.corr_latency_wait = Some(0.9);
        assert!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Good)).is_none(),
            "latency good"
        );
        assert_eq!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Bad))
                .unwrap()
                .0,
            1
        );
        s.corr_latency_wait = Some(0.3);
        assert!(
            high_demand(&cfg(), &s, &latency(LatencyVerdict::Bad)).is_none(),
            "weak correlation"
        );
    }

    #[test]
    fn low_demand_rules() {
        let s = sig(
            20.0,
            UtilLevel::Low,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        assert_eq!(low_demand(&cfg(), &s).unwrap().0, -1);
        let s = sig(
            3.0,
            UtilLevel::Low,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        assert_eq!(low_demand(&cfg(), &s).unwrap().0, -2);
        let mut trending = sig(
            20.0,
            UtilLevel::Low,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        trending.wait_trend = up();
        assert!(low_demand(&cfg(), &trending).is_none());
        let busy = sig(
            50.0,
            UtilLevel::Medium,
            WaitTimeLevel::Low,
            5.0,
            WaitPctLevel::NotSignificant,
        );
        assert!(low_demand(&cfg(), &busy).is_none());
    }
}
