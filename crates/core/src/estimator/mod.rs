//! The Resource Demand Estimator (§4).
//!
//! Each telemetry signal is at best weakly predictive; the estimator
//! combines them with a manually constructed hierarchy of rules over the
//! *categorized* signal domain. Per resource dimension it outputs a step in
//! `{-2, -1, 0, +1, +2}` container rungs — the fleet analysis (§4, `dasr-
//! fleet`) shows 98% of real demand changes are within two rungs, which is
//! why the estimate space is restricted.

pub mod memory;
pub mod rules;

pub use memory::{BalloonConfig, BalloonController};

use crate::rules::{EvalCtx, RuleFire, RuleId, HIGH_DEMAND, LOW_DEMAND};
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_telemetry::SignalSet;

/// Estimator tuning.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Spearman ρ above which latency is considered correlated with a
    /// resource's waits/utilization (§3.2.2).
    pub corr_threshold: f64,
    /// Utilization at or above this marks extreme pressure, enabling
    /// 2-step scale-ups.
    pub very_high_util_pct: f64,
    /// Utilization at or below this enables 2-step scale-downs.
    pub very_low_util_pct: f64,
    /// Wait percentage at or above this marks overwhelming dominance,
    /// enabling 2-step scale-ups.
    pub dominant_wait_pct: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            corr_threshold: 0.6,
            very_high_util_pct: 90.0,
            very_low_util_pct: 5.0,
            dominant_wait_pct: 70.0,
        }
    }
}

/// Demand estimate for one resource dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDemand {
    /// The resource.
    pub kind: ResourceKind,
    /// Container-rung step: positive = scale up, negative = scale down.
    pub step: i8,
    /// The rule that fired (`None` when no rule fired). The explanation
    /// text is rendered from this on demand — see
    /// [`ResourceDemand::rule_text`].
    pub rule: Option<RuleFire>,
    /// Every rule evaluated for this dimension, in table order (high-demand
    /// table first, then — for non-memory dimensions without a high fire —
    /// the low-demand table).
    pub evaluated: Vec<RuleId>,
}

impl ResourceDemand {
    /// The fired rule's explanation in the paper's categorical vocabulary,
    /// rendered from the structured [`RuleFire`].
    pub fn rule_text(&self) -> Option<String> {
        self.rule.as_ref().map(RuleFire::render)
    }
}

/// The estimator's output for one decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandEstimate {
    /// Per-resource demand (order of `RESOURCE_KINDS`).
    pub demands: [ResourceDemand; RESOURCE_KINDS.len()],
}

impl DemandEstimate {
    /// Demand for one resource.
    pub fn demand(&self, kind: ResourceKind) -> &ResourceDemand {
        &self.demands[kind.index()]
    }

    /// True when any dimension wants to scale up.
    pub fn any_up(&self) -> bool {
        self.demands.iter().any(|d| d.step > 0)
    }

    /// True when any dimension wants to scale down.
    pub fn any_down(&self) -> bool {
        self.demands.iter().any(|d| d.step < 0)
    }

    /// Maps every dimension's demand through `f`, in `RESOURCE_KINDS`
    /// order — the single projection all the step/resource views below are
    /// built on.
    pub fn per_resource<T>(
        &self,
        mut f: impl FnMut(&ResourceDemand) -> T,
    ) -> [T; RESOURCE_KINDS.len()] {
        std::array::from_fn(|i| f(&self.demands[i]))
    }

    /// The raw steps, one per dimension.
    pub fn steps(&self) -> [i8; RESOURCE_KINDS.len()] {
        self.per_resource(|d| d.step)
    }

    /// The positive steps only (negatives clamped to 0) — used when the
    /// latency gate only permits scaling up.
    pub fn up_steps(&self) -> [i8; RESOURCE_KINDS.len()] {
        self.per_resource(|d| d.step.max(0))
    }

    /// The negative steps only (positives clamped to 0).
    pub fn down_steps(&self) -> [i8; RESOURCE_KINDS.len()] {
        self.per_resource(|d| d.step.min(0))
    }

    /// Resources with positive demand.
    pub fn up_resources(&self) -> Vec<ResourceKind> {
        self.per_resource(|d| (d.step > 0).then_some(d.kind))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Resources with negative demand.
    pub fn down_resources(&self) -> Vec<ResourceKind> {
        self.per_resource(|d| (d.step < 0).then_some(d.kind))
            .into_iter()
            .flatten()
            .collect()
    }

    /// True when every dimension *except memory* has low (negative) demand
    /// — the §4.3 precondition for triggering a balloon probe.
    pub fn others_low_for_balloon(&self) -> bool {
        self.demands
            .iter()
            .filter(|d| d.kind != ResourceKind::Memory)
            .all(|d| d.step < 0)
    }
}

/// The rule-based demand estimator (§4).
#[derive(Debug, Clone, Default)]
pub struct DemandEstimator {
    cfg: EstimatorConfig,
}

impl DemandEstimator {
    /// Creates an estimator.
    pub fn new(cfg: EstimatorConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Estimates per-resource demand from the signal set by evaluating the
    /// declarative rule tables ([`HIGH_DEMAND`], then [`LOW_DEMAND`])
    /// first-match-wins per dimension.
    ///
    /// Memory never receives a negative step here: low memory demand cannot
    /// be inferred from utilization and waits alone (§4.3) and is instead
    /// confirmed by the [`BalloonController`]. The low-demand table is
    /// therefore skipped for the memory dimension.
    pub fn estimate(&self, signals: &SignalSet) -> DemandEstimate {
        let demands = RESOURCE_KINDS.map(|kind| {
            let sig = signals.resource(kind);
            let ctx = EvalCtx::demand(&self.cfg, sig, &signals.latency);
            let mut eval = HIGH_DEMAND.evaluate(&ctx);
            if eval.fired.is_none() && kind != ResourceKind::Memory {
                let low = LOW_DEMAND.evaluate(&ctx);
                eval.evaluated.extend(low.evaluated);
                eval.fired = low.fired;
            }
            ResourceDemand {
                kind,
                step: eval.fired.map_or(0, |f| f.step),
                rule: eval.fired,
                evaluated: eval.evaluated,
            }
        });
        DemandEstimate { demands }
    }
}

/// Shared signal-set constructors for tests across the crate.
#[cfg(test)]
pub(crate) mod tests_support {
    use dasr_containers::{ResourceKind, RESOURCE_KINDS};
    use dasr_stats::Trend;
    use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
    use dasr_telemetry::signals::{LatencySignals, ResourceSignals};
    use dasr_telemetry::SignalSet;

    /// A calm resource-signal row.
    pub fn quiet_resource(kind: ResourceKind) -> ResourceSignals {
        ResourceSignals {
            kind,
            util_pct: 40.0,
            util_level: UtilLevel::Medium,
            wait_ms: 50.0,
            wait_level: WaitTimeLevel::Low,
            wait_pct: 5.0,
            wait_pct_level: WaitPctLevel::NotSignificant,
            util_trend: Trend::None,
            wait_trend: Trend::None,
            corr_latency_wait: None,
            corr_latency_util: None,
        }
    }

    /// A calm full signal set.
    pub fn quiet_signal_set(interval: u64) -> SignalSet {
        SignalSet {
            interval,
            resources: RESOURCE_KINDS.map(quiet_resource),
            latency: LatencySignals {
                observed_ms: Some(50.0),
                goal_ms: Some(100.0),
                verdict: LatencyVerdict::Good,
                trend: Trend::None,
            },
            lock_wait_pct: 5.0,
            latch_wait_pct: 0.0,
            other_wait_pct: 5.0,
            total_wait_ms: 1_000.0,
            mem_used_mb: 500.0,
            mem_capacity_mb: 1_000.0,
            disk_reads_per_sec: 10.0,
            completed: 1_000,
            rejected: 0,
        }
    }

    /// Calm signal set with explicit interval, disk I/O rate and pool size.
    pub fn signal_set_with_io(interval: u64, reads_per_sec: f64, capacity_mb: f64) -> SignalSet {
        let mut s = quiet_signal_set(interval);
        s.disk_reads_per_sec = reads_per_sec;
        s.mem_capacity_mb = capacity_mb;
        s.mem_used_mb = capacity_mb * 0.9;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_stats::{Trend, TrendDirection};
    use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
    use dasr_telemetry::signals::{LatencySignals, ResourceSignals};

    pub(crate) fn quiet_resource(kind: ResourceKind) -> ResourceSignals {
        ResourceSignals {
            kind,
            util_pct: 40.0,
            util_level: UtilLevel::Medium,
            wait_ms: 50.0,
            wait_level: WaitTimeLevel::Low,
            wait_pct: 5.0,
            wait_pct_level: WaitPctLevel::NotSignificant,
            util_trend: Trend::None,
            wait_trend: Trend::None,
            corr_latency_wait: None,
            corr_latency_util: None,
        }
    }

    pub(crate) fn signal_set(resources: [ResourceSignals; 4]) -> SignalSet {
        SignalSet {
            interval: 0,
            resources,
            latency: LatencySignals {
                observed_ms: Some(50.0),
                goal_ms: Some(100.0),
                verdict: LatencyVerdict::Good,
                trend: Trend::None,
            },
            lock_wait_pct: 5.0,
            latch_wait_pct: 0.0,
            other_wait_pct: 5.0,
            total_wait_ms: 1_000.0,
            mem_used_mb: 500.0,
            mem_capacity_mb: 1_000.0,
            disk_reads_per_sec: 10.0,
            completed: 1_000,
            rejected: 0,
        }
    }

    fn default_signals() -> SignalSet {
        signal_set([
            quiet_resource(ResourceKind::Cpu),
            quiet_resource(ResourceKind::Memory),
            quiet_resource(ResourceKind::DiskIo),
            quiet_resource(ResourceKind::LogIo),
        ])
    }

    fn increasing() -> Trend {
        Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: 1.0,
            agreement: 0.9,
        }
    }

    #[test]
    fn quiet_system_is_zero_steps() {
        let est = DemandEstimator::default();
        let e = est.estimate(&default_signals());
        assert!(!e.any_up());
        assert!(!e.any_down());
    }

    #[test]
    fn scenario_a_fires_one_step() {
        // §4.2(a): util HIGH, waits HIGH, pct SIGNIFICANT.
        let mut s = default_signals();
        let cpu = &mut s.resources[ResourceKind::Cpu.index()];
        cpu.util_pct = 80.0;
        cpu.util_level = UtilLevel::High;
        cpu.wait_level = WaitTimeLevel::High;
        cpu.wait_pct = 55.0;
        cpu.wait_pct_level = WaitPctLevel::Significant;
        let e = DemandEstimator::default().estimate(&s);
        assert_eq!(e.demand(ResourceKind::Cpu).step, 1);
        assert!(e
            .demand(ResourceKind::Cpu)
            .rule_text()
            .unwrap()
            .contains("HIGH"));
        assert_eq!(e.demand(ResourceKind::DiskIo).step, 0);
    }

    #[test]
    fn extreme_pressure_fires_two_steps() {
        let mut s = default_signals();
        let cpu = &mut s.resources[ResourceKind::Cpu.index()];
        cpu.util_pct = 97.0;
        cpu.util_level = UtilLevel::High;
        cpu.wait_level = WaitTimeLevel::High;
        cpu.wait_pct = 85.0;
        cpu.wait_pct_level = WaitPctLevel::Significant;
        cpu.wait_trend = increasing();
        let e = DemandEstimator::default().estimate(&s);
        assert_eq!(e.demand(ResourceKind::Cpu).step, 2);
    }

    #[test]
    fn scenario_b_requires_trend() {
        // util HIGH, waits HIGH, pct NOT significant: only with a trend.
        let mut s = default_signals();
        {
            let cpu = &mut s.resources[ResourceKind::Cpu.index()];
            cpu.util_pct = 85.0;
            cpu.util_level = UtilLevel::High;
            cpu.wait_level = WaitTimeLevel::High;
            cpu.wait_pct = 10.0;
            cpu.wait_pct_level = WaitPctLevel::NotSignificant;
        }
        let est = DemandEstimator::default();
        assert_eq!(est.estimate(&s).demand(ResourceKind::Cpu).step, 0);
        s.resources[ResourceKind::Cpu.index()].util_trend = increasing();
        assert_eq!(est.estimate(&s).demand(ResourceKind::Cpu).step, 1);
    }

    #[test]
    fn scenario_c_medium_waits_with_trend() {
        let mut s = default_signals();
        {
            let disk = &mut s.resources[ResourceKind::DiskIo.index()];
            disk.util_pct = 75.0;
            disk.util_level = UtilLevel::High;
            disk.wait_level = WaitTimeLevel::Medium;
            disk.wait_pct = 60.0;
            disk.wait_pct_level = WaitPctLevel::Significant;
        }
        let est = DemandEstimator::default();
        assert_eq!(est.estimate(&s).demand(ResourceKind::DiskIo).step, 0);
        s.resources[ResourceKind::DiskIo.index()].wait_trend = increasing();
        assert_eq!(est.estimate(&s).demand(ResourceKind::DiskIo).step, 1);
    }

    #[test]
    fn correlation_rule_needs_bad_latency() {
        let mut s = default_signals();
        {
            let log = &mut s.resources[ResourceKind::LogIo.index()];
            log.util_level = UtilLevel::Medium;
            log.wait_level = WaitTimeLevel::Medium;
            log.wait_pct = 70.0;
            log.wait_pct_level = WaitPctLevel::Significant;
            log.corr_latency_wait = Some(0.85);
        }
        let est = DemandEstimator::default();
        assert_eq!(est.estimate(&s).demand(ResourceKind::LogIo).step, 0);
        s.latency.verdict = LatencyVerdict::Bad;
        let e = est.estimate(&s);
        assert_eq!(e.demand(ResourceKind::LogIo).step, 1);
        assert!(e
            .demand(ResourceKind::LogIo)
            .rule_text()
            .unwrap()
            .contains("correlat"));
    }

    #[test]
    fn low_demand_scales_down_but_not_memory() {
        let mut s = default_signals();
        for kind in RESOURCE_KINDS {
            let r = &mut s.resources[kind.index()];
            r.util_pct = 8.0;
            r.util_level = UtilLevel::Low;
            r.wait_level = WaitTimeLevel::Low;
        }
        let e = DemandEstimator::default().estimate(&s);
        assert!(e.demand(ResourceKind::Cpu).step < 0);
        assert!(e.demand(ResourceKind::DiskIo).step < 0);
        assert_eq!(
            e.demand(ResourceKind::Memory).step,
            0,
            "memory scale-down only via ballooning (§4.3)"
        );
        assert!(e.others_low_for_balloon());
    }

    #[test]
    fn very_low_utilization_steps_down_two() {
        let mut s = default_signals();
        let cpu = &mut s.resources[ResourceKind::Cpu.index()];
        cpu.util_pct = 2.0;
        cpu.util_level = UtilLevel::Low;
        cpu.wait_level = WaitTimeLevel::Low;
        let e = DemandEstimator::default().estimate(&s);
        assert_eq!(e.demand(ResourceKind::Cpu).step, -2);
    }

    #[test]
    fn increasing_trend_blocks_scale_down() {
        let mut s = default_signals();
        let cpu = &mut s.resources[ResourceKind::Cpu.index()];
        cpu.util_pct = 10.0;
        cpu.util_level = UtilLevel::Low;
        cpu.wait_level = WaitTimeLevel::Low;
        cpu.util_trend = increasing();
        let e = DemandEstimator::default().estimate(&s);
        assert_eq!(
            e.demand(ResourceKind::Cpu).step,
            0,
            "early warning respected"
        );
    }

    #[test]
    fn step_vectors() {
        let mut s = default_signals();
        {
            let cpu = &mut s.resources[ResourceKind::Cpu.index()];
            cpu.util_pct = 85.0;
            cpu.util_level = UtilLevel::High;
            cpu.wait_level = WaitTimeLevel::High;
            cpu.wait_pct_level = WaitPctLevel::Significant;
            cpu.wait_pct = 60.0;
        }
        {
            let disk = &mut s.resources[ResourceKind::DiskIo.index()];
            disk.util_pct = 3.0;
            disk.util_level = UtilLevel::Low;
            disk.wait_level = WaitTimeLevel::Low;
        }
        let e = DemandEstimator::default().estimate(&s);
        assert_eq!(e.up_steps(), [1, 0, 0, 0]);
        assert_eq!(e.down_steps(), [0, 0, -2, 0]);
        assert_eq!(e.up_resources(), vec![ResourceKind::Cpu]);
        assert_eq!(e.down_resources(), vec![ResourceKind::DiskIo]);
    }
}
