//! The ballooning controller for low-memory-demand detection (§4.3).
//!
//! Memory utilization is rarely LOW (caches never volunteer memory back)
//! and memory waits are LOW whenever the working set fits — so neither
//! signal distinguishes *low demand* from *satisfied demand*. Inspired by
//! VM ballooning, the controller slowly deflates the buffer pool toward the
//! next smaller container's memory and watches disk I/O:
//!
//! - I/O stays flat → the working set still fits → demand really is low →
//!   **commit** (the container's memory can be reduced);
//! - I/O rises → the working set no longer fits → **abort** and restore,
//!   with only a bounded latency blip (Figure 14).
//!
//! Probes start only when demand for *all other* resources is low, which
//! minimizes the risk of hurting latency.

use dasr_telemetry::SignalSet;

/// Balloon-controller tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalloonConfig {
    /// Abort when disk reads/s exceed `baseline × factor + floor`.
    pub io_rise_factor: f64,
    /// Absolute slack added to the abort threshold, reads/s.
    pub io_rise_floor: f64,
    /// Intervals to wait after an abort before probing again.
    pub retry_after_intervals: u64,
    /// Minimum completed requests per interval for the probe's I/O signal
    /// to mean anything: an idle tenant generates no misses, so a probe
    /// that "succeeds" at idle proves nothing and would set a memory trap
    /// for the next burst.
    pub min_completed: u64,
}

impl Default for BalloonConfig {
    fn default() -> Self {
        Self {
            io_rise_factor: 1.5,
            io_rise_floor: 10.0,
            retry_after_intervals: 30,
            min_completed: 60,
        }
    }
}

/// What the policy should tell the engine to do with the balloon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BalloonAction {
    /// Nothing.
    None,
    /// Start deflating toward `target_mb`.
    Start {
        /// Target container memory, MB.
        target_mb: f64,
    },
    /// Abort and restore the full pool.
    Abort,
    /// Probe complete: memory demand confirmed low; the container's memory
    /// may be reduced.
    Commit,
}

/// Source-side balloon status, supplied by the runner's
/// [`TelemetrySource`](dasr_telemetry::TelemetrySource). The canonical
/// definition lives on the telemetry side of the seam as
/// [`dasr_telemetry::ProbeStatus`]; this alias keeps the controller's
/// historical vocabulary.
pub use dasr_telemetry::ProbeStatus as BalloonProbe;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Idle,
    Probing { baseline_io: f64 },
}

/// The §4.3 controller.
#[derive(Debug, Clone)]
pub struct BalloonController {
    cfg: BalloonConfig,
    state: State,
    last_abort_interval: Option<u64>,
}

impl Default for BalloonController {
    fn default() -> Self {
        Self::new(BalloonConfig::default())
    }
}

impl BalloonController {
    /// Creates a controller.
    pub fn new(cfg: BalloonConfig) -> Self {
        Self {
            cfg,
            state: State::Idle,
            last_abort_interval: None,
        }
    }

    /// True while a probe is underway.
    pub fn probing(&self) -> bool {
        matches!(self.state, State::Probing { .. })
    }

    /// Advances the controller one interval.
    ///
    /// - `signals` — current telemetry;
    /// - `others_low` — every non-memory resource has low demand (§4.3's
    ///   trigger condition);
    /// - `target_mb` — the next smaller container's memory, when one exists;
    /// - `probe` — the engine's balloon status.
    pub fn step(
        &mut self,
        signals: &SignalSet,
        others_low: bool,
        target_mb: Option<f64>,
        probe: BalloonProbe,
    ) -> BalloonAction {
        match self.state {
            State::Idle => {
                let cooled = self
                    .last_abort_interval
                    .is_none_or(|at| signals.interval >= at + self.cfg.retry_after_intervals);
                let active_enough = signals.completed >= self.cfg.min_completed;
                if others_low && cooled && active_enough && probe == BalloonProbe::Inactive {
                    if let Some(target_mb) = target_mb {
                        // Only probe when the target is actually smaller
                        // than what the pool currently holds.
                        if target_mb < signals.mem_capacity_mb {
                            self.state = State::Probing {
                                baseline_io: signals.disk_reads_per_sec,
                            };
                            return BalloonAction::Start { target_mb };
                        }
                    }
                }
                BalloonAction::None
            }
            State::Probing { baseline_io } => {
                if signals.completed < self.cfg.min_completed {
                    // Traffic died mid-probe: the I/O signal is
                    // meaningless. Restore and try again later.
                    self.state = State::Idle;
                    self.last_abort_interval = Some(signals.interval);
                    return BalloonAction::Abort;
                }
                let threshold = baseline_io * self.cfg.io_rise_factor + self.cfg.io_rise_floor;
                if signals.disk_reads_per_sec > threshold {
                    self.state = State::Idle;
                    self.last_abort_interval = Some(signals.interval);
                    return BalloonAction::Abort;
                }
                if probe
                    == (BalloonProbe::Active {
                        reached_target: true,
                    })
                {
                    self.state = State::Idle;
                    return BalloonAction::Commit;
                }
                BalloonAction::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::tests_support::signal_set_with_io;

    fn controller() -> BalloonController {
        BalloonController::default()
    }

    #[test]
    fn starts_probe_when_others_low() {
        let mut c = controller();
        let s = signal_set_with_io(0, 20.0, 2_048.0);
        let a = c.step(&s, true, Some(1_024.0), BalloonProbe::Inactive);
        assert_eq!(a, BalloonAction::Start { target_mb: 1_024.0 });
        assert!(c.probing());
    }

    #[test]
    fn does_not_start_when_others_busy_or_no_target() {
        let mut c = controller();
        let s = signal_set_with_io(0, 20.0, 2_048.0);
        assert_eq!(
            c.step(&s, false, Some(1_024.0), BalloonProbe::Inactive),
            BalloonAction::None
        );
        assert_eq!(
            c.step(&s, true, None, BalloonProbe::Inactive),
            BalloonAction::None
        );
        // Target not smaller than current capacity.
        assert_eq!(
            c.step(&s, true, Some(4_096.0), BalloonProbe::Inactive),
            BalloonAction::None
        );
    }

    #[test]
    fn aborts_on_io_rise() {
        let mut c = controller();
        let s0 = signal_set_with_io(0, 20.0, 2_048.0);
        c.step(&s0, true, Some(1_024.0), BalloonProbe::Inactive);
        // I/O rises well above baseline*1.5 + 10.
        let s1 = signal_set_with_io(1, 200.0, 2_048.0);
        let a = c.step(
            &s1,
            true,
            Some(1_024.0),
            BalloonProbe::Active {
                reached_target: false,
            },
        );
        assert_eq!(a, BalloonAction::Abort);
        assert!(!c.probing());
    }

    #[test]
    fn commits_at_target_with_flat_io() {
        let mut c = controller();
        let s0 = signal_set_with_io(0, 20.0, 2_048.0);
        c.step(&s0, true, Some(1_024.0), BalloonProbe::Inactive);
        let s1 = signal_set_with_io(1, 22.0, 1_024.0);
        let a = c.step(
            &s1,
            true,
            Some(1_024.0),
            BalloonProbe::Active {
                reached_target: true,
            },
        );
        assert_eq!(a, BalloonAction::Commit);
    }

    #[test]
    fn abort_cooldown_prevents_immediate_retry() {
        let mut c = controller();
        let s0 = signal_set_with_io(0, 20.0, 2_048.0);
        c.step(&s0, true, Some(1_024.0), BalloonProbe::Inactive);
        let hot = signal_set_with_io(1, 500.0, 2_048.0);
        assert_eq!(
            c.step(
                &hot,
                true,
                Some(1_024.0),
                BalloonProbe::Active {
                    reached_target: false
                }
            ),
            BalloonAction::Abort
        );
        // Next interval: still cooling down.
        let s2 = signal_set_with_io(2, 20.0, 2_048.0);
        assert_eq!(
            c.step(&s2, true, Some(1_024.0), BalloonProbe::Inactive),
            BalloonAction::None
        );
        // After the cooldown: retry allowed.
        let s_late = signal_set_with_io(1 + 30, 20.0, 2_048.0);
        assert!(matches!(
            c.step(&s_late, true, Some(1_024.0), BalloonProbe::Inactive),
            BalloonAction::Start { .. }
        ));
    }
}
