//! Explanations: the human-readable rationale of every scaling action (§4).
//!
//! "Using categories with well-defined semantics allows the auto-scaling
//! logic to provide an *explanation* of its actions … a concise way of
//! explaining the path the model traversed when recommending a container
//! size."

use crate::rules::RuleFire;
use dasr_containers::ResourceKind;
use std::fmt;

/// Why the auto-scaler did (or did not) act.
///
/// Every variant is structured data; the prose is produced by the
/// `Display` impl, so explanation text is always *rendered from* the
/// decision trace rather than stored in it.
#[derive(Debug, Clone, PartialEq)]
pub enum Explanation {
    /// Scale-up: a resource bottleneck was detected.
    ScaleUpBottleneck {
        /// The bottlenecked resource.
        resource: ResourceKind,
        /// The §4.2 rule that fired, with its captured bindings.
        rule: RuleFire,
    },
    /// Scale-up by the utilization-only baseline policy, which sees no
    /// wait signals (§7.2's Util).
    UtilScaleUp {
        /// The resource with the highest utilization.
        resource: ResourceKind,
    },
    /// A recommended scale-up was truncated or blocked by the available
    /// budget.
    ScaleUpConstrainedByBudget,
    /// Scale-down: demand is low for the named resources.
    ScaleDownLowDemand {
        /// Resources with low demand.
        resources: Vec<ResourceKind>,
    },
    /// Scale-down: latency is comfortably within the goal, so a smaller
    /// container suffices even though there is resource demand (§2.3).
    ScaleDownLatencyHeadroom {
        /// Observed latency, ms.
        observed_ms: f64,
        /// Goal, ms.
        goal_ms: f64,
    },
    /// Memory scale-down enabled by a completed balloon probe (§4.3).
    ScaleDownBalloonConfirmed,
    /// Latency is bad but waits are dominated by a non-resource bottleneck
    /// (e.g. application locks) — adding resources will not help (Fig 13).
    NonResourceBottleneck {
        /// Share of waits attributable to locks, %.
        lock_wait_pct: f64,
    },
    /// Latency is bad but no resource shows demand.
    LatencyBadNoDemand,
    /// A balloon probe started to test low memory demand.
    BalloonStarted {
        /// Target memory in MB.
        target_mb: f64,
    },
    /// A balloon probe was aborted because disk I/O rose (working set no
    /// longer fits).
    BalloonAborted,
    /// Within the post-resize cooldown window.
    Cooldown,
    /// Nothing to do.
    NoChange,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::ScaleUpBottleneck { resource, rule } => {
                write!(
                    f,
                    "Scale-up due to a {resource} bottleneck ({})",
                    rule.render()
                )
            }
            Explanation::UtilScaleUp { resource } => {
                write!(
                    f,
                    "Scale-up due to a {resource} bottleneck \
                     (latency BAD with utilization (no wait signals))"
                )
            }
            Explanation::ScaleUpConstrainedByBudget => {
                write!(f, "Scale-up constrained by budget")
            }
            Explanation::ScaleDownLowDemand { resources } => {
                write!(f, "Scale-down due to low demand for ")?;
                for (i, r) in resources.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            Explanation::ScaleDownLatencyHeadroom {
                observed_ms,
                goal_ms,
            } => write!(
                f,
                "Scale-down: latency {observed_ms:.0} ms is well within the {goal_ms:.0} ms goal"
            ),
            Explanation::ScaleDownBalloonConfirmed => {
                write!(f, "Memory scale-down confirmed by ballooning")
            }
            Explanation::NonResourceBottleneck { lock_wait_pct } => write!(
                f,
                "No scale-up: {lock_wait_pct:.0}% of waits are application locks — \
                 more resources will not improve latency"
            ),
            Explanation::LatencyBadNoDemand => {
                write!(
                    f,
                    "No scale-up: latency goal missed but no resource demand detected"
                )
            }
            Explanation::BalloonStarted { target_mb } => {
                write!(
                    f,
                    "Ballooning memory toward {target_mb:.0} MB to probe demand"
                )
            }
            Explanation::BalloonAborted => {
                write!(
                    f,
                    "Balloon aborted: disk I/O rose, working set no longer fits"
                )
            }
            Explanation::Cooldown => write!(f, "No change: within post-resize cooldown"),
            Explanation::NoChange => write!(f, "No change needed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_paper_examples() {
        let e = Explanation::ScaleUpBottleneck {
            resource: ResourceKind::Cpu,
            rule: RuleFire {
                id: crate::rules::RuleId::HighA,
                step: 1,
                bindings: crate::rules::Bindings {
                    util_pct: 85.0,
                    wait_pct: 60.0,
                    corr_threshold: 0.6,
                },
            },
        };
        let s = e.to_string();
        assert!(s.starts_with("Scale-up due to a cpu bottleneck"));
        assert!(s.contains("85% HIGH"), "rendered from bindings: {s}");
        assert_eq!(
            Explanation::ScaleUpConstrainedByBudget.to_string(),
            "Scale-up constrained by budget"
        );
    }

    #[test]
    fn lock_bottleneck_message() {
        let e = Explanation::NonResourceBottleneck {
            lock_wait_pct: 92.4,
        };
        let s = e.to_string();
        assert!(s.contains("92%"));
        assert!(s.contains("locks"));
    }

    #[test]
    fn low_demand_lists_resources() {
        let e = Explanation::ScaleDownLowDemand {
            resources: vec![ResourceKind::Cpu, ResourceKind::DiskIo],
        };
        let s = e.to_string();
        assert!(s.contains("cpu") && s.contains("disk_io"));
    }

    #[test]
    fn headroom_message_contains_numbers() {
        let e = Explanation::ScaleDownLatencyHeadroom {
            observed_ms: 42.0,
            goal_ms: 485.0,
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("485"));
    }
}
