//! `dasr-lint` CLI.
//!
//! ```text
//! cargo run -p dasr-lint -- [--deny-all] [--report PATH] [--root DIR]
//!                           [--threads N] [--explain RULE] [PATH...]
//! ```
//!
//! With no path arguments, lints the whole workspace under `--root`
//! (default: the current directory), classifying each file by path and
//! running both the token rules and the graph passes. Explicit path
//! arguments are linted under the *strictest* scope (every rule
//! applies): a directory argument is analyzed as one tree (multi-file
//! graph fixtures), loose file arguments are analyzed together as one
//! unit.
//!
//! `--explain RULE` prints a rule's rationale and a worked waiver
//! example, then exits. `--deny-all` exits 1 when any unwaived finding
//! survives; `--report` writes the findings as JSONL.
//!
//! Exit codes: 0 clean, 1 findings under `--deny-all`, 2 internal
//! error (bad usage, unreadable file).

#![forbid(unsafe_code)]

use dasr_lint::rules::LintRule;
use dasr_lint::{default_threads, lint_paths, lint_tree, lint_workspace_threads};
use dasr_lint::{Finding, WorkspaceLint};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str =
    "usage: dasr-lint [--deny-all] [--report PATH] [--root DIR] [--threads N] [--explain RULE] [PATH...]";

struct Args {
    deny_all: bool,
    report: Option<PathBuf>,
    root: PathBuf,
    threads: usize,
    explain: Option<String>,
    paths: Vec<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        report: None,
        root: PathBuf::from("."),
        threads: default_threads(),
        explain: None,
        paths: Vec::new(),
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => args.deny_all = true,
            "--report" => {
                let path = it.next().ok_or("--report requires a path")?;
                args.report = Some(PathBuf::from(path));
            }
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                args.root = PathBuf::from(dir);
            }
            "--threads" => {
                let n = it.next().ok_or("--threads requires a count")?;
                args.threads = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads: invalid count {n:?}"))?;
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule code or name")?;
                args.explain = Some(rule);
            }
            "--help" | "-h" => args.help = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

fn explain(rule_name: &str) -> Result<(), String> {
    let Some(rule) = LintRule::from_name(rule_name) else {
        let known: Vec<&str> = LintRule::ALL.iter().map(|r| r.code()).collect();
        return Err(format!(
            "unknown rule {rule_name:?} (known: {})",
            known.join(", ")
        ));
    };
    println!("{} ({})", rule.name(), rule.code());
    println!("  {}", rule.description());
    println!();
    println!("{}", rule.rationale());
    println!();
    println!("waiver / fix:");
    println!("  {}", rule.waiver_example());
    Ok(())
}

fn print_finding(f: &Finding) {
    let status = if f.waived { "waived" } else { "error " };
    println!(
        "[{status}] {}:{} {} — {}\n         {}",
        f.file,
        f.line,
        f.rule.name(),
        f.rule.description(),
        f.snippet
    );
    if let Some(detail) = &f.detail {
        println!("         detail: {detail}");
    }
    if let Some(reason) = &f.reason {
        println!("         reason: {reason}");
    }
}

fn lint(args: &Args) -> Result<WorkspaceLint, String> {
    if args.paths.is_empty() {
        if !args.root.join("Cargo.toml").is_file() {
            return Err(format!(
                "no Cargo.toml under {:?}; run from the workspace root or pass --root",
                args.root
            ));
        }
        return lint_workspace_threads(&args.root, args.threads)
            .map_err(|e| format!("scan failed: {e}"));
    }
    // Explicit paths: strictest scope. Directories become standalone
    // graph trees; loose files are analyzed together as one unit.
    let mut ws = WorkspaceLint::default();
    let mut loose: Vec<PathBuf> = Vec::new();
    for path in &args.paths {
        if path.is_dir() {
            let tree = lint_tree(path, args.threads)
                .map_err(|e| format!("cannot scan {}: {e}", path.display()))?;
            ws.merge(prefix_files(tree, path));
        } else {
            loose.push(path.clone());
        }
    }
    if !loose.is_empty() {
        let unit = lint_paths(Path::new(""), &loose, true, args.threads)
            .map_err(|e| format!("cannot read a file argument: {e}"))?;
        ws.merge(unit);
    }
    Ok(ws)
}

/// Re-prefixes a tree report's relative paths with the tree directory,
/// so CLI output points at real files.
fn prefix_files(mut ws: WorkspaceLint, dir: &Path) -> WorkspaceLint {
    let prefix = dir.display().to_string().replace('\\', "/");
    let join = |rel: &str| {
        if prefix.is_empty() || prefix == "." {
            rel.to_string()
        } else {
            format!("{}/{rel}", prefix.trim_end_matches('/'))
        }
    };
    for f in &mut ws.findings {
        f.file = join(&f.file);
    }
    for (file, _) in &mut ws.unused_waivers {
        *file = join(file);
    }
    ws
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.help {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(rule) = &args.explain {
        explain(rule)?;
        return Ok(ExitCode::SUCCESS);
    }

    let ws = lint(&args)?;

    for f in &ws.findings {
        print_finding(f);
    }
    for (file, line) in &ws.unused_waivers {
        println!("[unused] {file}:{line} waiver matches no finding");
    }
    println!(
        "dasr-lint: {} files scanned, {} fns ({} entry, {} no-alloc), {} active finding(s), {} waived, {} unused waiver(s)",
        ws.files_scanned,
        ws.graph_fns,
        ws.entry_fns,
        ws.no_alloc_fns,
        ws.active_count(),
        ws.waived_count(),
        ws.unused_waivers.len()
    );

    if let Some(report) = &args.report {
        std::fs::write(report, ws.to_jsonl())
            .map_err(|e| format!("cannot write {}: {e}", report.display()))?;
        println!("dasr-lint: report written to {}", report.display());
    }

    if args.deny_all && ws.active_count() > 0 {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dasr-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
