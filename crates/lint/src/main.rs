//! `dasr-lint` CLI.
//!
//! ```text
//! cargo run -p dasr-lint -- [--deny-all] [--report PATH] [--root DIR] [FILE...]
//! ```
//!
//! With no file arguments, lints the whole workspace under `--root`
//! (default: the current directory), classifying each file by path.
//! Explicit file arguments are linted under the *strictest* scope
//! (every rule applies) — this is the mode the fixture self-tests use.
//!
//! `--deny-all` exits non-zero when any unwaived finding survives;
//! `--report` writes the findings as JSONL (one object per line).

#![forbid(unsafe_code)]

use dasr_lint::rules::Scope;
use dasr_lint::{lint_source, lint_workspace, Finding, WorkspaceLint};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny_all: bool,
    report: Option<PathBuf>,
    root: PathBuf,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        report: None,
        root: PathBuf::from("."),
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => args.deny_all = true,
            "--report" => {
                let path = it.next().ok_or("--report requires a path")?;
                args.report = Some(PathBuf::from(path));
            }
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                args.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dasr-lint [--deny-all] [--report PATH] [--root DIR] [FILE...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn print_finding(f: &Finding) {
    let status = if f.waived { "waived" } else { "error " };
    println!(
        "[{status}] {}:{} {} — {}\n         {}",
        f.file,
        f.line,
        f.rule.name(),
        f.rule.description(),
        f.snippet
    );
    if let Some(reason) = &f.reason {
        println!("         reason: {reason}");
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    let ws: WorkspaceLint = if args.files.is_empty() {
        if !args.root.join("Cargo.toml").is_file() {
            return Err(format!(
                "no Cargo.toml under {:?}; run from the workspace root or pass --root",
                args.root
            ));
        }
        lint_workspace(&args.root).map_err(|e| format!("scan failed: {e}"))?
    } else {
        // Explicit files: strictest scope, used by fixture self-tests.
        let mut ws = WorkspaceLint::default();
        for path in &args.files {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path.display().to_string().replace('\\', "/");
            let lint = lint_source(&rel, &src, Scope::strict());
            ws.files_scanned += 1;
            ws.findings.extend(lint.findings);
            ws.unused_waivers
                .extend(lint.unused_waivers.into_iter().map(|l| (rel.clone(), l)));
        }
        ws
    };

    for f in &ws.findings {
        print_finding(f);
    }
    for (file, line) in &ws.unused_waivers {
        println!("[unused] {file}:{line} waiver matches no finding");
    }
    println!(
        "dasr-lint: {} files scanned, {} active finding(s), {} waived, {} unused waiver(s)",
        ws.files_scanned,
        ws.active_count(),
        ws.waived_count(),
        ws.unused_waivers.len()
    );

    if let Some(report) = &args.report {
        std::fs::write(report, ws.to_jsonl())
            .map_err(|e| format!("cannot write {}: {e}", report.display()))?;
        println!("dasr-lint: report written to {}", report.display());
    }

    if args.deny_all && ws.active_count() > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dasr-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
