//! Phase-1 item parser: fn / impl / mod / use extraction.
//!
//! Sits on the same hand-rolled token stream as the token rules — no
//! `syn`, no crates.io — and recovers just enough structure for the
//! graph passes: every function item with a module-qualified path, the
//! call sites inside its body, its per-function facts (wall clock,
//! ambient rng, map iteration, allocation, panic sites), and the file's
//! `use` aliases for cross-crate call resolution.
//!
//! The parser is a single forward walk over the tokens with a context
//! stack (`mod` / `impl` / `trait` / `fn` / plain block). It does not
//! understand expressions — a call site is any `ident(`, `path::ident(`
//! or `.ident(` sequence at body level — and it deliberately ignores
//! test-gated code (`#[cfg(test)]` / `#[test]`), which is outside every
//! invariant the graph rules check.

use crate::lexer::{lex, Directive, Kind, Tok};
use crate::rules::{self, LintRule, PanicKind, RawFinding, Scope};

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `f(..)`, `path::to::f(..)` — resolved against qualified paths.
    Path,
    /// `.m(..)` — resolved by method name across workspace impls.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments naming the callee; for method calls, just the
    /// method name. `Self::` is already rewritten to the impl type.
    pub path: Vec<String>,
    /// Path vs method call.
    pub kind: CallKind,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// Method call whose receiver is literally `self` (`self.m(..)`) —
    /// lets the resolver prefer the caller's own impl type.
    pub self_recv: bool,
}

/// First-occurrence fact: source line plus total site count.
#[derive(Debug, Clone, Copy)]
pub struct Fact {
    /// Line of the first site.
    pub line: u32,
    /// Number of sites in the body.
    pub count: u32,
}

/// Per-function facts the graph passes seed from.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnFacts {
    /// Wall-clock use (`Instant::now` / `SystemTime`).
    pub wallclock: Option<Fact>,
    /// Ambient randomness (`thread_rng`, `from_entropy`, …).
    pub rng: Option<Fact>,
    /// `HashMap`/`HashSet` iteration without a sorted adapter.
    pub map_iter: Option<Fact>,
    /// Allocation site (rule A1's definition).
    pub alloc: Option<Fact>,
    /// `.unwrap()` / `.expect(..)` sites.
    pub unwraps: Option<Fact>,
    /// Index-expression sites.
    pub indexing: Option<Fact>,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Fully qualified path: crate-ish root, modules, impl/trait type,
    /// name — e.g. `["dasr_engine", "slab", "GenSlab", "get"]`.
    pub qualified: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Defined inside an `impl` or `trait` block (method-name
    /// resolution candidates).
    pub is_method: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Seed facts.
    pub facts: FnFacts,
    /// Carries a `// dasr-lint: no-alloc` marker (rule G2 applies).
    pub no_alloc: bool,
    /// Graph rules this function is an entry point for (`entry(G1)`…).
    pub entries: Vec<LintRule>,
}

/// A `use` alias: `alias` names the path `target` in this file.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// Last segment (or `as` rename) visible in the file.
    pub alias: String,
    /// Full imported path segments.
    pub target: Vec<String>,
}

/// Phase-1 output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// `use` aliases in source order.
    pub uses: Vec<UseAlias>,
    /// Lines of `entry(...)` directives that attached to no function or
    /// named a non-graph rule — reported as W1.
    pub bad_entries: Vec<u32>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "in", "as", "move", "let", "fn",
    "where", "impl", "dyn", "pub", "crate", "self", "Self", "super", "ref", "mut", "box", "break",
    "continue", "unsafe", "const", "static", "type", "use", "mod", "struct", "enum", "trait",
];

#[derive(Debug, Clone)]
enum Ctx {
    Mod(String),
    Type(String),
    /// Index into `fns`, or `None` for a test-gated fn whose body is
    /// ignored.
    Fn(Option<usize>),
    Block,
}

#[derive(Debug, Clone, Default)]
enum Pending {
    #[default]
    None,
    Mod(String),
    Type(String),
    Fn {
        name: String,
        line: u32,
        in_test: bool,
    },
}

/// Derives the module path for a workspace-relative file path.
///
/// `crates/engine/src/slab.rs` → `["dasr_engine", "slab"]`;
/// `src/lib.rs` → `["dasr"]`; anything else (fixture trees) uses the
/// path components as-is. `lib.rs` / `mod.rs` / `main.rs` contribute no
/// segment of their own.
pub fn module_segments(rel: &str) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let rest = if let Some(r) = rel.strip_prefix("crates/") {
        let (krate, tail) = r.split_once('/').unwrap_or((r, ""));
        segs.push(format!("dasr_{}", krate.replace('-', "_")));
        tail.strip_prefix("src/").unwrap_or(tail)
    } else if let Some(r) = rel.strip_prefix("src/") {
        segs.push("dasr".to_string());
        r
    } else {
        rel
    };
    for comp in rest.split('/') {
        let comp = comp.strip_suffix(".rs").unwrap_or(comp);
        if comp.is_empty() || comp == "lib" || comp == "mod" || comp == "main" {
            continue;
        }
        segs.push(comp.to_string());
    }
    segs
}

/// Parses one file's source into items, reusing the shared lexer and
/// the token-rule detectors for per-function facts.
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let in_test = rules::test_mask(&lexed.tokens);
    parse_tokens(rel, &lexed.tokens, &in_test, &lexed.directives)
}

/// Parses a pre-lexed token stream (the workspace scan lexes once and
/// shares the stream between the token rules and the parser).
pub fn parse_tokens(
    rel: &str,
    tokens: &[Tok],
    in_test: &[bool],
    directives: &[Directive],
) -> ParsedFile {
    let root = module_segments(rel);
    let mut out = ParsedFile::default();
    // owner[i] = index into out.fns of the innermost non-test fn whose
    // body contains token i.
    let mut owner: Vec<Option<usize>> = vec![None; tokens.len()];

    let mut ctx: Vec<Ctx> = Vec::new();
    let mut pending = Pending::None;
    // Paren/bracket depth: a `;` inside `[u8; 4]` or a closure argument
    // list must not cancel a pending item header.
    let mut pdepth = 0i32;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            Kind::Ident(s) if s == "mod" && !in_test[i] => {
                if let Some(name) = tokens.get(i + 1).and_then(Tok::ident) {
                    pending = Pending::Mod(name.to_string());
                    i += 2;
                    continue;
                }
            }
            Kind::Ident(s) if (s == "impl" || s == "trait") && !in_test[i] => {
                if let Some((name, next)) = impl_type_name(tokens, i) {
                    pending = Pending::Type(name);
                    i = next;
                    continue;
                }
            }
            Kind::Ident(s) if s == "use" && !in_test[i] => {
                i = parse_use(tokens, i + 1, &mut out.uses);
                continue;
            }
            Kind::Ident(s) if s == "fn" => {
                if let Some(name) = tokens.get(i + 1).and_then(Tok::ident) {
                    pending = Pending::Fn {
                        name: name.to_string(),
                        line: t.line,
                        in_test: in_test[i],
                    };
                    i += 2;
                    continue;
                }
            }
            Kind::Punct('(') | Kind::Punct('[') => pdepth += 1,
            Kind::Punct(')') | Kind::Punct(']') => pdepth -= 1,
            Kind::Punct(';') if pdepth == 0 => {
                // Body-less item (`mod x;`, trait method decl): pending
                // context never materializes.
                pending = Pending::None;
            }
            Kind::Punct('{') => {
                let c = match std::mem::take(&mut pending) {
                    Pending::Mod(name) => Ctx::Mod(name),
                    Pending::Type(name) => Ctx::Type(name),
                    Pending::Fn {
                        name,
                        line,
                        in_test: test,
                    } => {
                        if test {
                            Ctx::Fn(None)
                        } else {
                            let qualified = qualify(&root, &ctx, &name);
                            let is_method = ctx.iter().any(|c| matches!(c, Ctx::Type(_)));
                            out.fns.push(FnItem {
                                name,
                                qualified,
                                line,
                                is_method,
                                calls: Vec::new(),
                                facts: FnFacts::default(),
                                no_alloc: false,
                                entries: Vec::new(),
                            });
                            Ctx::Fn(Some(out.fns.len() - 1))
                        }
                    }
                    Pending::None => Ctx::Block,
                };
                ctx.push(c);
            }
            Kind::Punct('}') => {
                ctx.pop();
            }
            _ => {}
        }
        // Attribute the token to the innermost live fn, and extract
        // call sites while inside one.
        let cur = ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn(idx) => Some(*idx),
            _ => None,
        });
        if let Some(Some(fn_idx)) = cur {
            owner[i] = Some(fn_idx);
            if let Some(call) = call_at(tokens, i, &ctx) {
                out.fns[fn_idx].calls.push(call);
            }
        }
        i += 1;
    }

    attach_directives(&mut out, directives, rel);
    attach_facts(&mut out, tokens, in_test, &owner);
    out
}

/// Parses an `impl`/`trait` header at token `i`; returns the type (or
/// trait) name that qualifies the block's methods, plus the index of
/// the body `{` (where the main walk resumes).
fn impl_type_name(tokens: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip the generic parameter list directly after the keyword.
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = tokens.get(j) {
            match t.kind {
                Kind::Punct('<') => depth += 1,
                Kind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Last angle-depth-0 identifier before `{` wins; `for` restarts the
    // collection (impl Trait for Type), `where` ends it.
    let mut depth = 0i32;
    let mut name: Option<&str> = None;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            Kind::Punct('<') | Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct('>') | Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
            Kind::Punct('{') if depth <= 0 => {
                return name.map(|n| (n.to_string(), j));
            }
            Kind::Punct(';') => return None,
            Kind::Ident(s) if depth <= 0 => {
                if s == "for" {
                    name = None;
                } else if s == "where" {
                    // Type name is fixed; skip to the body.
                } else if name.is_none() || !is_where_clause(tokens, j) {
                    name = Some(s);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether token `j` sits after a `where` keyword in the same header
/// (identifiers there are bound names, not the impl type).
fn is_where_clause(tokens: &[Tok], j: usize) -> bool {
    let mut k = j;
    while k > 0 {
        k -= 1;
        match tokens[k].kind {
            Kind::Punct('{') | Kind::Punct('}') | Kind::Punct(';') => return false,
            Kind::Ident(ref s) if s == "where" => return true,
            Kind::Ident(ref s) if s == "impl" || s == "trait" => return false,
            _ => {}
        }
    }
    false
}

/// Parses a `use` item starting just after the `use` keyword; returns
/// the index just past the terminating `;`. Handles `a::b::c`,
/// `a::b::{c, d as e}` one level deep, and ignores globs.
fn parse_use(tokens: &[Tok], mut j: usize, out: &mut Vec<UseAlias>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            Kind::Ident(s) if s == "as" => {
                // `use path as alias;`
                if let Some(alias) = tokens.get(j + 1).and_then(Tok::ident) {
                    if !prefix.is_empty() {
                        out.push(UseAlias {
                            alias: alias.to_string(),
                            target: prefix.clone(),
                        });
                    }
                    prefix.clear();
                }
                j += 2;
                continue;
            }
            Kind::Ident(s) => {
                prefix.push(s.clone());
                j += 1;
                // Skip the `::` separator.
                if tokens.get(j).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                {
                    j += 2;
                    continue;
                }
                continue;
            }
            Kind::Punct('{') => {
                // Group: each leaf extends the prefix.
                let mut depth = 1i32;
                let base = prefix.clone();
                let mut leaf: Vec<String> = Vec::new();
                j += 1;
                while let Some(t) = tokens.get(j) {
                    match &t.kind {
                        Kind::Punct('{') => depth += 1,
                        Kind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                flush_use_leaf(&base, &mut leaf, None, out);
                                j += 1;
                                break;
                            }
                        }
                        Kind::Punct(',') if depth == 1 => {
                            flush_use_leaf(&base, &mut leaf, None, out);
                        }
                        Kind::Ident(s) if s == "as" && depth == 1 => {
                            let alias = tokens.get(j + 1).and_then(Tok::ident);
                            flush_use_leaf(&base, &mut leaf, alias, out);
                            j += 2;
                            continue;
                        }
                        Kind::Ident(s) => leaf.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                prefix.clear();
                continue;
            }
            Kind::Punct(';') => {
                if let Some(alias) = prefix.last().cloned() {
                    if alias != "*" {
                        out.push(UseAlias {
                            alias,
                            target: prefix.clone(),
                        });
                    }
                }
                return j + 1;
            }
            _ => j += 1,
        }
    }
    j
}

fn flush_use_leaf(
    base: &[String],
    leaf: &mut Vec<String>,
    alias: Option<&str>,
    out: &mut Vec<UseAlias>,
) {
    if leaf.is_empty() {
        return;
    }
    let mut target = base.to_vec();
    target.append(leaf);
    let alias = alias
        .map(str::to_string)
        .or_else(|| target.last().cloned())
        .unwrap_or_default();
    if alias != "self" {
        out.push(UseAlias { alias, target });
    }
}

/// Builds the qualified path for a fn defined under the context stack.
fn qualify(root: &[String], ctx: &[Ctx], name: &str) -> Vec<String> {
    let mut q: Vec<String> = root.to_vec();
    for c in ctx {
        match c {
            Ctx::Mod(m) => q.push(m.clone()),
            Ctx::Type(t) => q.push(t.clone()),
            _ => {}
        }
    }
    q.push(name.to_string());
    q
}

/// Detects a call site whose callee name is the identifier at `i`.
fn call_at(tokens: &[Tok], i: usize, ctx: &[Ctx]) -> Option<CallSite> {
    let name = tokens[i].ident()?;
    if NON_CALL_KEYWORDS.contains(&name) {
        return None;
    }
    // The callee name must be followed by `(`, optionally through a
    // turbofish `::<..>`.
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i32;
        j += 2;
        while let Some(t) = tokens.get(j) {
            match t.kind {
                Kind::Punct('<') => depth += 1,
                Kind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Kind::Punct(';') => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let line = tokens[i].line;
    // Method call: `.name(` — but not `a..b(` range sugar.
    if i >= 1 && tokens[i - 1].is_punct('.') && !(i >= 2 && tokens[i - 2].is_punct('.')) {
        return Some(CallSite {
            path: vec![name.to_string()],
            kind: CallKind::Method,
            line,
            self_recv: i >= 2 && tokens[i - 2].is_ident("self"),
        });
    }
    // Path call: walk preceding `seg::` pairs backwards.
    let mut segs: Vec<String> = vec![name.to_string()];
    let mut k = i;
    while k >= 3
        && tokens[k - 1].is_punct(':')
        && tokens[k - 2].is_punct(':')
        && tokens[k - 3].ident().is_some()
    {
        segs.insert(0, tokens[k - 3].ident().unwrap_or_default().to_string());
        k -= 3;
    }
    if k >= 1 && (tokens[k - 1].is_punct('.') || tokens[k - 1].is_ident("fn")) {
        // `recv.path::f(` cannot happen; `fn name(` is a definition.
        return None;
    }
    // Drop relative-path noise and rewrite `Self` to the impl type.
    while let Some(first) = segs.first() {
        match first.as_str() {
            "crate" | "super" | "self" => {
                segs.remove(0);
            }
            "Self" => {
                let ty = ctx.iter().rev().find_map(|c| match c {
                    Ctx::Type(t) => Some(t.clone()),
                    _ => None,
                });
                match ty {
                    Some(t) => segs[0] = t,
                    None => {
                        segs.remove(0);
                    }
                }
                break;
            }
            _ => break,
        }
    }
    if segs.is_empty() || segs.last().is_none() {
        return None;
    }
    Some(CallSite {
        path: segs,
        kind: CallKind::Path,
        line,
        self_recv: false,
    })
}

/// Attaches `no-alloc` and `entry(...)` directives to the first fn at
/// or below their line (same rule as the token-level marker mask).
fn attach_directives(out: &mut ParsedFile, directives: &[Directive], _rel: &str) {
    for d in directives {
        let (line, entry_rules) = match d {
            Directive::NoAlloc { line } => (*line, None),
            Directive::Entry { line, rules } => (*line, Some(rules)),
            _ => continue,
        };
        let target = out
            .fns
            .iter_mut()
            .filter(|f| f.line >= line)
            .min_by_key(|f| f.line);
        match (target, entry_rules) {
            (Some(f), None) => f.no_alloc = true,
            (Some(f), Some(names)) => {
                let parsed: Option<Vec<LintRule>> =
                    names.iter().map(|n| LintRule::from_name(n)).collect();
                match parsed {
                    Some(rules)
                        if !rules.is_empty()
                            && rules.iter().all(|r| {
                                matches!(r, LintRule::G1TransitiveTaint | LintRule::G3PanicPath)
                            }) =>
                    {
                        for r in rules {
                            if !f.entries.contains(&r) {
                                f.entries.push(r);
                            }
                        }
                    }
                    _ => out.bad_entries.push(line),
                }
            }
            (None, Some(_)) => out.bad_entries.push(line),
            (None, None) => {}
        }
    }
}

/// Runs the shared detectors over the token stream and attributes every
/// hit to its owning function.
fn attach_facts(out: &mut ParsedFile, tokens: &[Tok], in_test: &[bool], owner: &[Option<usize>]) {
    let mut raw: Vec<RawFinding> = Vec::new();
    rules::scan_d1(tokens, in_test, Scope::strict(), &mut raw);
    rules::scan_d3(tokens, in_test, &mut raw);
    let map_names = rules::collect_map_names(tokens, in_test);
    rules::scan_d2(tokens, in_test, &map_names, &mut raw);
    raw.extend(rules::scan_alloc_all(tokens, in_test));

    let bump = |slot: &mut Option<Fact>, line: u32| match slot {
        Some(f) => f.count += 1,
        None => *slot = Some(Fact { line, count: 1 }),
    };
    for f in &raw {
        let Some(Some(idx)) = owner.get(f.tok) else {
            continue;
        };
        let facts = &mut out.fns[*idx].facts;
        match f.rule {
            LintRule::D1WallClock => bump(&mut facts.wallclock, f.line),
            LintRule::D3AmbientRandomness => bump(&mut facts.rng, f.line),
            LintRule::D2MapIteration => bump(&mut facts.map_iter, f.line),
            LintRule::G2AllocReachability => bump(&mut facts.alloc, f.line),
            _ => {}
        }
    }
    for p in rules::scan_panics(tokens, in_test) {
        let Some(Some(idx)) = owner.get(p.tok) else {
            continue;
        };
        let facts = &mut out.fns[*idx].facts;
        match p.kind {
            PanicKind::Unwrap => bump(&mut facts.unwraps, p.line),
            PanicKind::Index => bump(&mut facts.indexing, p.line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/demo/src/x.rs", src)
    }

    #[test]
    fn module_segments_shapes() {
        assert_eq!(
            module_segments("crates/engine/src/slab.rs"),
            vec!["dasr_engine", "slab"]
        );
        assert_eq!(
            module_segments("crates/core/src/runner/mod.rs"),
            vec!["dasr_core", "runner"]
        );
        assert_eq!(module_segments("src/lib.rs"), vec!["dasr"]);
        assert_eq!(
            module_segments("tree/alpha/policy.rs"),
            vec!["tree", "alpha", "policy"]
        );
    }

    #[test]
    fn fns_get_qualified_paths() {
        let src = r#"
            pub fn free() {}
            mod inner {
                impl Widget {
                    fn method(&self) {}
                }
            }
            trait Render {
                fn draw(&self) { self.paint(); }
            }
        "#;
        let p = parse(src);
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified.join("::")).collect();
        assert_eq!(
            names,
            vec![
                "dasr_demo::x::free",
                "dasr_demo::x::inner::Widget::method",
                "dasr_demo::x::Render::draw",
            ]
        );
        assert!(!p.fns[0].is_method);
        assert!(p.fns[1].is_method);
        assert!(p.fns[2].is_method);
    }

    #[test]
    fn calls_are_extracted_with_kinds() {
        let src = r#"
            fn caller(x: &W) {
                helper(1);
                codec::put_uvar(&mut b, 7);
                x.observe(2);
                Self::internal();
                let v = foo.len();
                if cond(x) { return; }
            }
        "#;
        let p = parse(src);
        let calls = &p.fns[0].calls;
        let render: Vec<(String, CallKind)> =
            calls.iter().map(|c| (c.path.join("::"), c.kind)).collect();
        assert!(render.contains(&("helper".to_string(), CallKind::Path)));
        assert!(render.contains(&("codec::put_uvar".to_string(), CallKind::Path)));
        assert!(render.contains(&("observe".to_string(), CallKind::Method)));
        assert!(render.contains(&("len".to_string(), CallKind::Method)));
        assert!(render.contains(&("cond".to_string(), CallKind::Path)));
        // `Self::internal` has no impl context here — Self is dropped.
        assert!(render.contains(&("internal".to_string(), CallKind::Path)));
    }

    #[test]
    fn self_rewrites_to_impl_type() {
        let src = r#"
            impl Wheel {
                fn tick(&mut self) { Self::advance(self); }
            }
        "#;
        let p = parse(src);
        assert_eq!(p.fns[0].calls[0].path, vec!["Wheel", "advance"]);
    }

    #[test]
    fn facts_attach_to_owning_fn() {
        let src = r#"
            fn clean() { let x = 1; }
            fn dirty() {
                let t = std::time::Instant::now();
                let v: Vec<u32> = Vec::new();
                let y = opt.unwrap();
                let z = arr[3];
            }
        "#;
        let p = parse(src);
        assert!(p.fns[0].facts.wallclock.is_none());
        let f = &p.fns[1].facts;
        assert!(f.wallclock.is_some());
        assert!(f.alloc.is_some());
        assert_eq!(f.unwraps.map(|x| x.count), Some(1));
        assert_eq!(f.indexing.map(|x| x.count), Some(1));
    }

    #[test]
    fn test_gated_fns_are_invisible() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() { thread_rng(); }
            }
            fn live() {}
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "live");
    }

    #[test]
    fn directives_attach_to_next_fn() {
        let src = r#"
            // dasr-lint: no-alloc
            fn hot() {}
            // dasr-lint: entry(G1, G3)
            fn decide() {}
            // dasr-lint: entry(A1)
            fn bad_rule() {}
        "#;
        let p = parse(src);
        assert!(p.fns[0].no_alloc);
        assert_eq!(
            p.fns[1].entries,
            vec![LintRule::G1TransitiveTaint, LintRule::G3PanicPath]
        );
        // entry(A1) is not a graph rule — reported, not attached.
        assert!(p.fns[2].entries.is_empty());
        assert_eq!(p.bad_entries.len(), 1);
    }

    #[test]
    fn use_aliases_parse() {
        let src = r#"
            use dasr_core::json;
            use dasr_stats::{ExactSum, theil_sen as ts};
            use std::collections::HashMap;
            fn f() {}
        "#;
        let p = parse(src);
        let find = |a: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == a)
                .map(|u| u.target.join("::"))
        };
        assert_eq!(find("json"), Some("dasr_core::json".to_string()));
        assert_eq!(find("ExactSum"), Some("dasr_stats::ExactSum".to_string()));
        assert_eq!(find("ts"), Some("dasr_stats::theil_sen".to_string()));
        assert_eq!(
            find("HashMap"),
            Some("std::collections::HashMap".to_string())
        );
    }
}
