//! `dasr-lint` — the workspace invariant linter.
//!
//! A dependency-free static-analysis pass (hand-rolled token scanner, no
//! `syn`, no crates.io) that enforces the project's determinism,
//! render-from-structure, and hot-path allocation rules over the
//! workspace source. The invariants it pins are the ones the whole
//! verification story rests on — oracle equivalence, 1/2/8-thread
//! bit-identity, trace-derived histograms — moved from "a property test
//! might catch it" to "CI fails the moment a PR writes it".
//!
//! Analysis runs in two phases:
//!
//! 1. **Per-file** (parallel): the token rules — **D1** no wall clock
//!    outside `core::obs`, **D2** no `HashMap`/`HashSet` iteration in
//!    deterministic modules, **D3** no ambient randomness outside
//!    tests, **R1** no `String` fields stored in trace/event/metric
//!    types, **F1** no NaN-unsafe float ordering outside the stats
//!    kernels, **A1** no allocation under a `no-alloc` marker, **W1**
//!    malformed waivers — plus the item parser ([`parser`]) that
//!    extracts functions, calls, and `use` aliases.
//! 2. **Workspace graph** (sequential, deterministic): the approximate
//!    call graph ([`graph`]) and the propagation passes ([`passes`]) —
//!    **G1** transitive determinism taint from `entry(G1)` functions,
//!    **G2** transitive allocation under `no-alloc` markers, **G3**
//!    panic paths from `entry(G3)` functions.
//!
//! File parsing fans out across threads, but findings are merged and
//! sorted in (path, line, rule) order — reports are byte-identical at
//! any thread count. The linter satisfies its own determinism bar.
//!
//! Violations are waived in place with a mandatory reason:
//!
//! ```text
//! // dasr-lint: allow(D2) reason="order-independent sum over values"
//! ```
//!
//! A standalone waiver comment covers findings on the line below it; a
//! trailing waiver comment covers its own line. Waivers are counted and
//! reported, and a missing reason is itself a finding (rule W1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;

use lexer::Directive;
use rules::{LintRule, Scope};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use dasr_core::json::Json;

/// One lint finding, waived or active.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: LintRule,
    /// The trimmed source line (truncated to 160 chars).
    pub snippet: String,
    /// Whether an in-source waiver covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
    /// Graph-pass explanation (witness entry, allocation chain, site
    /// counts); `None` for token-rule findings.
    pub detail: Option<String>,
}

impl Finding {
    /// Serializes the finding as one JSON object (one JSONL row).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("file".to_string(), Json::Str(self.file.clone())),
            ("line".to_string(), Json::Num(f64::from(self.line))),
            ("rule".to_string(), Json::Str(self.rule.name().to_string())),
            ("snippet".to_string(), Json::Str(self.snippet.clone())),
            ("waived".to_string(), Json::Bool(self.waived)),
        ];
        if let Some(reason) = &self.reason {
            fields.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail".to_string(), Json::Str(detail.clone())));
        }
        Json::Obj(fields)
    }
}

/// Lint result for one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// All findings, sorted by line then rule.
    pub findings: Vec<Finding>,
    /// Lines of well-formed waivers that matched no finding.
    pub unused_waivers: Vec<u32>,
}

/// Classifies a workspace-relative path into a rule [`Scope`].
pub fn classify(rel: &str) -> Scope {
    let deterministic = [
        "crates/core/src",
        "crates/engine/src",
        "crates/fleet/src",
        "crates/stats/src",
        "crates/store/src",
    ]
    .iter()
    .any(|p| rel.starts_with(p));
    Scope {
        deterministic,
        wallclock_exempt: rel.starts_with("crates/core/src/obs"),
        float_exempt: rel.starts_with("crates/stats/src"),
    }
}

fn snippet_of(src_lines: &[&str], line: u32) -> String {
    let text = src_lines.get(line as usize - 1).map_or("", |s| s.trim());
    let mut s = String::with_capacity(text.len().min(160));
    for c in text.chars().take(160) {
        s.push(c);
    }
    s
}

/// A well-formed waiver awaiting findings to cover.
#[derive(Debug)]
struct ParsedWaiver {
    /// The line the directive sits on (for unused-waiver reports).
    line: u32,
    /// The line the waiver *covers*: its own line for a trailing
    /// comment, the next line for a standalone comment line.
    covers: u32,
    rules: Vec<LintRule>,
    reason: String,
    used: bool,
}

/// A raw finding awaiting waiver application: line, rule, graph detail.
type PendingFinding = (u32, LintRule, Option<String>);

/// Phase-1 output for one file: everything the graph phase and the
/// final waiver application need.
#[derive(Debug, Default)]
struct FileUnit {
    rel: String,
    src: String,
    parsed: parser::ParsedFile,
    /// Token-rule findings (line, rule, no detail).
    raw: Vec<PendingFinding>,
    /// Lines of malformed directives (rule W1, never waivable).
    w1_lines: Vec<u32>,
    waivers: Vec<ParsedWaiver>,
}

/// Lexes, scans, and parses one file (phase 1; thread-safe).
fn analyze_file(rel: &str, src: String, scope: Scope) -> FileUnit {
    let lexed = lexer::lex(&src);
    let in_test = rules::test_mask(&lexed.tokens);
    let marker_lines: Vec<u32> = lexed
        .directives
        .iter()
        .filter_map(|d| match d {
            Directive::NoAlloc { line } => Some(*line),
            _ => None,
        })
        .collect();
    let no_alloc = rules::no_alloc_mask(&lexed.tokens, &marker_lines);
    let raw = rules::scan(&lexed.tokens, &in_test, &no_alloc, scope);

    let mut unit = FileUnit {
        rel: rel.to_string(),
        raw: raw.iter().map(|f| (f.line, f.rule, None)).collect(),
        ..FileUnit::default()
    };
    for d in &lexed.directives {
        match d {
            Directive::NoAlloc { .. } | Directive::Entry { .. } => {}
            Directive::Unknown { line, .. } => unit.w1_lines.push(*line),
            Directive::Allow {
                line,
                rules: names,
                reason,
            } => {
                let parsed: Option<Vec<LintRule>> =
                    names.iter().map(|n| LintRule::from_name(n)).collect();
                match (parsed, reason) {
                    (Some(rules), Some(reason))
                        if !rules.is_empty() && !reason.trim().is_empty() =>
                    {
                        // A standalone comment line waives the line
                        // below; a trailing comment waives its own line.
                        let standalone = !lexed.tokens.iter().any(|t| t.line == *line);
                        unit.waivers.push(ParsedWaiver {
                            line: *line,
                            covers: if standalone { *line + 1 } else { *line },
                            rules,
                            reason: reason.clone(),
                            used: false,
                        });
                    }
                    // Unknown rule, empty rule list, or missing/empty
                    // reason: the waiver itself is the violation.
                    _ => unit.w1_lines.push(*line),
                }
            }
        }
    }

    unit.parsed = parser::parse_tokens(rel, &lexed.tokens, &in_test, &lexed.directives);
    // Entry directives that attached to nothing or named non-graph
    // rules are malformed (W1), same as bad waivers.
    unit.w1_lines
        .extend(unit.parsed.bad_entries.iter().copied());
    unit.src = src;
    unit
}

/// Applies this file's waivers to its pending findings (token + graph)
/// and renders them, sorted by (line, rule, detail). W1 is never
/// waivable.
fn file_findings(unit: &mut FileUnit, graph_findings: Vec<PendingFinding>) -> FileLint {
    let mut pending: Vec<PendingFinding> = std::mem::take(&mut unit.raw);
    pending.extend(
        unit.w1_lines
            .iter()
            .map(|&l| (l, LintRule::W1MalformedWaiver, None)),
    );
    pending.extend(graph_findings);
    pending.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.cmp(&b.2)));

    let src_lines: Vec<&str> = unit.src.lines().collect();
    let mut findings = Vec::with_capacity(pending.len());
    for (line, rule, detail) in pending {
        let mut waived = false;
        let mut reason = None;
        if rule != LintRule::W1MalformedWaiver {
            for w in unit.waivers.iter_mut() {
                if w.covers == line && w.rules.contains(&rule) {
                    waived = true;
                    reason = Some(w.reason.clone());
                    w.used = true;
                    break;
                }
            }
        }
        findings.push(Finding {
            file: unit.rel.clone(),
            line,
            rule,
            snippet: snippet_of(&src_lines, line),
            waived,
            reason,
            detail,
        });
    }
    FileLint {
        findings,
        unused_waivers: unit
            .waivers
            .iter()
            .filter(|w| !w.used)
            .map(|w| w.line)
            .collect(),
    }
}

/// Lints one file's source text under the scope for `rel_path` — token
/// rules and directive validation only (no workspace graph; graph rules
/// need the multi-file pipeline, see [`lint_paths`]).
pub fn lint_source(rel_path: &str, src: &str, scope: Scope) -> FileLint {
    let mut unit = analyze_file(rel_path, src.to_string(), scope);
    file_findings(&mut unit, Vec::new())
}

/// Aggregate lint result over a workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings across all files, in (file, line, rule) order.
    pub findings: Vec<Finding>,
    /// `(file, line)` of well-formed waivers that matched no finding.
    pub unused_waivers: Vec<(String, u32)>,
    /// Functions carrying a `// dasr-lint: entry(...)` marker.
    pub entry_fns: usize,
    /// Functions carrying a `// dasr-lint: no-alloc` marker.
    pub no_alloc_fns: usize,
    /// Total function items in the symbol graph.
    pub graph_fns: usize,
}

impl WorkspaceLint {
    /// Findings not covered by a waiver (these fail `--deny-all`).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Number of active (unwaived) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Serializes every finding as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json().write());
            out.push('\n');
        }
        out
    }

    /// Merges another result (used by the CLI for mixed file/dir args).
    pub fn merge(&mut self, other: WorkspaceLint) {
        self.files_scanned += other.files_scanned;
        self.findings.extend(other.findings);
        self.unused_waivers.extend(other.unused_waivers);
        self.entry_fns += other.entry_fns;
        self.no_alloc_fns += other.no_alloc_fns;
        self.graph_fns += other.graph_fns;
    }
}

/// Source roots scanned inside a workspace: the facade crate plus every
/// `crates/*` library. Vendored shims and lint fixtures are deliberately
/// excluded.
fn source_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    Ok(roots)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Default worker count for the per-file phase: available parallelism,
/// capped at 8 (the scan is short; more threads only add contention).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Runs the full two-phase pipeline over an explicit file list.
///
/// Phase 1 fans files out over `threads` workers via a shared cursor;
/// results land in a slot-per-file vector, so the merge order — and
/// therefore the report bytes — do not depend on the thread count or
/// scheduling. Phase 2 (graph build + passes) is sequential over the
/// path-sorted units.
///
/// `strict` lints every file under [`Scope::strict`] (fixture trees and
/// explicit CLI file args); otherwise each file is classified by its
/// workspace-relative path.
pub fn lint_paths(
    root: &Path,
    files: &[PathBuf],
    strict: bool,
    threads: usize,
) -> std::io::Result<WorkspaceLint> {
    let mut jobs: Vec<(String, PathBuf)> = files
        .iter()
        .map(|p| (rel_path(root, p), p.clone()))
        .collect();
    jobs.sort_by(|a, b| a.0.cmp(&b.0));
    jobs.dedup_by(|a, b| a.0 == b.0);

    let n = jobs.len();
    let workers = threads.clamp(1, n.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<std::io::Result<FileUnit>>>> =
        Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (rel, path) = &jobs[i];
                let scope = if strict {
                    Scope::strict()
                } else {
                    classify(rel)
                };
                let unit = std::fs::read_to_string(path).map(|src| analyze_file(rel, src, scope));
                slots.lock().expect("lint worker panicked")[i] = Some(unit);
            });
        }
    });

    let mut units: Vec<FileUnit> = Vec::with_capacity(n);
    for slot in slots.into_inner().expect("lint worker panicked") {
        units.push(slot.expect("cursor covered every slot")?);
    }
    Ok(finalize(units))
}

/// Phase 2: builds the symbol graph over all units, runs the graph
/// passes, applies waivers per file, and merges everything in
/// deterministic (file, line, rule) order.
fn finalize(mut units: Vec<FileUnit>) -> WorkspaceLint {
    let parsed: Vec<(String, parser::ParsedFile)> = units
        .iter_mut()
        .map(|u| (u.rel.clone(), std::mem::take(&mut u.parsed)))
        .collect();
    let g = graph::SymbolGraph::build(parsed);
    let graph_findings = passes::run_graph_passes(&g);

    // Group graph findings per file index (unit order == g.files order).
    let mut per_file: Vec<Vec<PendingFinding>> = (0..units.len()).map(|_| Vec::new()).collect();
    for f in graph_findings {
        per_file[f.file].push((f.line, f.rule, Some(f.detail)));
    }

    let mut ws = WorkspaceLint {
        files_scanned: units.len(),
        graph_fns: g.nodes.len(),
        ..WorkspaceLint::default()
    };
    for n in &g.nodes {
        if !n.item.entries.is_empty() {
            ws.entry_fns += 1;
        }
        if n.item.no_alloc {
            ws.no_alloc_fns += 1;
        }
    }
    for (unit, gf) in units.iter_mut().zip(per_file) {
        let file = file_findings(unit, gf);
        ws.findings.extend(file.findings);
        ws.unused_waivers.extend(
            file.unused_waivers
                .into_iter()
                .map(|l| (unit.rel.clone(), l)),
        );
    }
    ws
}

/// Lints every `.rs` file under the workspace source roots of `root`
/// (`src/` and `crates/*/src/`), classifying each by path, with the
/// default thread count.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceLint> {
    lint_workspace_threads(root, default_threads())
}

/// [`lint_workspace`] with an explicit phase-1 thread count. Reports
/// are byte-identical across thread counts.
pub fn lint_workspace_threads(root: &Path, threads: usize) -> std::io::Result<WorkspaceLint> {
    let mut files = Vec::new();
    for src_root in source_roots(root)? {
        collect_rs_files(&src_root, &mut files)?;
    }
    lint_paths(root, &files, false, threads)
}

/// Lints a standalone directory tree (fixture trees, experiments):
/// every `.rs` file below `dir`, all under the strictest scope, with
/// the full graph pipeline. Paths in the report are relative to `dir`.
pub fn lint_tree(dir: &Path, threads: usize) -> std::io::Result<WorkspaceLint> {
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    lint_paths(dir, &files, true, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert!(classify("crates/engine/src/locks.rs").deterministic);
        assert!(!classify("crates/engine/src/locks.rs").wallclock_exempt);
        assert!(classify("crates/core/src/obs/metrics.rs").wallclock_exempt);
        assert!(classify("crates/stats/src/quantile.rs").float_exempt);
        assert!(classify("crates/store/src/record.rs").deterministic);
        assert!(!classify("crates/store/src/record.rs").float_exempt);
        // The read fast path decodes and prunes deterministically too.
        assert!(classify("crates/store/src/cursor.rs").deterministic);
        assert!(classify("crates/store/src/codec.rs").deterministic);
        assert!(!classify("crates/telemetry/src/lib.rs").deterministic);
        assert!(!classify("src/lib.rs").deterministic);
    }

    #[test]
    fn waiver_covers_same_and_next_line() {
        let src = "\
fn f() {\n\
    // dasr-lint: allow(D1) reason=\"profiling scratch\"\n\
    let t = std::time::Instant::now();\n\
    let u = std::time::Instant::now(); // dasr-lint: allow(D1) reason=\"same line\"\n\
    let v = std::time::Instant::now();\n\
}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let waived: Vec<bool> = lint.findings.iter().map(|f| f.waived).collect();
        assert_eq!(waived, vec![true, true, false]);
        assert!(lint.unused_waivers.is_empty());
        assert_eq!(
            lint.findings[0].reason.as_deref(),
            Some("profiling scratch")
        );
    }

    #[test]
    fn missing_reason_is_w1() {
        let src = "// dasr-lint: allow(D2)\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
        assert!(!lint.findings[0].waived);
    }

    #[test]
    fn unknown_rule_is_w1() {
        let src = "// dasr-lint: allow(Z9) reason=\"nope\"\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
    }

    #[test]
    fn w1_cannot_be_waived() {
        let src = "\
// dasr-lint: allow(W1) reason=\"try to waive the waiver rule\"\n\
// dasr-lint: allow(D2)\n\
fn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let w1: Vec<&Finding> = lint
            .findings
            .iter()
            .filter(|f| f.rule == LintRule::W1MalformedWaiver)
            .collect();
        assert_eq!(w1.len(), 1);
        assert!(!w1[0].waived);
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// dasr-lint: allow(D1) reason=\"stale\"\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert!(lint.findings.is_empty());
        assert_eq!(lint.unused_waivers, vec![1]);
    }

    #[test]
    fn malformed_entry_is_w1() {
        let src = "// dasr-lint: entry(D1)\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
        let dangling = "// dasr-lint: entry(G1)\nconst X: u32 = 1;\n";
        let lint = lint_source("crates/core/src/x.rs", dangling, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
    }

    #[test]
    fn findings_serialize_to_jsonl() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let json = lint.findings[0].to_json().write();
        let parsed = dasr_core::json::parse(&json).unwrap();
        assert_eq!(parsed.get("rule").unwrap().str().unwrap(), "D1-wall-clock");
        assert_eq!(parsed.get("line").unwrap().num().unwrap(), 1.0);
        assert!(!parsed.get("waived").unwrap().bool().unwrap());
    }

    #[test]
    fn graph_findings_carry_detail_and_are_waivable() {
        let dir = std::env::temp_dir().join("dasr_lint_detail_test");
        let src_dir = dir.join("crates/a/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "// dasr-lint: entry(G3)\nfn dispatch(xs: &[u32]) { decode(xs); }\n\
             fn decode(xs: &[u32]) {\n    // dasr-lint: allow(G3) reason=\"len-checked by caller\"\n    let a = xs[0];\n}\n",
        )
        .unwrap();
        let ws = lint_tree(&dir, 1).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(ws.active_count(), 0);
        assert_eq!(ws.waived_count(), 1);
        let f = &ws.findings[0];
        assert_eq!(f.rule, LintRule::G3PanicPath);
        assert!(f.detail.as_deref().unwrap().contains("dasr_a::dispatch"));
        assert_eq!(f.reason.as_deref(), Some("len-checked by caller"));
        assert_eq!(ws.entry_fns, 1);
    }
}
