//! `dasr-lint` — the workspace invariant linter.
//!
//! A dependency-free static-analysis pass (hand-rolled token scanner, no
//! `syn`, no crates.io) that enforces the project's determinism,
//! render-from-structure, and hot-path allocation rules over the
//! workspace source. The invariants it pins are the ones the whole
//! verification story rests on — oracle equivalence, 1/2/8-thread
//! bit-identity, trace-derived histograms — moved from "a property test
//! might catch it" to "CI fails the moment a PR writes it".
//!
//! Rules (see [`rules::LintRule`]): **D1** no wall clock outside
//! `core::obs`, **D2** no `HashMap`/`HashSet` iteration in deterministic
//! modules, **D3** no ambient randomness outside tests, **R1** no
//! `String` fields stored in trace/event/metric types, **F1** no
//! NaN-unsafe float ordering outside the stats kernels, **A1** no
//! allocation under a `no-alloc` marker, **W1** malformed waivers.
//!
//! Violations are waived in place with a mandatory reason:
//!
//! ```text
//! // dasr-lint: allow(D2) reason="order-independent sum over values"
//! ```
//!
//! A standalone waiver comment covers findings on the line below it; a
//! trailing waiver comment covers its own line. Waivers are counted and
//! reported, and a missing reason is itself a finding (rule W1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod lexer;
pub mod rules;

use lexer::Directive;
use rules::{LintRule, RawFinding, Scope};
use std::path::{Path, PathBuf};

pub use dasr_core::json::Json;

/// One lint finding, waived or active.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: LintRule,
    /// The trimmed source line (truncated to 160 chars).
    pub snippet: String,
    /// Whether an in-source waiver covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

impl Finding {
    /// Serializes the finding as one JSON object (one JSONL row).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("file".to_string(), Json::Str(self.file.clone())),
            ("line".to_string(), Json::Num(f64::from(self.line))),
            ("rule".to_string(), Json::Str(self.rule.name().to_string())),
            ("snippet".to_string(), Json::Str(self.snippet.clone())),
            ("waived".to_string(), Json::Bool(self.waived)),
        ];
        if let Some(reason) = &self.reason {
            fields.push(("reason".to_string(), Json::Str(reason.clone())));
        }
        Json::Obj(fields)
    }
}

/// Lint result for one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// All findings, sorted by line then rule.
    pub findings: Vec<Finding>,
    /// Lines of well-formed waivers that matched no finding.
    pub unused_waivers: Vec<u32>,
}

/// Classifies a workspace-relative path into a rule [`Scope`].
pub fn classify(rel: &str) -> Scope {
    let deterministic = [
        "crates/core/src",
        "crates/engine/src",
        "crates/fleet/src",
        "crates/stats/src",
        "crates/store/src",
    ]
    .iter()
    .any(|p| rel.starts_with(p));
    Scope {
        deterministic,
        wallclock_exempt: rel.starts_with("crates/core/src/obs"),
        float_exempt: rel.starts_with("crates/stats/src"),
    }
}

fn snippet_of(src_lines: &[&str], line: u32) -> String {
    let text = src_lines.get(line as usize - 1).map_or("", |s| s.trim());
    let mut s = String::with_capacity(text.len().min(160));
    for c in text.chars().take(160) {
        s.push(c);
    }
    s
}

/// Lints one file's source text under the scope for `rel_path`.
pub fn lint_source(rel_path: &str, src: &str, scope: Scope) -> FileLint {
    let lexed = lexer::lex(src);
    let in_test = rules::test_mask(&lexed.tokens);
    let marker_lines: Vec<u32> = lexed
        .directives
        .iter()
        .filter_map(|d| match d {
            Directive::NoAlloc { line } => Some(*line),
            _ => None,
        })
        .collect();
    let no_alloc = rules::no_alloc_mask(&lexed.tokens, &marker_lines);
    let raw = rules::scan(&lexed.tokens, &in_test, &no_alloc, scope);
    let src_lines: Vec<&str> = src.lines().collect();

    // Well-formed waivers, plus W1 findings for malformed directives.
    struct Waiver {
        /// The line the directive sits on (for unused-waiver reports).
        line: u32,
        /// The line the waiver *covers*: its own line for a trailing
        /// comment, the next line for a standalone comment line.
        covers: u32,
        rules: Vec<LintRule>,
        reason: String,
        used: bool,
    }
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let w1 = |line: u32| RawFinding {
        rule: LintRule::W1MalformedWaiver,
        line,
    };
    let mut w1_raw: Vec<RawFinding> = Vec::new();
    for d in &lexed.directives {
        match d {
            Directive::NoAlloc { .. } => {}
            Directive::Unknown { line, .. } => w1_raw.push(w1(*line)),
            Directive::Allow {
                line,
                rules: names,
                reason,
            } => {
                let parsed: Option<Vec<LintRule>> =
                    names.iter().map(|n| LintRule::from_name(n)).collect();
                match (parsed, reason) {
                    (Some(rules), Some(reason))
                        if !rules.is_empty() && !reason.trim().is_empty() =>
                    {
                        // A standalone comment line waives the line
                        // below; a trailing comment waives its own line.
                        let standalone = !lexed.tokens.iter().any(|t| t.line == *line);
                        waivers.push(Waiver {
                            line: *line,
                            covers: if standalone { *line + 1 } else { *line },
                            rules,
                            reason: reason.clone(),
                            used: false,
                        });
                    }
                    // Unknown rule, empty rule list, or missing/empty
                    // reason: the waiver itself is the violation.
                    _ => w1_raw.push(w1(*line)),
                }
            }
        }
    }

    for f in raw.iter().chain(w1_raw.iter()) {
        let mut waived = false;
        let mut reason = None;
        if f.rule != LintRule::W1MalformedWaiver {
            for w in waivers.iter_mut() {
                if w.covers == f.line && w.rules.contains(&f.rule) {
                    waived = true;
                    reason = Some(w.reason.clone());
                    w.used = true;
                    break;
                }
            }
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line: f.line,
            rule: f.rule,
            snippet: snippet_of(&src_lines, f.line),
            waived,
            reason,
        });
    }
    findings.sort_by_key(|f| (f.line, f.rule));

    FileLint {
        findings,
        unused_waivers: waivers.iter().filter(|w| !w.used).map(|w| w.line).collect(),
    }
}

/// Aggregate lint result over a workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings across all files, in file order.
    pub findings: Vec<Finding>,
    /// `(file, line)` of well-formed waivers that matched no finding.
    pub unused_waivers: Vec<(String, u32)>,
}

impl WorkspaceLint {
    /// Findings not covered by a waiver (these fail `--deny-all`).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Number of active (unwaived) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Serializes every finding as JSONL (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_json().write());
            out.push('\n');
        }
        out
    }
}

/// Source roots scanned inside a workspace: the facade crate plus every
/// `crates/*` library. Vendored shims and lint fixtures are deliberately
/// excluded.
fn source_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        roots.push(facade);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    Ok(roots)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Lints every `.rs` file under the workspace source roots of `root`
/// (`src/` and `crates/*/src/`), classifying each by path.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceLint> {
    let mut files = Vec::new();
    for src_root in source_roots(root)? {
        collect_rs_files(&src_root, &mut files)?;
    }
    let mut ws = WorkspaceLint::default();
    for path in files {
        let rel = rel_path(root, &path);
        let src = std::fs::read_to_string(&path)?;
        let file = lint_source(&rel, &src, classify(&rel));
        ws.files_scanned += 1;
        ws.findings.extend(file.findings);
        ws.unused_waivers
            .extend(file.unused_waivers.into_iter().map(|l| (rel.clone(), l)));
    }
    Ok(ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert!(classify("crates/engine/src/locks.rs").deterministic);
        assert!(!classify("crates/engine/src/locks.rs").wallclock_exempt);
        assert!(classify("crates/core/src/obs/metrics.rs").wallclock_exempt);
        assert!(classify("crates/stats/src/quantile.rs").float_exempt);
        assert!(classify("crates/store/src/record.rs").deterministic);
        assert!(!classify("crates/store/src/record.rs").float_exempt);
        // The read fast path decodes and prunes deterministically too.
        assert!(classify("crates/store/src/cursor.rs").deterministic);
        assert!(classify("crates/store/src/codec.rs").deterministic);
        assert!(!classify("crates/telemetry/src/lib.rs").deterministic);
        assert!(!classify("src/lib.rs").deterministic);
    }

    #[test]
    fn waiver_covers_same_and_next_line() {
        let src = "\
fn f() {\n\
    // dasr-lint: allow(D1) reason=\"profiling scratch\"\n\
    let t = std::time::Instant::now();\n\
    let u = std::time::Instant::now(); // dasr-lint: allow(D1) reason=\"same line\"\n\
    let v = std::time::Instant::now();\n\
}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let waived: Vec<bool> = lint.findings.iter().map(|f| f.waived).collect();
        assert_eq!(waived, vec![true, true, false]);
        assert!(lint.unused_waivers.is_empty());
        assert_eq!(
            lint.findings[0].reason.as_deref(),
            Some("profiling scratch")
        );
    }

    #[test]
    fn missing_reason_is_w1() {
        let src = "// dasr-lint: allow(D2)\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
        assert!(!lint.findings[0].waived);
    }

    #[test]
    fn unknown_rule_is_w1() {
        let src = "// dasr-lint: allow(Z9) reason=\"nope\"\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, LintRule::W1MalformedWaiver);
    }

    #[test]
    fn w1_cannot_be_waived() {
        let src = "\
// dasr-lint: allow(W1) reason=\"try to waive the waiver rule\"\n\
// dasr-lint: allow(D2)\n\
fn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let w1: Vec<&Finding> = lint
            .findings
            .iter()
            .filter(|f| f.rule == LintRule::W1MalformedWaiver)
            .collect();
        assert_eq!(w1.len(), 1);
        assert!(!w1[0].waived);
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// dasr-lint: allow(D1) reason=\"stale\"\nfn f() {}\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        assert!(lint.findings.is_empty());
        assert_eq!(lint.unused_waivers, vec![1]);
    }

    #[test]
    fn findings_serialize_to_jsonl() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let lint = lint_source("crates/core/src/x.rs", src, Scope::strict());
        let json = lint.findings[0].to_json().write();
        let parsed = dasr_core::json::parse(&json).unwrap();
        assert_eq!(parsed.get("rule").unwrap().str().unwrap(), "D1-wall-clock");
        assert_eq!(parsed.get("line").unwrap().num().unwrap(), 1.0);
        assert!(!parsed.get("waived").unwrap().bool().unwrap());
    }
}
