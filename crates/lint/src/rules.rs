//! The lint rule table and the token-level detection passes.
//!
//! Mirrors the `RuleId` idiom from `dasr_core::rules`: a dense enum with
//! stable codes, a `COUNT`, an `ALL` table in wire order, and name
//! round-tripping — so findings serialize with stable machine-readable
//! identifiers.

use crate::lexer::{Kind, Tok};

/// Stable identifier for every lint rule.
///
/// Codes (`D1`…`W1`) and names are part of the report format; new rules
/// append, existing ones never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// D1 — wall clock in deterministic code: `Instant::now` /
    /// `SystemTime` anywhere outside the `core::obs` timer layer.
    D1WallClock,
    /// D2 — iteration over `HashMap`/`HashSet` in deterministic modules:
    /// iteration order is randomized per process, so any fold over it is
    /// nondeterministic unless routed through a sorted adapter.
    D2MapIteration,
    /// D3 — ambient randomness: `thread_rng`, `rand::random`, or
    /// entropy-seeded constructors outside test code.
    D3AmbientRandomness,
    /// R1 — render-from-structure: trace/event/metric types must not
    /// store `String` fields; human text is derived at print time.
    R1StoredText,
    /// F1 — NaN-unsafe ordering: `partial_cmp(..).unwrap()`/`.expect()`
    /// outside the all-finite-guarded stats kernels.
    F1NanUnsafeOrder,
    /// A1 — allocation in a `// dasr-lint: no-alloc` function body.
    A1AllocInNoAlloc,
    /// W1 — malformed waiver: unknown rule, missing/empty `reason`, or
    /// an unparseable `dasr-lint:` directive. Never waivable.
    W1MalformedWaiver,
    /// G1 — transitive determinism taint: a function that directly uses
    /// wall-clock time, ambient randomness, or `HashMap`/`HashSet`
    /// iteration and is *reachable* (over the approximate call graph)
    /// from a `// dasr-lint: entry(G1)` entry point.
    G1TransitiveTaint,
    /// G2 — transitive allocation under a `no-alloc` marker: the marked
    /// function calls (directly or through any chain of workspace
    /// functions) something that allocates. Flagged at the first call
    /// edge out of the marked function.
    G2AllocReachability,
    /// G3 — panic path: a function containing `unwrap`/`expect` or
    /// indexing reachable from a `// dasr-lint: entry(G3)` entry point
    /// (engine dispatch, store read paths). One finding per function,
    /// at its first panic site.
    G3PanicPath,
}

impl LintRule {
    /// Number of rules.
    pub const COUNT: usize = 10;

    /// Every rule, in stable wire order (new rules append, nothing
    /// renumbers).
    pub const ALL: [LintRule; Self::COUNT] = [
        LintRule::D1WallClock,
        LintRule::D2MapIteration,
        LintRule::D3AmbientRandomness,
        LintRule::R1StoredText,
        LintRule::F1NanUnsafeOrder,
        LintRule::A1AllocInNoAlloc,
        LintRule::W1MalformedWaiver,
        LintRule::G1TransitiveTaint,
        LintRule::G2AllocReachability,
        LintRule::G3PanicPath,
    ];

    /// Short stable code, e.g. `"D2"`.
    pub fn code(self) -> &'static str {
        match self {
            LintRule::D1WallClock => "D1",
            LintRule::D2MapIteration => "D2",
            LintRule::D3AmbientRandomness => "D3",
            LintRule::R1StoredText => "R1",
            LintRule::F1NanUnsafeOrder => "F1",
            LintRule::A1AllocInNoAlloc => "A1",
            LintRule::W1MalformedWaiver => "W1",
            LintRule::G1TransitiveTaint => "G1",
            LintRule::G2AllocReachability => "G2",
            LintRule::G3PanicPath => "G3",
        }
    }

    /// Full stable name, e.g. `"D2-map-iteration"`.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::D1WallClock => "D1-wall-clock",
            LintRule::D2MapIteration => "D2-map-iteration",
            LintRule::D3AmbientRandomness => "D3-ambient-randomness",
            LintRule::R1StoredText => "R1-stored-text",
            LintRule::F1NanUnsafeOrder => "F1-nan-unsafe-order",
            LintRule::A1AllocInNoAlloc => "A1-alloc-in-no-alloc",
            LintRule::W1MalformedWaiver => "W1-malformed-waiver",
            LintRule::G1TransitiveTaint => "G1-transitive-taint",
            LintRule::G2AllocReachability => "G2-alloc-reachability",
            LintRule::G3PanicPath => "G3-panic-path",
        }
    }

    /// One-line human description (derived text, never stored).
    pub fn description(self) -> &'static str {
        match self {
            LintRule::D1WallClock => "wall clock (Instant::now/SystemTime) outside core::obs",
            LintRule::D2MapIteration => "HashMap/HashSet iteration in a deterministic module",
            LintRule::D3AmbientRandomness => "ambient randomness outside test code",
            LintRule::R1StoredText => "String field stored in a trace/event/metric type",
            LintRule::F1NanUnsafeOrder => "partial_cmp(..).unwrap()/expect() float ordering",
            LintRule::A1AllocInNoAlloc => "allocation inside a no-alloc function",
            LintRule::W1MalformedWaiver => "malformed dasr-lint directive or waiver",
            LintRule::G1TransitiveTaint => {
                "nondeterministic source reachable from a deterministic entry point"
            }
            LintRule::G2AllocReachability => {
                "no-alloc function calls a transitively allocating helper"
            }
            LintRule::G3PanicPath => "unwrap/expect/indexing reachable from an audited entry point",
        }
    }

    /// Multi-line rationale shown by `dasr-lint --explain <RULE>`
    /// (derived text, never stored).
    pub fn rationale(self) -> &'static str {
        match self {
            LintRule::D1WallClock => {
                "Every verification artifact in this workspace (oracle equivalence, \
                 1/2/8-thread bit-identity, replay fidelity) assumes runs are pure \
                 functions of their seeds. A wall-clock read anywhere on a decision \
                 or simulation path silently breaks that. Wall-clock timers are \
                 allowed only inside core::obs, which is excluded from the \
                 determinism contract by design."
            }
            LintRule::D2MapIteration => {
                "std HashMap/HashSet iteration order is randomized per process. Any \
                 fold, event emission, or report built by iterating one is \
                 nondeterministic even with fixed seeds. Route through a sorted \
                 adapter or a BTree collection, or waive with a reason explaining \
                 why the fold is order-independent."
            }
            LintRule::D3AmbientRandomness => {
                "All randomness must flow from explicit, seedable streams \
                 (SplitMix64 tenant seeds). thread_rng/from_entropy/rand::random \
                 pull entropy from the OS and make runs unreproducible."
            }
            LintRule::R1StoredText => {
                "Render-from-structure: trace, event, and metric types carry \
                 structured data only; human text is derived at print time. A \
                 stored String invites formatting drift between producers and \
                 makes byte-identity meaningless."
            }
            LintRule::F1NanUnsafeOrder => {
                "partial_cmp(..).unwrap() panics on NaN, and under sort_by a NaN \
                 breaks the total-order contract (UB-adjacent ordering bugs). Use \
                 total_cmp, or the all-finite-guarded stats kernels."
            }
            LintRule::A1AllocInNoAlloc => {
                "A `// dasr-lint: no-alloc` marker promises the function body \
                 performs no heap allocation: no collect/to_vec/to_string/clone \
                 calls, no vec!/format! macros, no Vec/String/Box constructors. \
                 Hot dispatch paths use caller-owned scratch instead."
            }
            LintRule::W1MalformedWaiver => {
                "A waiver without a reason is a suppressed finding nobody can \
                 audit. Every allow(...) must parse, name real rules, and carry a \
                 non-empty reason=\"...\". W1 itself can never be waived."
            }
            LintRule::G1TransitiveTaint => {
                "Token-level rules (D1/D2/D3) only see the file they are in; a \
                 deterministic entry point calling a helper two crates away that \
                 reads the clock passes them silently. G1 builds the workspace \
                 call graph, seeds taint at every direct wall-clock / ambient-rng \
                 / map-iteration use, propagates it caller-ward to a fixpoint, and \
                 flags every tainted source line reachable from a function marked \
                 `// dasr-lint: entry(G1)` (policy decide, fleet folds, store \
                 codec). The finding sits on the offending line, not the entry."
            }
            LintRule::G2AllocReachability => {
                "A `no-alloc` marker used to mean only the marked body was \
                 scanned (rule A1). G2 makes the marker transitive: the whole \
                 workspace callee closure must be allocation-free. The finding is \
                 emitted at the first call edge out of the marked function whose \
                 callee (or anything it transitively calls) allocates, with the \
                 offending chain in the detail."
            }
            LintRule::G3PanicPath => {
                "Engine dispatch and store read paths must not panic on untrusted \
                 input: a poisoned segment byte or a stale index must surface as \
                 an error, not abort the process. G3 walks the call graph from \
                 `// dasr-lint: entry(G3)` functions and reports each reachable \
                 function containing unwrap/expect or slice/array indexing — one \
                 finding per function, at its first panic site. Fix by \
                 propagating errors; waive bounded indexing with the invariant \
                 that bounds it."
            }
        }
    }

    /// A worked waiver (or fix) example for `--explain` output.
    pub fn waiver_example(self) -> &'static str {
        match self {
            LintRule::D1WallClock => {
                "// dasr-lint: allow(D1) reason=\"profiling scratch, not on a decision path\""
            }
            LintRule::D2MapIteration => {
                "// dasr-lint: allow(D2) reason=\"order-independent sum over values\""
            }
            LintRule::D3AmbientRandomness => {
                "// dasr-lint: allow(D3) reason=\"one-shot seed generation in a CLI tool\""
            }
            LintRule::R1StoredText => {
                "// dasr-lint: allow(R1) reason=\"interned label id, rendered elsewhere\""
            }
            LintRule::F1NanUnsafeOrder => "fix: a.total_cmp(&b) — no waiver needed",
            LintRule::A1AllocInNoAlloc => {
                "// dasr-lint: allow(A1) reason=\"cold error branch, never on the hot path\""
            }
            LintRule::W1MalformedWaiver => "not waivable: fix the directive instead",
            LintRule::G1TransitiveTaint => {
                "// dasr-lint: allow(G1) reason=\"diagnostic counter, excluded from replay\""
            }
            LintRule::G2AllocReachability => {
                "// dasr-lint: allow(G2) reason=\"callee allocates only on first call (lazy init)\""
            }
            LintRule::G3PanicPath => {
                "// dasr-lint: allow(G3) reason=\"index masked by capacity; strict-invariants asserts bounds\""
            }
        }
    }

    /// Parses a code (`"D2"`) or full name (`"D2-map-iteration"`).
    pub fn from_name(s: &str) -> Option<LintRule> {
        Self::ALL
            .iter()
            .copied()
            .find(|r| r.code() == s || r.name() == s)
    }
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// Inside a deterministic module tree (`core`, `engine`, `fleet`,
    /// `stats` non-test code): D2 and D3 apply.
    pub deterministic: bool,
    /// Inside the `core::obs` timer layer: D1 exempt (wall-clock timers
    /// live there by design, excluded from the determinism contract).
    pub wallclock_exempt: bool,
    /// Inside the all-finite-guarded stats kernels: F1 exempt.
    pub float_exempt: bool,
}

impl Scope {
    /// The strictest scope: every rule applies. Used for explicit file
    /// arguments (fixtures, experiments).
    pub fn strict() -> Scope {
        Scope {
            deterministic: true,
            wallclock_exempt: false,
            float_exempt: false,
        }
    }
}

/// A raw rule hit before waiver application: rule plus source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFinding {
    /// The violated rule.
    pub rule: LintRule,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Index of the offending token in the file's token stream (lets the
    /// item parser attribute hits to enclosing functions).
    pub tok: usize,
}

/// Trace/event/metric types protected by R1 (render-from-structure).
pub const R1_PROTECTED_TYPES: &[&str] = &[
    "DecisionTrace",
    "ResourceTrace",
    "RuleFire",
    "RuleHistogram",
    "Explanation",
    "RunEvent",
    "EventKind",
    "DenyReason",
    "BalloonPhase",
    "MetricRegistry",
    "FixedHistogram",
    "FleetSummary",
    "SampleRecord",
    // dasr-store record and index types: what goes on disk is structure,
    // never pre-rendered text.
    "StoredRecord",
    "RecordPayload",
    "RunId",
    "IndexEntry",
    "TenantFilter",
    "KindSet",
    "FireTally",
    "FireCounts",
    "StoreStats",
];

/// Identifiers forbidden inside a `no-alloc` body (rule A1). `format`
/// and `vec` are only flagged as macro invocations (followed by `!`);
/// `Vec`/`String`/`Box` only as constructor paths.
const A1_FORBIDDEN_CALLS: &[&str] = &["collect", "to_vec", "to_string", "to_owned", "clone"];

/// Map methods whose call on a `HashMap`/`HashSet` receiver is
/// order-sensitive (rule D2).
const D2_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs every applicable detection pass over a token stream.
///
/// `in_test[i]` / `no_alloc[i]` mark tokens inside `#[cfg(test)]`/
/// `#[test]` items and inside `no-alloc` function bodies respectively
/// (see [`test_mask`] and [`no_alloc_mask`]).
pub fn scan(tokens: &[Tok], in_test: &[bool], no_alloc: &[bool], scope: Scope) -> Vec<RawFinding> {
    let mut out = Vec::new();
    scan_d1(tokens, in_test, scope, &mut out);
    if scope.deterministic {
        let map_names = collect_map_names(tokens, in_test);
        scan_d2(tokens, in_test, &map_names, &mut out);
    }
    scan_d3(tokens, in_test, &mut out);
    scan_r1(tokens, in_test, &mut out);
    scan_f1(tokens, in_test, scope, &mut out);
    scan_a1(tokens, no_alloc, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Marks tokens inside test-gated items: `#[cfg(test)] mod … { … }`,
/// `#[test] fn … { … }`, and anything else carrying a `test` attribute
/// (but not `cfg(not(test))`).
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = attr_span(tokens, i + 1);
            if is_test {
                // Skip any further attributes on the same item.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = attr_span(tokens, j + 1).0;
                }
                // Find the item body: first `{` before a top-level `;`.
                if let Some(open) = item_body(tokens, j) {
                    let close = match_brace(tokens, open);
                    for flag in mask.iter_mut().take(close + 1).skip(i) {
                        *flag = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Parses an attribute starting at the `[` token index; returns the
/// index just past the closing `]` and whether it gates test code.
fn attr_span(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].kind {
            Kind::Punct('[') => depth += 1,
            Kind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, has_test && !has_not);
                }
            }
            Kind::Ident(s) if s == "test" => has_test = true,
            Kind::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (tokens.len(), false)
}

/// Finds the `{` opening an item's body starting at `j`, stopping at a
/// top-level `;` (body-less items like `mod tests;`).
fn item_body(tokens: &[Tok], j: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(j) {
        match t.kind {
            Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
            Kind::Punct('{') if depth == 0 => return Some(k),
            Kind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            Kind::Punct('{') => depth += 1,
            Kind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Marks tokens inside function bodies annotated `// dasr-lint:
/// no-alloc`. The marker applies to the first `fn` at or below its
/// line.
pub fn no_alloc_mask(tokens: &[Tok], marker_lines: &[u32]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    for &line in marker_lines {
        let Some(fn_idx) = tokens
            .iter()
            .position(|t| t.line >= line && t.is_ident("fn"))
        else {
            continue;
        };
        let Some(open) = item_body(tokens, fn_idx) else {
            continue;
        };
        let close = match_brace(tokens, open);
        for flag in mask.iter_mut().take(close + 1).skip(open) {
            *flag = true;
        }
    }
    mask
}

fn is_path_sep(tokens: &[Tok], i: usize) -> bool {
    tokens[i].is_punct(':') && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// D1: `Instant::now` or any `SystemTime` mention.
pub(crate) fn scan_d1(tokens: &[Tok], in_test: &[bool], scope: Scope, out: &mut Vec<RawFinding>) {
    if scope.wallclock_exempt {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let hit = match t.ident() {
            Some("SystemTime") => true,
            Some("Instant") => {
                is_path_sep(tokens, i + 1) && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
            }
            _ => false,
        };
        if hit {
            out.push(RawFinding {
                rule: LintRule::D1WallClock,
                line: t.line,
                tok: i,
            });
        }
    }
}

/// Names declared with a `HashMap`/`HashSet` type or constructor in
/// non-test code: `name: HashMap<..>` fields/params and
/// `let name = HashMap::new()` bindings.
pub(crate) fn collect_map_names(tokens: &[Tok], in_test: &[bool]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        // `name : [&] [mut] path::to::HashMap …`
        if let Some(name) = tokens[i].ident() {
            let colon = i + 1;
            if tokens.get(colon).is_some_and(|t| t.is_punct(':'))
                && !is_path_sep(tokens, colon)
                && (i == 0 || !tokens[i - 1].is_punct(':'))
            {
                if let Some(last) = last_path_ident(tokens, colon + 1) {
                    if last == "HashMap" || last == "HashSet" {
                        push_unique(&mut names, name);
                    }
                }
            }
        }
        // `name = [path::]HashMap::new(…)` / `HashSet::with_capacity(…)`
        if i >= 1
            && tokens[i].is_punct('=')
            && !tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            && !matches!(tokens[i - 1].kind, Kind::Punct(_))
        {
            if let Some(name) = tokens[i - 1].ident() {
                if path_contains_map(tokens, i + 1) {
                    push_unique(&mut names, name);
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Last identifier of the type path starting at `j` (skipping `&`,
/// `mut`, `dyn`), stopping at `<` or any non-path token.
fn last_path_ident(tokens: &[Tok], mut j: usize) -> Option<&str> {
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn"))
    {
        j += 1;
    }
    let mut last = tokens.get(j)?.ident()?;
    j += 1;
    while is_path_sep(tokens, j) {
        j += 2;
        last = tokens.get(j)?.ident()?;
        j += 1;
    }
    Some(last)
}

/// Whether the expression path starting at `j` mentions `HashMap` or
/// `HashSet` before leaving path position.
fn path_contains_map(tokens: &[Tok], mut j: usize) -> bool {
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    loop {
        match tokens.get(j).and_then(Tok::ident) {
            Some("HashMap") | Some("HashSet") => return true,
            Some(_) => {
                j += 1;
                if is_path_sep(tokens, j) {
                    j += 2;
                } else {
                    return false;
                }
            }
            None => return false,
        }
    }
}

/// D2: order-sensitive method calls and `for`-loops over map names,
/// unless the same statement routes through a sorted adapter.
pub(crate) fn scan_d2(
    tokens: &[Tok],
    in_test: &[bool],
    map_names: &[String],
    out: &mut Vec<RawFinding>,
) {
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        // `name.iter()` style.
        if let Some(m) = tokens[i].ident() {
            if D2_ITER_METHODS.contains(&m)
                && i >= 2
                && tokens[i - 1].is_punct('.')
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
                && tokens[i - 2]
                    .ident()
                    .is_some_and(|n| map_names.iter().any(|x| x == n))
                && !sorted_adapter_follows(tokens, i)
            {
                out.push(RawFinding {
                    rule: LintRule::D2MapIteration,
                    line: tokens[i].line,
                    tok: i,
                });
            }
        }
        // `for pat in [&][mut] name {` — the expression ends at the map
        // name itself (method-call forms are caught above).
        if tokens[i].is_ident("for") {
            if let Some((expr_last, line)) = for_loop_expr_last(tokens, i) {
                if map_names.iter().any(|x| x == expr_last) {
                    out.push(RawFinding {
                        rule: LintRule::D2MapIteration,
                        line,
                        tok: i,
                    });
                }
            }
        }
    }
}

/// For a `for` keyword at `i`, returns the final identifier of the
/// iterated expression and its line, when the expression ends in a bare
/// identifier.
fn for_loop_expr_last(tokens: &[Tok], i: usize) -> Option<(&str, u32)> {
    // Find the `in` keyword at pattern depth 0.
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = tokens.get(j)?;
        match &t.kind {
            Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
            Kind::Ident(s) if s == "in" && depth == 0 => break j,
            Kind::Punct('{') | Kind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    };
    // Walk the expression to the loop body `{`.
    depth = 0;
    let mut k = in_idx + 1;
    let mut last: Option<&Tok> = None;
    loop {
        let t = tokens.get(k)?;
        match &t.kind {
            Kind::Punct('(') | Kind::Punct('[') => depth += 1,
            Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
            Kind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        last = Some(t);
        k += 1;
    }
    let t = last?;
    t.ident().map(|s| (s, t.line))
}

/// True when the statement containing the method call at `i` pipes the
/// iteration through a sorting adapter (identifier containing "sort" or
/// a BTree re-collection) before the statement ends.
fn sorted_adapter_follows(tokens: &[Tok], i: usize) -> bool {
    for t in tokens.iter().skip(i + 1).take(60) {
        match &t.kind {
            Kind::Punct(';') | Kind::Punct('{') => return false,
            Kind::Ident(s) if s.contains("sort") || s == "BTreeMap" || s == "BTreeSet" => {
                return true
            }
            _ => {}
        }
    }
    false
}

/// D3: ambient randomness — `thread_rng`, `ThreadRng`, `from_entropy`,
/// and `rand::random`.
pub(crate) fn scan_d3(tokens: &[Tok], in_test: &[bool], out: &mut Vec<RawFinding>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let hit = match t.ident() {
            Some("thread_rng") | Some("ThreadRng") | Some("from_entropy") => true,
            Some("random") => {
                i >= 3 && is_path_sep(tokens, i - 2) && tokens[i - 3].is_ident("rand")
            }
            _ => false,
        };
        if hit {
            out.push(RawFinding {
                rule: LintRule::D3AmbientRandomness,
                line: t.line,
                tok: i,
            });
        }
    }
}

/// R1: a `String` field inside a protected trace/event/metric type
/// definition.
fn scan_r1(tokens: &[Tok], in_test: &[bool], out: &mut Vec<RawFinding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let is_def = !in_test[i]
            && (tokens[i].is_ident("struct") || tokens[i].is_ident("enum"))
            && tokens
                .get(i + 1)
                .and_then(Tok::ident)
                .is_some_and(|n| R1_PROTECTED_TYPES.contains(&n));
        if !is_def {
            i += 1;
            continue;
        }
        let Some(open) = item_body(tokens, i + 2) else {
            i += 2;
            continue;
        };
        let close = match_brace(tokens, open);
        for (k, t) in tokens.iter().enumerate().take(close + 1).skip(open) {
            if t.is_ident("String") {
                out.push(RawFinding {
                    rule: LintRule::R1StoredText,
                    line: t.line,
                    tok: k,
                });
            }
        }
        i = close + 1;
    }
}

/// F1: `partial_cmp(…).unwrap()` / `.expect(…)` — a NaN poisons the
/// comparator and panics (or worse, under `sort_by`, breaks the total
/// order contract).
fn scan_f1(tokens: &[Tok], in_test: &[bool], scope: Scope, out: &mut Vec<RawFinding>) {
    if scope.float_exempt {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !t.is_ident("partial_cmp") {
            continue;
        }
        // Walk the argument list, then require `.unwrap` / `.expect`.
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(tt) = tokens.get(j) {
            match tt.kind {
                Kind::Punct('(') => depth += 1,
                Kind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let unwrapped = tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(j + 2)
                .and_then(Tok::ident)
                .is_some_and(|m| m == "unwrap" || m == "expect");
        if unwrapped {
            out.push(RawFinding {
                rule: LintRule::F1NanUnsafeOrder,
                line: t.line,
                tok: i,
            });
        }
    }
}

/// Whether the token at `i` is an allocation site: allocating calls
/// (`collect`, `clone`, `to_vec`, …), allocating macros (`vec!`,
/// `format!`), and allocating constructors (`Vec::new`, `String::from`,
/// `Box::new`). Shared by rule A1 (marked bodies only) and the graph
/// phase's per-function allocation facts (every body).
pub(crate) fn alloc_hit(tokens: &[Tok], i: usize) -> bool {
    let Some(name) = tokens[i].ident() else {
        return false;
    };
    if A1_FORBIDDEN_CALLS.contains(&name) {
        // Require call position to spare field names like `clone`.
        tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            || (tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) && is_path_sep(tokens, i + 1))
    } else if name == "vec" || name == "format" {
        tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
    } else if name == "Vec" || name == "String" || name == "Box" || name == "VecDeque" {
        is_path_sep(tokens, i + 1)
            && tokens
                .get(i + 3)
                .and_then(Tok::ident)
                .is_some_and(|m| matches!(m, "new" | "with_capacity" | "from" | "from_iter"))
    } else {
        false
    }
}

/// A1: allocation inside a `no-alloc` body.
fn scan_a1(tokens: &[Tok], no_alloc: &[bool], out: &mut Vec<RawFinding>) {
    for i in 0..tokens.len() {
        if no_alloc[i] && alloc_hit(tokens, i) {
            out.push(RawFinding {
                rule: LintRule::A1AllocInNoAlloc,
                line: tokens[i].line,
                tok: i,
            });
        }
    }
}

/// Allocation sites anywhere in non-test code — the graph phase's raw
/// material for per-function allocation facts (rule G2).
pub(crate) fn scan_alloc_all(tokens: &[Tok], in_test: &[bool]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !in_test[i] && alloc_hit(tokens, i) {
            out.push(RawFinding {
                rule: LintRule::G2AllocReachability,
                line: tokens[i].line,
                tok: i,
            });
        }
    }
    out
}

/// A potential panic site kind (rule G3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(..)` on an Option/Result.
    Unwrap,
    /// Slice/array indexing `x[i]` (panics when out of bounds).
    Index,
}

/// A raw panic site: kind, token index, line.
#[derive(Debug, Clone, Copy)]
pub struct PanicSite {
    /// What kind of panic site.
    pub kind: PanicKind,
    /// Token index of the site.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// Keywords that precede `[` without forming an index expression
/// (`let [a, b] = …`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "return", "in", "if", "else", "match", "while", "break", "move", "as", "mut", "ref",
];

/// Panic sites in non-test code: `.unwrap()`/`.expect(..)` calls and
/// index expressions (`[` preceded by an identifier, `)` or `]`).
pub(crate) fn scan_panics(tokens: &[Tok], in_test: &[bool]) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        match &t.kind {
            Kind::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                out.push(PanicSite {
                    kind: PanicKind::Unwrap,
                    tok: i,
                    line: t.line,
                });
            }
            Kind::Punct('[') if i >= 1 => {
                let prev = &tokens[i - 1];
                let indexes = match &prev.kind {
                    Kind::Ident(p) => !NON_INDEX_KEYWORDS.contains(&p.as_str()),
                    Kind::Punct(')') | Kind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    out.push(PanicSite {
                        kind: PanicKind::Index,
                        tok: i,
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str, scope: Scope) -> Vec<RawFinding> {
        let lexed = lex(src);
        let in_test = test_mask(&lexed.tokens);
        let markers: Vec<u32> = lexed
            .directives
            .iter()
            .filter_map(|d| match d {
                crate::lexer::Directive::NoAlloc { line } => Some(*line),
                _ => None,
            })
            .collect();
        let no_alloc = no_alloc_mask(&lexed.tokens, &markers);
        scan(&lexed.tokens, &in_test, &no_alloc, scope)
    }

    #[test]
    fn rule_names_round_trip() {
        for r in LintRule::ALL {
            assert_eq!(LintRule::from_name(r.code()), Some(r));
            assert_eq!(LintRule::from_name(r.name()), Some(r));
        }
        assert_eq!(LintRule::from_name("Z9"), None);
        assert_eq!(LintRule::ALL.len(), LintRule::COUNT);
    }

    #[test]
    fn cfg_test_bodies_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() {
                    let t = std::time::Instant::now();
                }
            }
        "#;
        assert!(scan_src(src, Scope::strict()).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = r#"
            #[cfg(not(test))]
            fn live() {
                let t = std::time::Instant::now();
            }
        "#;
        let hits = scan_src(src, Scope::strict());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, LintRule::D1WallClock);
    }

    #[test]
    fn map_len_is_not_iteration() {
        let src = r#"
            struct S { locks: HashMap<u32, u32> }
            impl S {
                fn size(&self) -> usize { self.locks.len() }
                fn probe(&self) -> bool { self.locks.contains_key(&1) }
                fn count(&self) -> usize {
                    let mut n = 0;
                    for i in 0..self.locks.len() { n += i; }
                    n
                }
            }
        "#;
        assert!(scan_src(src, Scope::strict()).is_empty());
    }

    #[test]
    fn sorted_adapter_escapes_d2() {
        let src = r#"
            struct S { m: HashMap<u32, u32> }
            impl S {
                fn sorted(&self) -> Vec<u32> {
                    let mut v: Vec<u32> = self.m.keys().copied().collect();
                    v.sort_unstable();
                    v
                }
            }
        "#;
        // The `.keys()` statement contains no sort adapter; the sort is
        // a separate statement — this *is* flagged, and the fix is to
        // chain or waive. Verify the flag fires, then the chained form
        // passes.
        let hits = scan_src(src, Scope::strict());
        assert_eq!(hits.len(), 1);
        let chained = r#"
            struct S { m: HashMap<u32, u32> }
            impl S {
                fn sorted(&self) -> Vec<u32> {
                    let mut v: Vec<u32> = self.m.keys().copied().collect::<Vec<_>>().sorted_vec();
                    v
                }
            }
        "#;
        assert!(scan_src(chained, Scope::strict()).is_empty());
    }

    #[test]
    fn no_alloc_marker_covers_only_next_fn() {
        let src = r#"
            // dasr-lint: no-alloc
            fn hot(&mut self) {
                self.scratch.push(1);
            }
            fn cold(&mut self) {
                let v: Vec<u32> = Vec::new();
            }
        "#;
        assert!(scan_src(src, Scope::strict()).is_empty());
        let bad = r#"
            // dasr-lint: no-alloc
            fn hot(&mut self) {
                let msg = format!("late {}", 1);
            }
        "#;
        let hits = scan_src(bad, Scope::strict());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, LintRule::A1AllocInNoAlloc);
    }
}
