//! Hand-rolled Rust token scanner.
//!
//! The linter needs far less than a real parser: identifiers, single-char
//! punctuation, and opaque literals, each tagged with a 1-based line
//! number — plus the `dasr-lint:` control comments. Everything inside
//! string/char literals and ordinary comments is invisible to the rule
//! passes, which is what lets the linter's own source spell out patterns
//! like `"partial_cmp"` without flagging itself.
//!
//! The scanner understands just enough real Rust to not mis-tokenize the
//! workspace: nested block comments, raw strings (`r#"…"#`), byte and
//! raw-byte strings, char literals vs lifetimes (`'x'` vs `'a`), raw
//! identifiers (`r#type`), and float literals vs range expressions
//! (`1.5` vs `0..10`).

/// A single token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// 1-based line number the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: Kind,
}

/// Token payload: just enough structure for rule matching.
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any literal — string, char, byte, number. Contents are opaque to
    /// the rule passes by design.
    Lit,
}

impl Tok {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, Kind::Ident(s) if s == name)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Kind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A `// dasr-lint: ...` control comment.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// A `no-alloc` marker: the next `fn` at or below this line must not
    /// allocate (rule A1 scans its body).
    NoAlloc {
        /// Line of the marker comment.
        line: u32,
    },
    /// An `allow(<rules>) reason="..."` waiver for the same or the next
    /// line.
    Allow {
        /// Line of the waiver comment.
        line: u32,
        /// Rule codes or names listed inside `allow(...)`.
        rules: Vec<String>,
        /// The mandatory justification; `None` or empty is itself a
        /// finding (rule W1).
        reason: Option<String>,
    },
    /// An `entry(<rules>)` marker: the next `fn` at or below this line
    /// is a graph-analysis entry point for the listed rules (G1
    /// determinism taint, G3 panic-path audit).
    Entry {
        /// Line of the marker comment.
        line: u32,
        /// Rule codes or names listed inside `entry(...)`.
        rules: Vec<String>,
    },
    /// Anything else after the `dasr-lint:` prefix — malformed, always
    /// reported as W1.
    Unknown {
        /// Line of the malformed directive.
        line: u32,
        /// The unrecognized payload.
        text: String,
    },
}

impl Directive {
    /// The line the directive sits on.
    pub fn line(&self) -> u32 {
        match self {
            Directive::NoAlloc { line }
            | Directive::Allow { line, .. }
            | Directive::Entry { line, .. }
            | Directive::Unknown { line, .. } => *line,
        }
    }
}

/// Scanner output: the token stream plus all control directives found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Directives in source order.
    pub directives: Vec<Directive>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenizes `src`, collecting `dasr-lint:` directives from line
/// comments along the way.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if let Some(d) = parse_directive(&src[start..i], line) {
                    out.directives.push(d);
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let l = line;
                skip_string(b, &mut i, &mut line);
                out.tokens.push(Tok {
                    line: l,
                    kind: Kind::Lit,
                });
            }
            b'\'' => {
                let l = line;
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: '\n', '\'', '\u{1F600}'.
                    i += 3; // past quote, backslash, and escape intro
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Tok {
                        line: l,
                        kind: Kind::Lit,
                    });
                } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                    // Plain char literal 'x'.
                    i += 3;
                    out.tokens.push(Tok {
                        line: l,
                        kind: Kind::Lit,
                    });
                } else {
                    // Lifetime: consume the label, emit nothing.
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
            }
            b'0'..=b'9' => {
                let l = line;
                while i < b.len() {
                    match b[i] {
                        b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => i += 1,
                        // `1.5` is one literal; `0..10` stops at the range.
                        b'.' if b.get(i + 1).is_some_and(u8::is_ascii_digit) => i += 1,
                        _ => break,
                    }
                }
                out.tokens.push(Tok {
                    line: l,
                    kind: Kind::Lit,
                });
            }
            c if is_ident_start(c) => {
                if let Some(next_i) = try_string_prefix(b, i, &mut line) {
                    out.tokens.push(Tok {
                        line,
                        kind: Kind::Lit,
                    });
                    i = next_i;
                    continue;
                }
                let mut start = i;
                if c == b'r'
                    && b.get(i + 1) == Some(&b'#')
                    && b.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    // Raw identifier r#type — strip the prefix.
                    start = i + 2;
                    i += 2;
                }
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: Kind::Ident(src[start..i].to_string()),
                });
            }
            _ => {
                if c.is_ascii() {
                    out.tokens.push(Tok {
                        line,
                        kind: Kind::Punct(c as char),
                    });
                }
                i += 1;
            }
        }
    }
    out
}

/// Consumes a string-shaped literal starting with `r`/`b`/`br` at `i`
/// (raw string, byte string, byte char). Returns the index just past the
/// literal, or `None` when `i` starts a plain identifier.
fn try_string_prefix(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let c = b[i];
    if c != b'r' && c != b'b' {
        return None;
    }
    let mut j = i + 1;
    let raw = c == b'r' || (c == b'b' && b.get(j) == Some(&b'r'));
    if c == b'b' && b.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
    }
    if b.get(j) == Some(&b'"') {
        if raw {
            // Raw string: runs to `"` followed by `hashes` hash marks.
            let mut k = j + 1;
            while k < b.len() {
                if b[k] == b'\n' {
                    *line += 1;
                    k += 1;
                } else if b[k] == b'"' && b[k + 1..].iter().take(hashes).all(|&h| h == b'#') {
                    // Only a full run of hashes terminates the literal.
                    if b[k + 1..].len() >= hashes {
                        return Some(k + 1 + hashes);
                    }
                    k += 1;
                } else {
                    k += 1;
                }
            }
            return Some(b.len());
        }
        // b"..." — ordinary escapes.
        let mut k = j;
        skip_string(b, &mut k, line);
        return Some(k);
    }
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        // Byte char literal b'x' / b'\n'.
        let mut k = i + 2;
        if b.get(k) == Some(&b'\\') {
            k += 1;
        }
        k += 1;
        while k < b.len() && b[k] != b'\'' {
            k += 1;
        }
        return Some(k + 1);
    }
    None
}

/// Skips a `"…"` literal; `*i` must point at the opening quote.
fn skip_string(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                if b.get(*i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Parses one line comment into a directive, if it carries the
/// `dasr-lint:` prefix (after stripping the comment slashes).
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let payload = body.strip_prefix("dasr-lint:")?.trim();
    if payload == "no-alloc" {
        return Some(Directive::NoAlloc { line });
    }
    if let Some(rest) = payload.strip_prefix("entry") {
        let rest = rest.trim_start();
        let rules = rest
            .strip_prefix('(')
            .and_then(|r| r.find(')').map(|close| &r[..close]))
            .map(|inner| {
                inner
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect::<Vec<String>>()
            });
        return match rules {
            Some(rules) if !rules.is_empty() => Some(Directive::Entry { line, rules }),
            _ => Some(Directive::Unknown {
                line,
                text: payload.to_string(),
            }),
        };
    }
    if let Some(rest) = payload.strip_prefix("allow") {
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return Some(Directive::Unknown {
                line,
                text: payload.to_string(),
            });
        };
        let Some(close) = rest.find(')') else {
            return Some(Directive::Unknown {
                line,
                text: payload.to_string(),
            });
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        let tail = rest[close + 1..].trim();
        let reason = tail.strip_prefix("reason=").and_then(|r| {
            let r = r.trim_start().strip_prefix('"')?;
            let end = r.find('"')?;
            Some(r[..end].to_string())
        });
        return Some(Directive::Allow {
            line,
            rules,
            reason,
        });
    }
    Some(Directive::Unknown {
        line,
        text: payload.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Kind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            // partial_cmp in a comment
            /* Instant::now in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"SystemTime in a raw "string""#;
            let c = 'x';
            let b = b"bytes";
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.iter().any(|s| s.contains("partial_cmp")));
        assert!(!ids.iter().any(|s| s.contains("Instant")));
        assert!(!ids.iter().any(|s| s.contains("thread_rng")));
        assert!(!ids.iter().any(|s| s.contains("SystemTime")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert_eq!(
            ids,
            ["fn", "f", "x", "str", "str", "x"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* two\nlines */\nlet x = \"a\nb\";\nInstant";
        let lexed = lex(src);
        let inst = lexed.tokens.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(inst.line, 5);
    }

    #[test]
    fn range_vs_float() {
        let src = "for i in 0..10 { let x = 1.5; }";
        let lexed = lex(src);
        let puncts: Vec<char> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                Kind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        // The range dots survive as punctuation (not eaten by a float).
        assert!(puncts.windows(2).any(|w| w == ['.', '.']));
    }

    #[test]
    fn directives_parse() {
        let src = "\n// dasr-lint: no-alloc\nfn f() {}\nlet y = 1; // dasr-lint: allow(D2, F1) reason=\"order-independent sum\"\n// dasr-lint: allow(D1)\n// dasr-lint: frobnicate\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 4);
        assert_eq!(lexed.directives[0], Directive::NoAlloc { line: 2 });
        assert_eq!(
            lexed.directives[1],
            Directive::Allow {
                line: 4,
                rules: vec!["D2".to_string(), "F1".to_string()],
                reason: Some("order-independent sum".to_string()),
            }
        );
        assert_eq!(
            lexed.directives[2],
            Directive::Allow {
                line: 5,
                rules: vec!["D1".to_string()],
                reason: None,
            }
        );
        assert!(matches!(
            lexed.directives[3],
            Directive::Unknown { line: 6, .. }
        ));
    }

    #[test]
    fn raw_idents_are_stripped() {
        assert_eq!(idents("r#type"), vec!["type".to_string()]);
    }
}
