//! Workspace symbol graph: call resolution + reachability.
//!
//! Consumes every file's [`crate::parser::ParsedFile`] and builds one
//! approximate call graph for the graph passes (G1/G2/G3). Resolution
//! is name-based, deliberately simple, and its approximations are
//! documented (DESIGN.md §18):
//!
//! - **Path calls** (`f(..)`, `mod::f(..)`, `Type::m(..)`) expand the
//!   first segment through the calling file's `use` aliases, then
//!   suffix-match against every function's module-qualified path,
//!   shortening the call path one leading segment at a time (down to
//!   two segments) to survive re-exports. `std`/external paths match
//!   nothing and vanish.
//! - **Bare calls** (`f(..)` with a single segment and no alias)
//!   resolve to same-file free functions first, else workspace free
//!   functions with that name.
//! - **Method calls** (`.m(..)`) resolve to same-crate `impl`/`trait`
//!   methods named `m` when any exist, else the workspace-wide union of
//!   methods named `m` (the trait-method approximation — receivers are
//!   untyped, so every impl is a candidate).
//!
//! Over-approximation (a call edge that cannot happen at runtime) costs
//! a spurious finding that a waiver documents; under-approximation
//! (std-only calls, macro bodies) costs a missed finding that the
//! token rules usually still catch locally.
//!
//! Everything here iterates `Vec`s in deterministic order; the
//! `HashMap`s are keyed lookups only and are never iterated — the
//! linter holds itself to the same determinism bar it enforces.

use crate::parser::{CallKind, FnItem, ParsedFile};
use std::collections::HashMap;

/// One function node: the parsed item plus its owning file.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`SymbolGraph::files`].
    pub file: usize,
    /// The parsed function item.
    pub item: FnItem,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Workspace-relative file paths, sorted.
    pub files: Vec<String>,
    /// Function nodes, grouped by file in [`Self::files`] order, source
    /// order within a file — node ids are indices and are stable for a
    /// given file set.
    pub nodes: Vec<FnNode>,
    /// Per node, per call site (parallel to `item.calls`): resolved
    /// callee node ids, sorted.
    pub call_targets: Vec<Vec<Vec<usize>>>,
    /// Per node: union of all resolved callees, sorted + deduped.
    pub callees: Vec<Vec<usize>>,
}

/// Per-file lookup state used during resolution.
struct FileCtx {
    /// `alias -> target path` from the file's `use` items (last wins,
    /// matching shadowing).
    aliases: HashMap<String, Vec<String>>,
    /// Node-id range of this file's functions (contiguous).
    node_range: (usize, usize),
}

impl SymbolGraph {
    /// Builds the graph from parsed files. `parsed` must be sorted by
    /// path (the scan produces it that way); node ids follow that
    /// order, which is what makes reports thread-count independent.
    pub fn build(parsed: Vec<(String, ParsedFile)>) -> SymbolGraph {
        let mut g = SymbolGraph::default();
        let mut file_ctxs: Vec<FileCtx> = Vec::with_capacity(parsed.len());
        let mut parsed_calls: Vec<Vec<crate::parser::CallSite>> = Vec::new();

        for (path, pf) in parsed {
            let file_idx = g.files.len();
            g.files.push(path);
            let start = g.nodes.len();
            let mut aliases: HashMap<String, Vec<String>> = HashMap::new();
            for u in pf.uses {
                aliases.insert(u.alias, u.target);
            }
            for f in pf.fns {
                parsed_calls.push(f.calls.clone());
                g.nodes.push(FnNode {
                    file: file_idx,
                    item: f,
                });
            }
            file_ctxs.push(FileCtx {
                aliases,
                node_range: (start, g.nodes.len()),
            });
        }

        // Name tables: fn name -> node ids (insertion order == id order,
        // so the Vec values are sorted).
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, n) in g.nodes.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(id);
            if n.item.is_method {
                methods_by_name.entry(&n.item.name).or_default().push(id);
            } else {
                free_by_name.entry(&n.item.name).or_default().push(id);
            }
        }

        let mut all_targets: Vec<Vec<Vec<usize>>> = Vec::with_capacity(parsed_calls.len());
        for (id, calls) in parsed_calls.iter().enumerate() {
            let node = &g.nodes[id];
            let ctx = &file_ctxs[node.file];
            let crate_root = node.item.qualified.first().cloned().unwrap_or_default();
            let mut per_site: Vec<Vec<usize>> = Vec::with_capacity(calls.len());
            for call in calls {
                // The caller's impl type (second-to-last qualified
                // segment), for self-receiver resolution.
                let caller_type = if node.item.is_method {
                    let q = &node.item.qualified;
                    q.get(q.len().wrapping_sub(2)).cloned()
                } else {
                    None
                };
                let mut targets: Vec<usize> = match call.kind {
                    CallKind::Method => resolve_method(
                        &g.nodes,
                        &methods_by_name,
                        &crate_root,
                        caller_type.as_deref().filter(|_| call.self_recv),
                        &call.path[0],
                    ),
                    CallKind::Path => {
                        resolve_path(&g.nodes, &by_name, &free_by_name, ctx, &call.path)
                    }
                };
                targets.sort_unstable();
                targets.dedup();
                per_site.push(targets);
            }
            all_targets.push(per_site);
        }

        g.call_targets = all_targets;
        g.callees = g
            .call_targets
            .iter()
            .map(|sites| {
                let mut all: Vec<usize> = sites.iter().flatten().copied().collect();
                all.sort_unstable();
                all.dedup();
                all
            })
            .collect();
        g
    }

    /// Multi-source BFS from `entries` (pre-sorted node ids). Returns,
    /// per node, the entry that first reached it (`None` when
    /// unreachable). BFS order over sorted ids makes the witness
    /// deterministic.
    pub fn reach(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut witness: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if witness[e].is_none() {
                witness[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            let from = witness[n];
            for &c in &self.callees[n] {
                if witness[c].is_none() {
                    witness[c] = from;
                    queue.push_back(c);
                }
            }
        }
        witness
    }

    /// Per node: whether it allocates directly or through any chain of
    /// workspace callees (the G2 fact closure). Reverse-edge worklist
    /// propagation to a fixpoint (the graph has cycles).
    pub fn transitive_alloc(&self) -> Vec<bool> {
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (n, cs) in self.callees.iter().enumerate() {
            for &c in cs {
                callers[c].push(n);
            }
        }
        let mut alloc: Vec<bool> = self
            .nodes
            .iter()
            .map(|n| n.item.facts.alloc.is_some())
            .collect();
        let mut work: Vec<usize> = (0..self.nodes.len()).filter(|&n| alloc[n]).collect();
        while let Some(n) = work.pop() {
            for &caller in &callers[n] {
                if !alloc[caller] {
                    alloc[caller] = true;
                    work.push(caller);
                }
            }
        }
        alloc
    }

    /// A deterministic allocation witness chain starting at `from`:
    /// follows the smallest-id transitively-allocating callee until a
    /// direct allocation site is reached (or the hop cap). Returns
    /// qualified names.
    pub fn alloc_chain(&self, from: usize, alloc: &[bool]) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = from;
        let mut seen = vec![false; self.nodes.len()];
        for _ in 0..8 {
            chain.push(self.nodes[cur].item.qualified.join("::"));
            seen[cur] = true;
            if self.nodes[cur].item.facts.alloc.is_some() {
                break;
            }
            let next = self.callees[cur]
                .iter()
                .copied()
                .find(|&c| alloc[c] && !seen[c]);
            match next {
                Some(c) => cur = c,
                None => break,
            }
        }
        chain
    }

    /// The qualified name of node `id`.
    pub fn qname(&self, id: usize) -> String {
        self.nodes[id].item.qualified.join("::")
    }
}

/// Method names shadowed by ubiquitous std container/iterator/slice
/// APIs. A `.push(..)` or `.get(..)` receiver is almost always a `Vec`
/// or a slice, and resolving it to every workspace method of the same
/// name floods the graph with impossible edges (e.g. `Vec::push` →
/// `EventWheel::push`). These names never resolve — a documented
/// under-approximation; direct facts in the real callee still fire via
/// the token rules and non-shadowed call chains.
const STD_SHADOWED_METHODS: &[&str] = &[
    "push",
    "pop",
    "append",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "first",
    "last",
    "next",
    "peek",
    "take",
    "clone",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "push_str",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "entry",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "write",
    "write_all",
    "read",
    "read_exact",
    // Iterator/Option/Result combinators — `.map(..)` is (almost)
    // always the std adapter, never e.g. `FleetRunner::map`.
    "map",
    "filter",
    "max",
    "min",
    "sum",
    "count",
    // `.spawn(..)` is a `thread::Scope`/`Builder`; associated-fn spawns
    // (`StoreWriter::spawn(..)`) are path calls and still resolve.
    "spawn",
];

/// Method-call resolution, most precise rule first:
///
/// 1. `self.m(..)` inside `impl T` where `T::m` exists in the same
///    crate resolves to exactly `T::m` (mirrors Rust inherent-method
///    lookup; also rescues std-shadowed names like `self.append(..)`).
/// 2. Std-shadowed names (see [`STD_SHADOWED_METHODS`]) never resolve.
/// 3. Same-crate methods named `m` when any exist.
/// 4. Else the workspace-wide union (trait-method approximation).
fn resolve_method(
    nodes: &[FnNode],
    methods_by_name: &HashMap<&str, Vec<usize>>,
    crate_root: &str,
    self_type: Option<&str>,
    name: &str,
) -> Vec<usize> {
    if let Some(ty) = self_type {
        if let Some(all) = methods_by_name.get(name) {
            let own: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&id| {
                    let q = &nodes[id].item.qualified;
                    q.first().is_some_and(|r| r == crate_root)
                        && q.len() >= 2
                        && q[q.len() - 2] == ty
                })
                .collect();
            if !own.is_empty() {
                return own;
            }
        }
    }
    if STD_SHADOWED_METHODS.contains(&name) {
        return Vec::new();
    }
    let Some(all) = methods_by_name.get(name) else {
        return Vec::new();
    };
    let same_crate: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&id| {
            nodes[id]
                .item
                .qualified
                .first()
                .is_some_and(|r| r == crate_root)
        })
        .collect();
    if same_crate.is_empty() {
        all.clone()
    } else {
        same_crate
    }
}

/// Path-call resolution (see module docs for the strategy).
fn resolve_path(
    nodes: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    free_by_name: &HashMap<&str, Vec<usize>>,
    ctx: &FileCtx,
    path: &[String],
) -> Vec<usize> {
    // Expand the leading segment through the file's use aliases.
    let expanded: Vec<String> = match ctx.aliases.get(&path[0]) {
        Some(target) => {
            let mut e = target.clone();
            e.extend(path[1..].iter().cloned());
            e
        }
        None => path.to_vec(),
    };

    if expanded.len() == 1 {
        // Bare unaliased call: same-file free fns first, else workspace
        // free fns.
        let name = expanded[0].as_str();
        let Some(all) = free_by_name.get(name) else {
            return Vec::new();
        };
        let (lo, hi) = ctx.node_range;
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&id| id >= lo && id < hi)
            .collect();
        return if same_file.is_empty() {
            all.clone()
        } else {
            same_file
        };
    }

    // Suffix-match the expanded path against qualified names, dropping
    // leading segments (down to two) to survive crate-root re-exports.
    let name = expanded.last().map(String::as_str).unwrap_or_default();
    let Some(candidates) = by_name.get(name) else {
        return Vec::new();
    };
    let mut start = 0usize;
    while expanded.len() - start >= 2 {
        let suffix = &expanded[start..];
        let hits: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&id| nodes[id].item.qualified.ends_with(suffix))
            .collect();
        if !hits.is_empty() {
            return hits;
        }
        start += 1;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> SymbolGraph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(p, s)))
            .collect();
        SymbolGraph::build(parsed)
    }

    fn id_of(g: &SymbolGraph, q: &str) -> usize {
        (0..g.nodes.len()).find(|&i| g.qname(i) == q).unwrap()
    }

    #[test]
    fn same_file_bare_call_resolves() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); }\nfn helper() {}\n",
        )]);
        let top = id_of(&g, "dasr_a::top");
        let helper = id_of(&g, "dasr_a::helper");
        assert_eq!(g.callees[top], vec![helper]);
    }

    #[test]
    fn cross_crate_path_call_resolves_via_use() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "use dasr_b::codec;\nfn go() { codec::put(1); }\n",
            ),
            ("crates/b/src/codec.rs", "pub fn put(x: u32) {}\n"),
        ]);
        let go = id_of(&g, "dasr_a::go");
        let put = id_of(&g, "dasr_b::codec::put");
        assert_eq!(g.callees[go], vec![put]);
    }

    #[test]
    fn reexport_survives_suffix_shortening() {
        // `use dasr_b::Gadget` where Gadget really lives in dasr_b::w.
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "use dasr_b::Gadget;\nfn go() { Gadget::spin(); }\n",
            ),
            ("crates/b/src/w.rs", "impl Gadget { pub fn spin() {} }\n"),
        ]);
        let go = id_of(&g, "dasr_a::go");
        let spin = id_of(&g, "dasr_b::w::Gadget::spin");
        assert_eq!(g.callees[go], vec![spin]);
    }

    #[test]
    fn method_call_prefers_same_crate() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "impl Local { fn tick(&self) {} }\nfn go(x: &Local) { x.tick(); }\n",
            ),
            ("crates/b/src/lib.rs", "impl Remote { fn tick(&self) {} }\n"),
        ]);
        let go = id_of(&g, "dasr_a::go");
        let local = id_of(&g, "dasr_a::Local::tick");
        assert_eq!(g.callees[go], vec![local]);
    }

    #[test]
    fn method_call_falls_back_to_workspace_union() {
        let g = build(&[
            ("crates/a/src/lib.rs", "fn go(x: &T) { x.tick(); }\n"),
            ("crates/b/src/lib.rs", "impl R1 { fn tick(&self) {} }\n"),
            ("crates/c/src/lib.rs", "impl R2 { fn tick(&self) {} }\n"),
        ]);
        let go = id_of(&g, "dasr_a::go");
        assert_eq!(g.callees[go].len(), 2);
    }

    #[test]
    fn std_paths_resolve_to_nothing() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "use std::collections::HashMap;\nfn go() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
        )]);
        let go = id_of(&g, "dasr_a::go");
        assert!(g.callees[go].is_empty());
    }

    #[test]
    fn reach_picks_first_entry_witness() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "fn e1() { shared(); }\nfn e2() { shared(); }\nfn shared() {}\n",
        )]);
        let e1 = id_of(&g, "dasr_a::e1");
        let e2 = id_of(&g, "dasr_a::e2");
        let shared = id_of(&g, "dasr_a::shared");
        let witness = g.reach(&[e1, e2]);
        assert_eq!(witness[shared], Some(e1));
        assert_eq!(witness[e2], Some(e2));
    }

    #[test]
    fn self_receiver_resolves_to_own_impl_even_when_shadowed() {
        // `append` is on STD_SHADOWED_METHODS (Vec::append), so a plain
        // `x.append(..)` never resolves — but `self.append(..)` inside
        // `impl Store` must still bind to `Store::append`.
        let g = build(&[(
            "crates/a/src/store.rs",
            "struct Store;\nimpl Store {\n    fn append(&mut self) { let v: Vec<u8> = Vec::new(); drop(v); }\n    fn outer(&mut self) { self.append(); }\n}\nfn elsewhere(mut buf: Vec<u8>, mut other: Vec<u8>) { buf.append(&mut other); }\n",
        )]);
        let outer = id_of(&g, "dasr_a::store::Store::outer");
        let append = id_of(&g, "dasr_a::store::Store::append");
        let elsewhere = id_of(&g, "dasr_a::store::elsewhere");
        assert_eq!(g.callees[outer], vec![append]);
        assert!(
            g.callees[elsewhere].is_empty(),
            "non-self shadowed method must stay unresolved"
        );
        let alloc = g.transitive_alloc();
        assert!(alloc[outer], "self-call edge propagates alloc taint");
        assert!(!alloc[elsewhere]);
    }

    #[test]
    fn self_receiver_falls_back_when_own_impl_lacks_method() {
        // `self.helper()` where `impl Local` has no `helper` falls through
        // to normal resolution (same-crate preference).
        let g = build(&[(
            "crates/a/src/lib.rs",
            "struct Local;\nstruct Other;\nimpl Local {\n    fn run(&self) { self.helper(); }\n}\nimpl Other {\n    fn helper(&self) {}\n}\n",
        )]);
        let run = id_of(&g, "dasr_a::Local::run");
        let helper = id_of(&g, "dasr_a::Other::helper");
        assert_eq!(g.callees[run], vec![helper]);
    }

    #[test]
    fn transitive_alloc_closes_over_chains() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { bottom(); }\nfn bottom() { let v: Vec<u32> = Vec::new(); }\nfn clean() {}\n",
        )]);
        let alloc = g.transitive_alloc();
        assert!(alloc[id_of(&g, "dasr_a::top")]);
        assert!(alloc[id_of(&g, "dasr_a::mid")]);
        assert!(alloc[id_of(&g, "dasr_a::bottom")]);
        assert!(!alloc[id_of(&g, "dasr_a::clean")]);
        let chain = g.alloc_chain(id_of(&g, "dasr_a::top"), &alloc);
        assert_eq!(chain, vec!["dasr_a::top", "dasr_a::mid", "dasr_a::bottom"]);
    }
}
