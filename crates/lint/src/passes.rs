//! Phase-2 graph passes: G1 determinism taint, G2 no-alloc
//! reachability, G3 panic-path audit.
//!
//! Each pass walks the [`crate::graph::SymbolGraph`] built from the
//! whole file set and emits findings *at the offending source line*
//! (the fact site or call edge), never at the entry point — the fix or
//! waiver belongs where the violation is. Every loop runs over sorted
//! node ids, so the output order is a pure function of the file set.

use crate::graph::SymbolGraph;
use crate::rules::LintRule;

/// A graph-pass finding before waiver application.
#[derive(Debug, Clone)]
pub struct GraphFinding {
    /// Index into [`SymbolGraph::files`].
    pub file: usize,
    /// 1-based line of the fact or call edge.
    pub line: u32,
    /// G1, G2, or G3.
    pub rule: LintRule,
    /// Derived explanation: witness entry / allocation chain / site
    /// counts. Deterministic (qualified names and counts only).
    pub detail: String,
}

/// Runs all three graph passes; findings are grouped by pass but not
/// yet sorted (the caller merges them into per-file reports).
pub fn run_graph_passes(g: &SymbolGraph) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    g1_determinism_taint(g, &mut out);
    g2_alloc_reachability(g, &mut out);
    g3_panic_paths(g, &mut out);
    out
}

fn entries_for(g: &SymbolGraph, rule: LintRule) -> Vec<usize> {
    (0..g.nodes.len())
        .filter(|&id| g.nodes[id].item.entries.contains(&rule))
        .collect()
}

/// G1: every function carrying a direct nondeterminism fact (wall
/// clock, ambient rng, map iteration) that is reachable from an
/// `entry(G1)` function gets one finding per fact kind, at the fact's
/// first line.
fn g1_determinism_taint(g: &SymbolGraph, out: &mut Vec<GraphFinding>) {
    let entries = entries_for(g, LintRule::G1TransitiveTaint);
    if entries.is_empty() {
        return;
    }
    let witness = g.reach(&entries);
    for id in 0..g.nodes.len() {
        let Some(entry) = witness[id] else {
            continue;
        };
        let node = &g.nodes[id];
        let facts = [
            ("wall clock", node.item.facts.wallclock),
            ("ambient rng", node.item.facts.rng),
            ("map iteration", node.item.facts.map_iter),
        ];
        for (label, fact) in facts {
            let Some(fact) = fact else { continue };
            out.push(GraphFinding {
                file: node.file,
                line: fact.line,
                rule: LintRule::G1TransitiveTaint,
                detail: format!(
                    "{label} in `{}` ({} site(s)), reachable from entry `{}`",
                    g.qname(id),
                    fact.count,
                    g.qname(entry)
                ),
            });
        }
    }
}

/// G2: for every `no-alloc`-marked function, each call edge whose
/// callee set contains a transitively allocating function is a
/// finding at the call line, with the allocation chain as witness.
/// Direct allocation in the marked body stays rule A1's job.
fn g2_alloc_reachability(g: &SymbolGraph, out: &mut Vec<GraphFinding>) {
    let alloc = g.transitive_alloc();
    for id in 0..g.nodes.len() {
        let node = &g.nodes[id];
        if !node.item.no_alloc {
            continue;
        }
        let mut flagged_lines: Vec<u32> = Vec::new();
        for (site, call) in node.item.calls.iter().enumerate() {
            let Some(&bad) = g.call_targets[id][site].iter().find(|&&t| alloc[t]) else {
                continue;
            };
            if flagged_lines.contains(&call.line) {
                continue;
            }
            flagged_lines.push(call.line);
            let chain = g.alloc_chain(bad, &alloc);
            out.push(GraphFinding {
                file: node.file,
                line: call.line,
                rule: LintRule::G2AllocReachability,
                detail: format!(
                    "no-alloc fn `{}` calls allocating path: {}",
                    g.qname(id),
                    chain.join(" -> ")
                ),
            });
        }
    }
}

/// G3: every function containing unwrap/expect or indexing reachable
/// from an `entry(G3)` function gets ONE finding, at its first panic
/// site — one waiver (or fix) per function bounds the triage burden.
fn g3_panic_paths(g: &SymbolGraph, out: &mut Vec<GraphFinding>) {
    let entries = entries_for(g, LintRule::G3PanicPath);
    if entries.is_empty() {
        return;
    }
    let witness = g.reach(&entries);
    for id in 0..g.nodes.len() {
        let Some(entry) = witness[id] else {
            continue;
        };
        let node = &g.nodes[id];
        let unwraps = node.item.facts.unwraps;
        let indexing = node.item.facts.indexing;
        let line = match (unwraps, indexing) {
            (Some(u), Some(x)) => u.line.min(x.line),
            (Some(u), None) => u.line,
            (None, Some(x)) => x.line,
            (None, None) => continue,
        };
        out.push(GraphFinding {
            file: node.file,
            line,
            rule: LintRule::G3PanicPath,
            detail: format!(
                "`{}` has {} unwrap/expect and {} indexing site(s), reachable from entry `{}`",
                g.qname(id),
                unwraps.map_or(0, |f| f.count),
                indexing.map_or(0, |f| f.count),
                g.qname(entry)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_file, ParsedFile};

    fn run(files: &[(&str, &str)]) -> (SymbolGraph, Vec<GraphFinding>) {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse_file(p, s)))
            .collect();
        let g = SymbolGraph::build(parsed);
        let f = run_graph_passes(&g);
        (g, f)
    }

    #[test]
    fn g1_flags_reachable_taint_at_fact_line() {
        let (_, f) = run(&[(
            "crates/a/src/lib.rs",
            "// dasr-lint: entry(G1)\nfn decide() { helper(); }\nfn helper() {\n    let t = std::time::Instant::now();\n}\nfn unreached() {\n    let t = std::time::Instant::now();\n}\n",
        )]);
        let g1: Vec<&GraphFinding> = f
            .iter()
            .filter(|x| x.rule == LintRule::G1TransitiveTaint)
            .collect();
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].line, 4);
        assert!(g1[0].detail.contains("dasr_a::decide"));
    }

    #[test]
    fn g2_flags_cross_module_alloc_at_call_edge() {
        let (_, f) = run(&[
            (
                "crates/a/src/hot.rs",
                "use dasr_a::cold;\n// dasr-lint: no-alloc\nfn fast() {\n    cold::grow();\n}\n",
            ),
            (
                "crates/a/src/cold.rs",
                "pub fn grow() { let v: Vec<u32> = Vec::new(); }\n",
            ),
        ]);
        let g2: Vec<&GraphFinding> = f
            .iter()
            .filter(|x| x.rule == LintRule::G2AllocReachability)
            .collect();
        assert_eq!(g2.len(), 1);
        assert_eq!(g2[0].line, 4);
        assert!(g2[0].detail.contains("dasr_a::cold::grow"));
    }

    #[test]
    fn g3_one_finding_per_reachable_fn() {
        let (_, f) = run(&[(
            "crates/a/src/lib.rs",
            "// dasr-lint: entry(G3)\nfn dispatch(xs: &[u32]) { decode(xs); }\nfn decode(xs: &[u32]) {\n    let a = xs[0];\n    let b = xs.first().unwrap();\n    let c = xs.last().unwrap();\n}\n",
        )]);
        let g3: Vec<&GraphFinding> = f
            .iter()
            .filter(|x| x.rule == LintRule::G3PanicPath)
            .collect();
        // decode: one finding despite three panic sites; dispatch: none.
        assert_eq!(g3.len(), 1);
        assert_eq!(g3[0].line, 4);
        assert!(g3[0].detail.contains("2 unwrap/expect"));
        assert!(g3[0].detail.contains("1 indexing"));
    }

    #[test]
    fn no_entries_means_no_g1_g3() {
        let (_, f) = run(&[(
            "crates/a/src/lib.rs",
            "fn lonely() { let t = std::time::Instant::now(); let x = v[0]; }\n",
        )]);
        assert!(f.is_empty());
    }
}
