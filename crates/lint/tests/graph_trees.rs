//! Multi-file fixture trees for the graph passes (G1/G2/G3), plus the
//! determinism contract: the serialized report is bit-identical at any
//! worker thread count.
//!
//! Each tree under `fixtures/trees/` is a miniature workspace
//! (`crates/<name>/src/*.rs`) analyzed with [`lint_tree`], exercising
//! the shapes the resolver must handle: a diamond call graph, a
//! cross-crate path call, a cross-module call under a `no-alloc`
//! marker, and the trait-method (untyped receiver) approximation.

use dasr_lint::rules::LintRule;
use dasr_lint::{lint_tree, WorkspaceLint};
use std::path::PathBuf;

fn tree(name: &str) -> WorkspaceLint {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("trees")
        .join(name);
    lint_tree(&dir, 2).unwrap_or_else(|e| panic!("tree {name}: {e}"))
}

fn active_of(ws: &WorkspaceLint, rule: LintRule) -> Vec<String> {
    ws.active()
        .filter(|f| f.rule == rule)
        .map(|f| {
            format!(
                "{}:{} {}",
                f.file,
                f.line,
                f.detail.as_deref().unwrap_or("")
            )
        })
        .collect()
}

#[test]
fn g1_diamond_flags_once_at_the_tainted_seed() {
    let ws = tree("g1_flag");
    let g1 = active_of(&ws, LintRule::G1TransitiveTaint);
    // Two diamond arms reach the same seed: exactly ONE finding, at the
    // wall-clock line in the callee crate, witnessed by the entry.
    assert_eq!(g1.len(), 1, "diamond must not duplicate findings: {g1:?}");
    assert!(
        g1[0].contains("crates/beta/src/lib.rs") && g1[0].contains("decide"),
        "finding must sit at the seed and name the entry: {g1:?}"
    );
    // The local D1 waiver in beta does NOT silence the graph pass.
    assert_eq!(ws.waived_count(), 1, "the D1 waiver still applies locally");
}

#[test]
fn g1_unreachable_source_stays_silent() {
    let ws = tree("g1_pass");
    assert_eq!(ws.active_count(), 0, "{:?}", ws.findings);
    assert_eq!(ws.entry_fns, 1);
    assert!(ws.unused_waivers.is_empty(), "the D1 waiver is still used");
}

#[test]
fn g2_cross_module_alloc_is_flagged() {
    let ws = tree("g2_flag");
    let g2 = active_of(&ws, LintRule::G2AllocReachability);
    assert_eq!(g2.len(), 1, "{g2:?}");
    // Flagged at the call edge in the marked fn, with the chain into
    // the helper module spelled out.
    assert!(
        g2[0].contains("crates/alpha/src/lib.rs")
            && g2[0].contains("marked_hot_path")
            && g2[0].contains("helper::build"),
        "detail must show the allocating chain: {g2:?}"
    );
}

#[test]
fn g2_clean_transitive_set_passes() {
    let ws = tree("g2_pass");
    assert_eq!(ws.active_count(), 0, "{:?}", ws.findings);
    assert_eq!(ws.no_alloc_fns, 1);
}

#[test]
fn g3_trait_method_union_reaches_every_impl() {
    let ws = tree("g3_flag");
    let g3 = active_of(&ws, LintRule::G3PanicPath);
    assert_eq!(g3.len(), 1, "{g3:?}");
    // The receiver is a `&dyn Handler`; the impl lives in another crate
    // and is reached through the method-name union.
    assert!(
        g3[0].contains("crates/beta/src/lib.rs") && g3[0].contains("read_path"),
        "finding must name the entry that reaches the impl: {g3:?}"
    );
}

#[test]
fn g3_off_path_panics_stay_silent() {
    let ws = tree("g3_pass");
    assert_eq!(ws.active_count(), 0, "{:?}", ws.findings);
    assert_eq!(ws.entry_fns, 1);
}

/// The acceptance bar for the parallel per-file phase: the serialized
/// report is byte-identical at 1, 2, and 8 worker threads, for both a
/// flagging tree and the real workspace.
#[test]
fn report_bytes_are_thread_count_invariant() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("trees")
        .join("g1_flag");
    let baseline = lint_tree(&dir, 1).expect("tree scan").to_jsonl();
    for threads in [2, 8] {
        let report = lint_tree(&dir, threads).expect("tree scan").to_jsonl();
        assert_eq!(report, baseline, "tree report differs at {threads} threads");
    }

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let baseline = dasr_lint::lint_workspace_threads(&root, 1)
        .expect("workspace scan")
        .to_jsonl();
    for threads in [2, 8] {
        let report = dasr_lint::lint_workspace_threads(&root, threads)
            .expect("workspace scan")
            .to_jsonl();
        assert_eq!(
            report, baseline,
            "workspace report differs at {threads} threads"
        );
    }
}
