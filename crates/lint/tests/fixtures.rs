//! Fixture-based self-tests: every rule has a `should_flag` and a
//! `should_pass` fixture, linted under the strictest scope; the binary
//! is exercised too so `--deny-all` exit codes stay honest.

use dasr_lint::rules::{LintRule, Scope};
use dasr_lint::{lint_source, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Lints a fixture as if it lived in a deterministic module.
fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_source(
        &format!("crates/lint/fixtures/{name}"),
        &fixture(name),
        Scope::strict(),
    )
    .findings
}

fn active_rules(findings: &[Finding]) -> Vec<LintRule> {
    findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| f.rule)
        .collect()
}

#[test]
fn d1_fixtures() {
    let flagged = active_rules(&lint_fixture("d1_flag.rs"));
    assert!(!flagged.is_empty() && flagged.iter().all(|&r| r == LintRule::D1WallClock));
    assert_eq!(flagged.len(), 2, "Instant::now + SystemTime");
    assert!(lint_fixture("d1_pass.rs").is_empty());
}

#[test]
fn d2_fixtures() {
    let flagged = active_rules(&lint_fixture("d2_flag.rs"));
    assert!(flagged.iter().all(|&r| r == LintRule::D2MapIteration));
    assert_eq!(flagged.len(), 3, "for-loop + drain + keys");
    assert!(lint_fixture("d2_pass.rs").is_empty());
}

#[test]
fn d3_fixtures() {
    let flagged = active_rules(&lint_fixture("d3_flag.rs"));
    assert!(flagged.iter().all(|&r| r == LintRule::D3AmbientRandomness));
    assert_eq!(flagged.len(), 3, "thread_rng + rand::random + from_entropy");
    assert!(lint_fixture("d3_pass.rs").is_empty());
}

#[test]
fn r1_fixtures() {
    let flagged = active_rules(&lint_fixture("r1_flag.rs"));
    assert!(flagged.iter().all(|&r| r == LintRule::R1StoredText));
    assert_eq!(flagged.len(), 2, "struct field + enum payload");
    assert!(lint_fixture("r1_pass.rs").is_empty());
}

#[test]
fn f1_fixtures() {
    let flagged = active_rules(&lint_fixture("f1_flag.rs"));
    assert!(flagged.iter().all(|&r| r == LintRule::F1NanUnsafeOrder));
    assert_eq!(flagged.len(), 2, "unwrap + expect");
    assert!(lint_fixture("f1_pass.rs").is_empty());
}

#[test]
fn a1_fixtures() {
    let flagged = active_rules(&lint_fixture("a1_flag.rs"));
    assert!(flagged.iter().all(|&r| r == LintRule::A1AllocInNoAlloc));
    assert_eq!(flagged.len(), 3, "format! + to_vec + Vec::new");
    assert!(lint_fixture("a1_pass.rs").is_empty());
}

#[test]
fn waiver_fixtures() {
    // Malformed waivers: each is a W1, and the unwaived D1 stays active.
    let findings = lint_fixture("waiver_flag.rs");
    let w1 = findings
        .iter()
        .filter(|f| f.rule == LintRule::W1MalformedWaiver)
        .count();
    assert_eq!(w1, 4, "missing reason, empty reason, unknown rule, junk");
    assert!(findings
        .iter()
        .any(|f| f.rule == LintRule::D1WallClock && !f.waived));

    // Well-formed waiver: finding present, waived, reason carried.
    let findings = lint_fixture("waiver_pass.rs");
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived);
    assert!(findings[0]
        .reason
        .as_deref()
        .unwrap()
        .contains("determinism contract"));
    assert!(active_rules(&findings).is_empty());
}

/// The binary's `--deny-all` exit code is exactly 1 on every
/// should_flag fixture and 0 on every should_pass fixture — 1 means
/// "findings", reserving 2 for internal errors.
#[test]
fn deny_all_exit_codes() {
    let fixtures_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for (name, should_fail) in [
        ("d1_flag.rs", true),
        ("d2_flag.rs", true),
        ("d3_flag.rs", true),
        ("r1_flag.rs", true),
        ("f1_flag.rs", true),
        ("a1_flag.rs", true),
        ("waiver_flag.rs", true),
        ("d1_pass.rs", false),
        ("d2_pass.rs", false),
        ("d3_pass.rs", false),
        ("r1_pass.rs", false),
        ("f1_pass.rs", false),
        ("a1_pass.rs", false),
        ("waiver_pass.rs", false),
    ] {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_dasr-lint"))
            .arg("--deny-all")
            .arg(fixtures_dir.join(name))
            .status()
            .expect("run dasr-lint");
        let want = if should_fail { 1 } else { 0 };
        assert_eq!(
            status.code(),
            Some(want),
            "unexpected exit for fixture {name}"
        );
    }
}

/// Internal errors (unreadable input, bad flags, unknown rules) exit 2,
/// distinguishable from "findings" (1) in CI scripts.
#[test]
fn internal_errors_exit_2() {
    let bin = env!("CARGO_BIN_EXE_dasr-lint");
    for args in [
        vec!["--deny-all", "no/such/file.rs"],
        vec!["--threads", "0"],
        vec!["--threads", "many"],
        vec!["--explain", "Z9"],
        vec!["--no-such-flag"],
    ] {
        let out = std::process::Command::new(bin)
            .args(&args)
            .output()
            .expect("run dasr-lint");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            !out.stderr.is_empty(),
            "args {args:?} must explain on stderr"
        );
    }
}

/// `--explain` prints each rule's rationale and a waiver example, and
/// exits 0 without scanning anything.
#[test]
fn explain_covers_every_rule() {
    let bin = env!("CARGO_BIN_EXE_dasr-lint");
    for rule in LintRule::ALL {
        let out = std::process::Command::new(bin)
            .args(["--explain", rule.code()])
            .output()
            .expect("run dasr-lint");
        assert_eq!(out.status.code(), Some(0), "--explain {}", rule.code());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains(rule.code()) && text.contains("waiver / fix:"),
            "--explain {} output incomplete:\n{text}",
            rule.code()
        );
    }
    // Rule *names* work too, not just codes.
    let out = std::process::Command::new(bin)
        .args(["--explain", "G2-alloc-reachability"])
        .output()
        .expect("run dasr-lint");
    assert_eq!(out.status.code(), Some(0));
}
