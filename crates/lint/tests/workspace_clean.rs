//! The real workspace must lint clean: every surviving finding is an
//! explicit waiver with a reason. This is the same gate CI enforces via
//! `cargo run -p dasr-lint -- --deny-all`, kept in `cargo test` so a
//! violation fails fast locally too.

use dasr_lint::lint_workspace;
use std::path::PathBuf;

#[test]
fn workspace_has_no_active_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let ws = lint_workspace(&root).expect("workspace scan");
    assert!(
        ws.files_scanned > 30,
        "scan looks truncated: {} files",
        ws.files_scanned
    );

    let active: Vec<String> = ws
        .active()
        .map(|f| format!("{}:{} {} — {}", f.file, f.line, f.rule.name(), f.snippet))
        .collect();
    assert!(
        active.is_empty(),
        "unwaived lint findings:\n{}",
        active.join("\n")
    );

    // Waivers must not rot: every waiver in the tree covers a real
    // finding.
    assert!(
        ws.unused_waivers.is_empty(),
        "stale waivers: {:?}",
        ws.unused_waivers
    );
}
