//! The real workspace must lint clean: every surviving finding is an
//! explicit waiver with a reason. This is the same gate CI enforces via
//! `cargo run -p dasr-lint -- --deny-all`, kept in `cargo test` so a
//! violation fails fast locally too.

use dasr_lint::lint_workspace;
use std::path::PathBuf;

#[test]
fn workspace_has_no_active_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let ws = lint_workspace(&root).expect("workspace scan");
    assert!(
        ws.files_scanned > 30,
        "scan looks truncated: {} files",
        ws.files_scanned
    );

    let active: Vec<String> = ws
        .active()
        .map(|f| format!("{}:{} {} — {}", f.file, f.line, f.rule.name(), f.snippet))
        .collect();
    assert!(
        active.is_empty(),
        "unwaived lint findings:\n{}",
        active.join("\n")
    );

    // Waivers must not rot: every waiver in the tree covers a real
    // finding.
    assert!(
        ws.unused_waivers.is_empty(),
        "stale waivers: {:?}",
        ws.unused_waivers
    );

    // The graph passes must actually be exercising the workspace: the
    // entry directives on decide/fold/codec/store-read functions and
    // the no-alloc markers are load-bearing, so a parser regression
    // that silently drops them must fail here, not pass vacuously.
    assert!(
        ws.graph_fns > 500,
        "symbol graph looks truncated: {} fns",
        ws.graph_fns
    );
    assert!(
        ws.entry_fns >= 16,
        "entry directives dropped: {} entry fns",
        ws.entry_fns
    );
    assert!(
        ws.no_alloc_fns >= 100,
        "no-alloc markers dropped: {} marked fns",
        ws.no_alloc_fns
    );
}
