//! should_flag: F1 — NaN-unsafe float ordering: one NaN and the
//! comparator panics (or breaks `sort_by`'s total-order contract).

pub fn pick_cheapest(costs: &mut Vec<(u32, f64)>) -> Option<u32> {
    costs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    costs
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .map(|&(id, _)| id)
}
