//! should_flag: R1 — human text stored *into* a trace type instead of
//! being rendered from structure at print time.

pub struct DecisionTrace {
    pub interval: u64,
    /// Pre-rendered explanation: violates render-from-structure.
    pub explanation: String,
}

pub enum RunEvent {
    ResizeIssued { why: String },
    IntervalEnd,
}
