//! should_flag: A1 — allocation inside a `no-alloc` body (the ISSUE's
//! seeded violation: a `format!` in a no-alloc block).

pub struct Pump {
    scratch: Vec<u64>,
}

impl Pump {
    // dasr-lint: no-alloc
    pub fn pump(&mut self, now: u64) -> usize {
        let label = format!("pump at {now}");
        let copied = self.scratch.to_vec();
        let fresh: Vec<u64> = Vec::new();
        let n = copied.iter().chain(fresh.iter()).count();
        n + label.len()
    }
}
