//! should_flag: D2 — `HashMap` iteration in a fleet-merge path (the
//! ISSUE's seeded violation): merge order follows randomized hash
//! iteration order, so the merged report is nondeterministic.

use std::collections::{HashMap, HashSet};

pub struct FleetMerge {
    per_tenant: HashMap<u64, f64>,
    dirty: HashSet<u64>,
}

impl FleetMerge {
    pub fn merge(&self) -> f64 {
        let mut total = 0.0;
        // Iteration order is randomized per process.
        for (_tenant, share) in &self.per_tenant {
            total += share * 0.5;
        }
        total
    }

    pub fn drain_dirty(&mut self, out: &mut Vec<u64>) {
        for t in self.dirty.drain() {
            out.push(t);
        }
    }

    pub fn tenants(&self) -> usize {
        self.per_tenant.keys().count()
    }
}
