//! G1 should-pass: the entry's transitive callee set is clean; the
//! wall-clock read lives in a function the entry never reaches.

// dasr-lint: entry(G1)
pub fn decide() -> u64 {
    left() + right()
}

fn left() -> u64 {
    shared()
}

fn right() -> u64 {
    shared()
}

fn shared() -> u64 {
    41
}
