//! Wall clock in a function unreachable from any entry: D1 is waived
//! locally, and G1 must NOT fire — reachability is the whole point.

pub fn unreachable_timer() -> u64 {
    // dasr-lint: allow(D1) reason="not on any decision path; local profiling helper only"
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
