//! G2 should-pass: the marked function's whole transitive callee set
//! (a diamond through two arithmetic helpers) is allocation-free.

// dasr-lint: no-alloc
pub fn marked_hot_path(x: u32) -> u32 {
    crate::helper::double(x) + crate::helper::triple(x)
}
