//! Allocation-free helpers; `scale` is shared by both (diamond shape).

pub fn double(x: u32) -> u32 {
    scale(x, 2)
}

pub fn triple(x: u32) -> u32 {
    scale(x, 3)
}

fn scale(x: u32, k: u32) -> u32 {
    x.wrapping_mul(k)
}
