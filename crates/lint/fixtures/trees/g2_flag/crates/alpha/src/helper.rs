//! The allocating helper: no marker of its own, so the token rule (A1)
//! stays silent — only the graph pass sees the transitive violation.

pub fn build(x: u32) -> u32 {
    let v: Vec<u32> = Vec::with_capacity(x as usize);
    v.capacity() as u32
}
