//! G2 should-flag: a `no-alloc`-marked function is itself clean but
//! calls an allocating helper in another module — the marker now means
//! the whole transitive callee set, so this must be flagged.

// dasr-lint: no-alloc
pub fn marked_hot_path(x: u32) -> u32 {
    crate::helper::build(x)
}
