//! A handler impl with unguarded indexing and an expect — reachable
//! from `alpha::read_path` through the method-name union.

pub struct RawDecoder;

impl RawDecoder {
    pub fn handle(&self, raw: &[u8]) -> u32 {
        let head = raw[0];
        u32::from(head)
            .checked_mul(2)
            .expect("decoder overflow")
    }
}
