//! G3 should-flag via the trait-method approximation: the audited read
//! path calls `.handle()` on an untyped receiver; every workspace
//! method named `handle` is a candidate callee, including the panicky
//! one in the `beta` crate.

pub trait Handler {
    fn handle(&self, raw: &[u8]) -> u32;
}

// dasr-lint: entry(G3)
pub fn read_path(h: &dyn Handler, raw: &[u8]) -> u32 {
    h.handle(raw)
}
