//! The tainted seed: a helper crate reading the wall clock. The local
//! D1 finding is waived (this crate believes it is infrastructure); G1
//! still fires because the decision entry in `alpha` reaches it.

pub fn now_us() -> u64 {
    // dasr-lint: allow(D1) reason="helper crate treats this as infrastructure; the graph pass decides reachability"
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
