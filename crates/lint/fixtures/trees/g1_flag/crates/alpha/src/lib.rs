//! G1 should-flag: a decision entry point reaches wall clock through a
//! diamond (`decide -> {left, right} -> shared`) and a cross-crate call
//! (`shared -> dasr_beta::now_us`). The two diamond arms must produce
//! ONE deterministic finding at the tainted seed, not two.

// dasr-lint: entry(G1)
pub fn decide() -> u64 {
    left() + right()
}

fn left() -> u64 {
    shared()
}

fn right() -> u64 {
    shared()
}

fn shared() -> u64 {
    dasr_beta::now_us()
}
