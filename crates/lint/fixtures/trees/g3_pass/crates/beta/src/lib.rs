//! Panicking code off the audited paths: no entry reaches this, so G3
//! stays silent (plain unwrap is not a token-rule violation).

pub fn offline_tool(raw: &[u8]) -> u32 {
    u32::from(raw[0]).checked_mul(2).unwrap()
}
