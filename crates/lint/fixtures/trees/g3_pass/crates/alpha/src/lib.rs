//! G3 should-pass: the audited entry reaches only panic-free code; the
//! unwrap lives in a function no entry reaches.

// dasr-lint: entry(G3)
pub fn read_path(raw: &[u8]) -> u32 {
    checked_head(raw)
}

fn checked_head(raw: &[u8]) -> u32 {
    raw.first().copied().map_or(0, u32::from)
}
