//! should_pass: D2 — point lookups on maps are fine; folds go through
//! `BTreeMap` or a sorted adapter.

use std::collections::{BTreeMap, HashMap};

pub struct FleetMerge {
    per_tenant: HashMap<u64, f64>,
    ordered: BTreeMap<u64, f64>,
}

impl FleetMerge {
    pub fn lookup(&self, tenant: u64) -> Option<f64> {
        self.per_tenant.get(&tenant).copied()
    }

    pub fn merge(&self) -> f64 {
        // BTreeMap iterates in key order: deterministic.
        self.ordered.values().sum()
    }

    pub fn merge_sorted(&self) -> Vec<u64> {
        // Routing hash iteration through a sorted adapter on the same
        // statement is the sanctioned escape hatch.
        let keys: Vec<u64> = self.per_tenant.keys().copied().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        keys
    }

    pub fn size(&self) -> usize {
        self.per_tenant.len()
    }
}
