//! should_pass: a well-formed waiver — rule named, reason given —
//! covers the finding on its own line or the line below.

pub struct Profiler {
    pub elapsed_ns: u64,
}

impl Profiler {
    pub fn sample(&mut self) {
        // dasr-lint: allow(D1) reason="profiling scratch excluded from the determinism contract"
        let t0 = std::time::Instant::now();
        self.elapsed_ns = t0.elapsed().as_nanos() as u64;
    }
}
