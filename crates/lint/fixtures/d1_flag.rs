//! should_flag: D1 — wall clock in deterministic code (the ISSUE's
//! seeded violation: an `Instant::now` in core).

pub struct Loop {
    started_us: u64,
}

impl Loop {
    pub fn tick(&mut self) {
        // Wall clock leaking into the simulation: nondeterministic.
        let t0 = std::time::Instant::now();
        self.started_us = t0.elapsed().as_micros() as u64;
        let _wall = std::time::SystemTime::now();
    }
}
