//! should_flag: W1 — malformed waivers are themselves findings: missing
//! reason, empty reason, unknown rule, unparseable directive. None of
//! these waive anything.

// dasr-lint: allow(D1)
pub fn no_reason() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// dasr-lint: allow(D1) reason=""
pub fn empty_reason() {}

// dasr-lint: allow(Z9) reason="no such rule"
pub fn unknown_rule() {}

// dasr-lint: frobnicate the invariants
pub fn unparseable() {}
