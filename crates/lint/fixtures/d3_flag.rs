//! should_flag: D3 — ambient randomness in non-test code: the run is no
//! longer a pure function of its seed.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let _ = rng.next_u64();
    rand::random::<f64>()
}

pub fn reseed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.seed()
}
