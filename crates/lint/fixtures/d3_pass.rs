//! should_pass: D3 — all randomness flows from an explicit seed.

pub fn tenant_seed(base: u64, tenant: u64) -> u64 {
    // SplitMix64 over an explicit seed: deterministic per tenant.
    let mut z = base.wrapping_add(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exploratory_tests_may_use_ambient_entropy() {
        let rng = rand::thread_rng();
        let _ = rng;
    }
}
