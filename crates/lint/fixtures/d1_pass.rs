//! should_pass: D1 — simulated time only; wall clock confined to tests.

pub struct Loop {
    now: u64,
}

impl Loop {
    pub fn tick(&mut self, sim_now_us: u64) {
        self.now = sim_now_us;
    }

    /// `Instant` in type position (no `::now`) is fine — e.g. storing a
    /// caller-provided timestamp.
    pub fn note(&self, _at: std::time::Instant) {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
