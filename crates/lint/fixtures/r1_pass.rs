//! should_pass: R1 — traces carry structured fields; text is derived.

pub enum Explanation {
    CpuAboveTarget { util_pct_x100: u32 },
    NoChange,
}

pub struct DecisionTrace {
    pub interval: u64,
    pub explanations: Vec<Explanation>,
}

impl DecisionTrace {
    /// Rendering derives text on demand — `String` in a return position
    /// is fine; only stored fields violate R1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.explanations {
            match e {
                Explanation::CpuAboveTarget { util_pct_x100 } => {
                    out.push_str("cpu above target: ");
                    out.push_str(&(util_pct_x100 / 100).to_string());
                }
                Explanation::NoChange => out.push_str("no change"),
            }
        }
        out
    }
}
