//! should_pass: F1 — `total_cmp` is a total order over all floats
//! (NaN sorts last among positives), so no unwrap is needed.

pub fn pick_cheapest(costs: &mut Vec<(u32, f64)>) -> Option<u32> {
    costs.sort_by(|a, b| a.1.total_cmp(&b.1));
    costs
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(id, _)| id)
}

pub fn guarded(a: f64, b: f64) -> std::cmp::Ordering {
    // Handling the None arm explicitly is also fine.
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
