//! should_pass: A1 — the hot path reuses caller-owned scratch; the
//! allocating constructor lives outside the marked function.

pub struct Pump {
    scratch: Vec<u64>,
}

impl Pump {
    pub fn new() -> Self {
        // Allocation is fine here: only marked bodies are scanned.
        Pump {
            scratch: Vec::with_capacity(64),
        }
    }

    // dasr-lint: no-alloc
    pub fn pump(&mut self, now: u64) -> usize {
        self.scratch.clear();
        self.scratch.push(now);
        let mut moved = std::mem::take(&mut self.scratch);
        let n = moved.len();
        std::mem::swap(&mut self.scratch, &mut moved);
        n
    }
}
