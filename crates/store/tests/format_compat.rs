//! Cross-format compatibility: v1 segments stay readable forever, v2
//! re-encodes the same information in fewer bytes, and a directory
//! mixing both formats is fully queryable.

use dasr_core::obs::{BalloonPhase, DenyReason, EventKind, RunEvent};
use dasr_core::SampleRecord;
use dasr_store::{FormatVersion, RecordPayload, RunMeta, Store, StoredRecord, WriterConfig};
use dasr_telemetry::{ProbeStatus, TelemetrySample};
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dasr-compat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(format: FormatVersion) -> WriterConfig {
    WriterConfig {
        batch_records: 16,
        segment_max_bytes: 4 * 1024,
        format,
    }
}

/// A deterministic pseudo-random record stream exercising every event
/// kind, optional-field combination, tenant pattern (including
/// unstamped), and float shape (NaN, infinity, repeats).
fn generated_payloads(n: u64) -> Vec<RecordPayload> {
    // SplitMix64: a tiny deterministic generator, no rng dependency.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let r = next();
            let tenant = match r % 5 {
                0 => None,
                k => Some(k),
            };
            let interval = i / 3;
            if r % 3 == 0 {
                RecordPayload::Sample(SampleRecord {
                    tenant,
                    sample: TelemetrySample {
                        interval,
                        util_pct: [r as f64 % 100.0, 0.0, 0.0, 100.0],
                        wait_ms: [0.0; 7],
                        latency_ms: (r % 2 == 0).then_some(f64::NAN),
                        avg_latency_ms: (r % 4 == 0).then_some(33.25),
                        completed: r % 1000,
                        arrivals: r % 1100,
                        rejected: r % 7,
                        mem_used_mb: 1024.0,
                        mem_capacity_mb: 2048.0,
                        disk_reads_per_sec: if r % 8 == 0 { f64::INFINITY } else { 4.5 },
                    },
                    probe: if r % 6 == 0 {
                        ProbeStatus::Active {
                            reached_target: r % 12 == 0,
                        }
                    } else {
                        ProbeStatus::Inactive
                    },
                })
            } else {
                let kind = match r % 7 {
                    0 => EventKind::IntervalStart,
                    1 => EventKind::IntervalEnd {
                        latency_ms: (r % 2 == 0).then_some(55.5),
                        completed: r % 500,
                        rejected: r % 3,
                    },
                    2 => EventKind::ResizeIssued {
                        from_rung: (r % 6) as u8,
                        to_rung: (r % 6) as u8 + 1,
                    },
                    3 => EventKind::ResizeDenied {
                        reason: if r % 2 == 0 {
                            DenyReason::Cooldown
                        } else {
                            DenyReason::Budget
                        },
                    },
                    4 => EventKind::BudgetThrottle { headroom_pct: -2.5 },
                    5 => EventKind::BalloonTrigger {
                        phase: match r % 3 {
                            0 => BalloonPhase::Started,
                            1 => BalloonPhase::Aborted,
                            _ => BalloonPhase::Confirmed,
                        },
                        target_mb: (r % 2 == 0).then_some(1536.0),
                    },
                    _ => EventKind::SloViolation {
                        observed_ms: 120.0,
                        goal_ms: 100.0,
                    },
                };
                RecordPayload::Event(RunEvent {
                    tenant,
                    interval,
                    kind,
                })
            }
        })
        .collect()
}

fn write_all(dir: &PathBuf, format: FormatVersion, payloads: &[RecordPayload]) {
    let mut store = Store::open_with(dir, cfg(format)).expect("open");
    let run = store.begin_run(RunMeta::new("auto", "cpuio", "compat", 1));
    for p in payloads {
        store.append(run, *p).expect("append");
    }
    store.end_run(run).expect("commit");
    store.close().expect("close");
}

fn segment_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".dseg"))
        .map(|e| e.metadata().expect("metadata").len())
        .sum()
}

/// The cross-format property: one pseudo-random record stream covering
/// every kind/optional/tenant/float shape, written under each format,
/// must read back as exactly the same records — and the v2 directory
/// must be at least 2× smaller.
#[test]
fn same_records_round_trip_through_both_formats() {
    let payloads = generated_payloads(600);
    let mut sizes = Vec::new();
    let mut reads: Vec<Vec<StoredRecord>> = Vec::new();
    for format in [FormatVersion::V1, FormatVersion::V2] {
        let dir = fresh_dir(&format!("prop-{format}"));
        write_all(&dir, format, &payloads);
        let store = Store::open(&dir).expect("reopen");
        let records = store.scan_range(0..u64::MAX).expect("scan");
        assert_eq!(records.len(), payloads.len());
        store.close().expect("close");
        sizes.push(segment_bytes(&dir));
        reads.push(records);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    // Bit-exact equality across formats: PartialEq on f64 fails
    // NaN == NaN, so compare each record's canonical v1 frame bytes
    // instead — raw IEEE-754 bits, so NaN payloads must match too.
    assert_eq!(reads[0].len(), reads[1].len());
    for (a, b) in reads[0].iter().zip(&reads[1]) {
        let (mut av1, mut bv1) = (Vec::new(), Vec::new());
        a.encode_into(&mut av1);
        b.encode_into(&mut bv1);
        assert_eq!(av1, bv1, "records differ at the bit level");
    }
    assert!(
        sizes[1] * 2 <= sizes[0],
        "v2 ({}) must be at least 2x smaller than v1 ({})",
        sizes[1],
        sizes[0]
    );
}

/// A v1-era store opened by a v2-default writer: the recovered active
/// segment keeps its v1 format until it seals; new segments are v2; and
/// every query spans the mixed directory transparently.
#[test]
fn mixed_format_directories_are_fully_queryable() {
    let dir = fresh_dir("mixed");
    let payloads = generated_payloads(300);
    write_all(&dir, FormatVersion::V1, &payloads[..150]);

    // Reopen with the v2 default and keep appending until new segments
    // roll out in v2.
    let mut store = Store::open_with(&dir, cfg(FormatVersion::V2)).expect("reopen");
    let run2 = store.begin_run(RunMeta::new("auto", "cpuio", "compat", 2));
    for p in &payloads[150..] {
        store.append(run2, *p).expect("append");
    }
    store.end_run(run2).expect("commit");

    // Both eras are visible through one scan.
    let all = store.scan_range(0..u64::MAX).expect("scan");
    assert_eq!(all.len(), payloads.len());
    let first = store.runs()[0].run;
    assert_eq!(store.run_records(first).expect("v1 run").len(), 150);
    assert_eq!(store.run_records(run2).expect("v2 run").len(), 150);
    let fires = store.fire_counts(None, 0..u64::MAX).expect("fires");
    assert!(fires.total_fires() > 0);
    store.close().expect("close");

    // The directory really is mixed: both header versions present.
    let mut versions = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let entry = entry.expect("entry");
        if entry.file_name().to_string_lossy().ends_with(".dseg") {
            let bytes = std::fs::read(entry.path()).expect("read");
            versions.insert(u16::from_le_bytes([bytes[12], bytes[13]]));
        }
    }
    assert_eq!(
        versions.into_iter().collect::<Vec<_>>(),
        vec![1, 2],
        "expected both v1 and v2 segments on disk"
    );

    // And the mixed store recovers cleanly after damage: tear the last
    // segment's tail and reopen.
    let store = Store::open(&dir).expect("clean reopen");
    assert!(store.recovery_notes().is_empty());
    store.close().expect("close");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
