//! Parallel scans are bit-identical to sequential scans: every query
//! result at `read_threads` ∈ {1, 2, 8} must match exactly — same
//! records, same order — and the streaming `RecordCursor` must agree
//! with the collected queries. This is the determinism contract of the
//! parallel read path (per-segment partials folded in segment order).

use dasr_core::obs::{BalloonPhase, DenyReason, EventKind, RunEvent};
use dasr_core::SampleRecord;
use dasr_store::{FormatVersion, Query, RecordPayload, RunId, RunMeta, Shape, Store, WriterConfig};
use dasr_telemetry::{ProbeStatus, TelemetrySample};
use std::path::PathBuf;

const TENANTS: u64 = 6;
const INTERVALS: u64 = 40;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dasr-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample(tenant: u64, interval: u64) -> SampleRecord {
    SampleRecord {
        tenant: Some(tenant),
        sample: TelemetrySample {
            interval,
            util_pct: [50.0 + tenant as f64, 0.0, 99.9, 12.5],
            wait_ms: [0.0, 0.0, 1.5, 0.0, 2.5, 0.0, 0.0],
            latency_ms: (!interval.is_multiple_of(3)).then_some(40.0 + interval as f64),
            avg_latency_ms: None,
            completed: 100 + interval,
            arrivals: 110 + interval,
            rejected: interval % 5,
            mem_used_mb: 1024.0,
            mem_capacity_mb: 2048.0,
            disk_reads_per_sec: 17.75,
        },
        probe: if interval.is_multiple_of(7) {
            ProbeStatus::Active {
                reached_target: tenant.is_multiple_of(2),
            }
        } else {
            ProbeStatus::Inactive
        },
    }
}

fn event_kind(tenant: u64, interval: u64) -> EventKind {
    match (tenant + interval) % 6 {
        0 => EventKind::IntervalStart,
        1 => EventKind::ResizeIssued {
            from_rung: (interval % 4) as u8,
            to_rung: (interval % 4) as u8 + 1,
        },
        2 => EventKind::ResizeDenied {
            reason: if interval.is_multiple_of(2) {
                DenyReason::Cooldown
            } else {
                DenyReason::Budget
            },
        },
        3 => EventKind::BudgetThrottle { headroom_pct: 3.25 },
        4 => EventKind::BalloonTrigger {
            phase: BalloonPhase::Started,
            target_mb: Some(1536.0),
        },
        _ => EventKind::IntervalEnd {
            latency_ms: Some(55.5),
            completed: 100 + interval,
            rejected: 0,
        },
    }
}

/// Builds a store with two runs spanning many small segments, mixing
/// events and samples across tenants and intervals.
fn build_store(dir: &PathBuf, format: FormatVersion) -> (RunId, RunId) {
    let cfg = WriterConfig {
        batch_records: 16,
        // Small segments: the 2 × 6 × 40 records span dozens of files,
        // so the parallel fan-out has real work to divide.
        segment_max_bytes: 2 * 1024,
        format,
    };
    let mut store = Store::open_with(dir, cfg).expect("open");
    let mut runs = Vec::new();
    for seed in [1u64, 2] {
        let run =
            store.begin_run(RunMeta::new("auto", "cpuio", "equiv", seed).fleet(TENANTS, INTERVALS));
        for tenant in 0..TENANTS {
            for interval in 0..INTERVALS {
                store
                    .append(
                        run,
                        RecordPayload::Event(RunEvent {
                            tenant: Some(tenant),
                            interval,
                            kind: event_kind(tenant, interval),
                        }),
                    )
                    .expect("append event");
                store
                    .append(run, RecordPayload::Sample(sample(tenant, interval)))
                    .expect("append sample");
            }
        }
        store.end_run(run).expect("commit");
        runs.push(run);
    }
    store.close().expect("close");
    (runs[0], runs[1])
}

#[test]
fn every_query_is_bit_identical_at_any_thread_count() {
    for format in [FormatVersion::V1, FormatVersion::V2] {
        let dir = fresh_dir(&format!("threads-{format}"));
        let (run_a, run_b) = build_store(&dir, format);

        let mut store = Store::open(&dir).expect("reopen");
        assert!(
            store.stats().expect("stats").segments > 8,
            "{format}: need many segments for the fan-out to matter"
        );

        let mut baseline = None;
        for threads in [1usize, 2, 8] {
            store.set_read_threads(threads);
            assert_eq!(store.read_threads(), threads);
            let got = (
                store.scan_range(5..30).expect("scan_range"),
                store.run_records(run_a).expect("run_records"),
                store.tenant_events(run_b, 3).expect("tenant_events"),
                store.run_samples(run_a, Some(1)).expect("run_samples"),
                store.run_samples(run_b, None).expect("all samples"),
                store.fire_counts(None, 0..INTERVALS).expect("fires all"),
                store.fire_counts(Some(run_b), 10..20).expect("fires run"),
            );
            assert!(!got.0.is_empty() && !got.1.is_empty() && !got.2.is_empty());
            assert_eq!(got.3.len(), INTERVALS as usize);
            assert_eq!(got.4.len(), (TENANTS * INTERVALS) as usize);
            assert!(got.5.total_fires() > 0);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(b, &got, "{format}: results diverged at {threads} threads"),
            }
        }
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn streaming_cursor_agrees_with_collected_queries() {
    let dir = fresh_dir("cursor");
    let (run_a, _) = build_store(&dir, FormatVersion::V2);
    let store = Store::open(&dir).expect("reopen");

    // Whole-window scan: cursor vs scan_range.
    let collected = store.scan_range(5..30).expect("scan_range");
    let streamed: Vec<_> = store
        .cursor(Query {
            intervals: Some(5..30),
            ..Query::default()
        })
        .expect("cursor")
        .map(|r| r.expect("stream"))
        .collect();
    assert_eq!(collected, streamed);

    // Narrow query: run + tenant + samples only.
    let collected = store.run_samples(run_a, Some(2)).expect("run_samples");
    let streamed: Vec<_> = store
        .cursor(Query {
            run: Some(run_a),
            tenant: Some(2),
            shape: Shape::Samples,
            ..Query::default()
        })
        .expect("cursor")
        .map(|r| match r.expect("stream").payload {
            RecordPayload::Sample(s) => s,
            RecordPayload::Event(_) => panic!("Shape::Samples leaked an event"),
        })
        .collect();
    assert_eq!(collected, streamed);
    store.close().expect("close");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
