//! `docs/STORE_FORMAT.md` is normative: this test extracts the worked
//! hex dump from the document and checks it both ways —
//!
//! * **encode**: the real encoder, fed the example's described records,
//!   produces exactly the documented bytes;
//! * **decode**: the real decoder, fed the documented bytes, yields a
//!   well-formed segment whose records carry the documented values.
//!
//! Any drift between the spec and the implementation fails here.

use dasr_core::obs::{EventKind, RunEvent};
use dasr_store::crc::crc32;
use dasr_store::{segment, RecordPayload, RunId, StoredRecord};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/STORE_FORMAT.md");
    std::fs::read_to_string(path).expect("docs/STORE_FORMAT.md exists")
}

/// Extracts the bytes of the `hexdump` fenced block in §7.
fn doc_bytes(text: &str) -> Vec<u8> {
    let block = text
        .split("```hexdump")
        .nth(1)
        .expect("spec has a ```hexdump block")
        .split("```")
        .next()
        .expect("block is closed");
    let mut out = Vec::new();
    for line in block.lines() {
        let Some((offset, rest)) = line.trim().split_once("  ") else {
            continue;
        };
        let offset = usize::from_str_radix(offset, 16).expect("offset column is hex");
        assert_eq!(offset, out.len(), "dump rows are contiguous");
        for tok in rest.split_whitespace() {
            out.push(u8::from_str_radix(tok, 16).expect("byte column is hex"));
        }
    }
    out
}

fn example_records() -> [StoredRecord; 2] {
    [
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(0),
                interval: 0,
                kind: EventKind::IntervalStart,
            }),
        },
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(0),
                interval: 1,
                kind: EventKind::ResizeIssued {
                    from_rung: 1,
                    to_rung: 2,
                },
            }),
        },
    ]
}

#[test]
fn worked_example_matches_the_real_encoder() {
    let recs = example_records();
    let mut payload = Vec::new();
    for r in &recs {
        r.encode_into(&mut payload);
    }
    let mut expected = segment::header_bytes(0).to_vec();
    segment::append_batch(&mut expected, recs.len() as u32, &payload);

    let documented = doc_bytes(&spec_text());
    assert_eq!(documented.len(), 126, "§7 says 126 bytes total");
    assert_eq!(payload.len(), 98, "§7 says payload_len = 98");
    assert_eq!(documented, expected, "spec hex == encoder output");
}

#[test]
fn worked_example_decodes_to_the_documented_values() {
    let bytes = doc_bytes(&spec_text());
    let scan = segment::scan(&bytes).expect("spec segment scans clean");
    assert_eq!(scan.segment_id, 0);
    assert!(scan.torn.is_none());
    assert_eq!(scan.valid_len as usize, bytes.len());
    assert_eq!(scan.batches.len(), 1);
    assert_eq!(scan.batches[0].n_records, 2);

    let decoded = scan.batches[0].records().expect("records decode");
    assert_eq!(decoded, example_records());

    // The walked CRC value in the §7 table.
    let payload = scan.batches[0].payload;
    assert_eq!(crc32(payload), 0x677D_EF86);
}

#[test]
fn documented_crc_vectors_hold() {
    // §5's test-vector table.
    assert_eq!(crc32(b""), 0x0000_0000);
    assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
}
