//! `docs/STORE_FORMAT.md` is normative: this test extracts the worked
//! hex dump from the document and checks it both ways —
//!
//! * **encode**: the real encoder, fed the example's described records,
//!   produces exactly the documented bytes;
//! * **decode**: the real decoder, fed the documented bytes, yields a
//!   well-formed segment whose records carry the documented values.
//!
//! Any drift between the spec and the implementation fails here.

use dasr_core::obs::{EventKind, RunEvent};
use dasr_store::codec::BatchEncoder;
use dasr_store::crc::crc32;
use dasr_store::{segment, FormatVersion, RecordPayload, RunId, StoredRecord};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/STORE_FORMAT.md");
    std::fs::read_to_string(path).expect("docs/STORE_FORMAT.md exists")
}

/// Extracts the bytes of the `n`-th `hexdump` fenced block (1-based:
/// block 1 is the §7 v1 walk, block 2 the §10 v2 walk).
fn doc_bytes(text: &str, n: usize) -> Vec<u8> {
    let block = text
        .split("```hexdump")
        .nth(n)
        .expect("spec has enough ```hexdump blocks")
        .split("```")
        .next()
        .expect("block is closed");
    let mut out = Vec::new();
    for line in block.lines() {
        let Some((offset, rest)) = line.trim().split_once("  ") else {
            continue;
        };
        let offset = usize::from_str_radix(offset, 16).expect("offset column is hex");
        assert_eq!(offset, out.len(), "dump rows are contiguous");
        for tok in rest.split_whitespace() {
            out.push(u8::from_str_radix(tok, 16).expect("byte column is hex"));
        }
    }
    out
}

fn example_records() -> [StoredRecord; 2] {
    [
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(0),
                interval: 0,
                kind: EventKind::IntervalStart,
            }),
        },
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(0),
                interval: 1,
                kind: EventKind::ResizeIssued {
                    from_rung: 1,
                    to_rung: 2,
                },
            }),
        },
    ]
}

#[test]
fn worked_example_matches_the_real_encoder() {
    let recs = example_records();
    let mut payload = Vec::new();
    for r in &recs {
        r.encode_into(&mut payload);
    }
    let mut expected = segment::header_bytes(0, FormatVersion::V1).to_vec();
    segment::append_batch(&mut expected, recs.len() as u32, &payload);

    let documented = doc_bytes(&spec_text(), 1);
    assert_eq!(documented.len(), 126, "§7 says 126 bytes total");
    assert_eq!(payload.len(), 98, "§7 says payload_len = 98");
    assert_eq!(documented, expected, "spec hex == encoder output");
}

#[test]
fn worked_example_decodes_to_the_documented_values() {
    let bytes = doc_bytes(&spec_text(), 1);
    let scan = segment::scan(&bytes).expect("spec segment scans clean");
    assert_eq!(scan.segment_id, 0);
    assert!(scan.torn.is_none());
    assert_eq!(scan.valid_len as usize, bytes.len());
    assert_eq!(scan.batches.len(), 1);
    assert_eq!(scan.batches[0].n_records, 2);

    let decoded = scan.batches[0].records().expect("records decode");
    assert_eq!(decoded, example_records());

    // The walked CRC value in the §7 table.
    let payload = scan.batches[0].payload;
    assert_eq!(crc32(payload), 0x677D_EF86);
    assert_eq!(scan.version, FormatVersion::V1);
}

/// The same two records as §7, encoded with the v2 compact frame
/// format: the real `BatchEncoder` must reproduce the §10 hex dump
/// byte for byte.
#[test]
fn v2_worked_example_matches_the_real_encoder() {
    let recs = example_records();
    let mut enc = BatchEncoder::new();
    let mut payload = Vec::new();
    for r in &recs {
        enc.encode_into(r, &mut payload);
    }
    let mut expected = segment::header_bytes(0, FormatVersion::V2).to_vec();
    segment::append_batch(&mut expected, recs.len() as u32, &payload);

    let documented = doc_bytes(&spec_text(), 2);
    assert_eq!(documented.len(), 42, "§10 says 42 bytes total");
    assert_eq!(payload.len(), 14, "§10 says payload_len = 14");
    assert_eq!(documented, expected, "spec hex == v2 encoder output");
}

#[test]
fn v2_worked_example_decodes_to_the_documented_values() {
    let bytes = doc_bytes(&spec_text(), 2);
    let scan = segment::scan(&bytes).expect("spec segment scans clean");
    assert_eq!(scan.segment_id, 0);
    assert_eq!(scan.version, FormatVersion::V2);
    assert!(scan.torn.is_none());
    assert_eq!(scan.valid_len as usize, bytes.len());
    assert_eq!(scan.batches.len(), 1);
    assert_eq!(scan.batches[0].n_records, 2);
    let decoded = scan.batches[0].records().expect("records decode");
    assert_eq!(decoded, example_records());
}

#[test]
fn documented_crc_vectors_hold() {
    // §5's test-vector table.
    assert_eq!(crc32(b""), 0x0000_0000);
    assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
}
