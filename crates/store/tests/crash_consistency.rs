//! Crash consistency: a store whose files were torn mid-write reopens
//! cleanly, recovering exactly to the last complete batch.
//!
//! The tests simulate crashes the way fault-injection harnesses do:
//! write a store, close it, then damage the files directly — truncating
//! a segment mid-record, flipping payload bytes, tearing the sidecar —
//! and assert that `Store::open` (a) succeeds, (b) reports what it did,
//! and (c) serves exactly the records of every intact batch afterwards.
//! Every scenario runs against both frame formats (v1 fixed-width and
//! v2 compact), since the durability quantum — the CRC-framed batch —
//! is format-independent.

use dasr_core::obs::{EventKind, RunEvent};
use dasr_store::crc::crc32;
use dasr_store::index::SegmentIndex;
use dasr_store::{segment, FormatVersion, RecordPayload, RunId, RunMeta, Store, WriterConfig};
use std::path::PathBuf;

const BATCH: usize = 4;
const BOTH: [FormatVersion; 2] = [FormatVersion::V1, FormatVersion::V2];

fn fresh_dir(tag: &str, format: FormatVersion) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dasr-crash-{tag}-{format}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(format: FormatVersion) -> WriterConfig {
    WriterConfig {
        batch_records: BATCH,
        // Large bound: keep everything in one segment so the tests can
        // reason about a single file.
        segment_max_bytes: 64 * 1024 * 1024,
        format,
    }
}

fn event(interval: u64) -> RecordPayload {
    RecordPayload::Event(RunEvent {
        tenant: Some(interval % 3),
        interval,
        kind: EventKind::IntervalStart,
    })
}

/// Writes `n` events under one committed run and closes the store.
fn write_store(dir: &PathBuf, format: FormatVersion, n: u64) -> RunId {
    let mut store = Store::open_with(dir, small_cfg(format)).expect("open");
    let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
    for i in 0..n {
        store.append(run, event(i)).expect("append");
    }
    store.end_run(run).expect("commit");
    store.close().expect("close");
    run
}

#[test]
fn truncation_mid_record_recovers_to_the_last_complete_batch() {
    for format in BOTH {
        // 10 records, batches of 4 -> batches of 4, 4, 2.
        let dir = fresh_dir("truncate", format);
        let run = write_store(&dir, format, 10);
        let seg = dir.join(segment::file_name(0));
        let full = std::fs::read(&seg).expect("read segment");

        // Cut at every byte position inside the final batch (which holds
        // records 8 and 9): recovery must always land on exactly 8
        // records.
        let scan = segment::scan(&full).expect("clean scan");
        assert_eq!(scan.batches.len(), 3);
        assert_eq!(scan.version, format);
        let last_start = scan.batches[2].offset as usize;
        for cut in [last_start + 1, last_start + 9, full.len() - 1] {
            std::fs::write(&seg, &full[..cut]).expect("tear");
            let store = Store::open_with(&dir, small_cfg(format)).expect("recovers");
            assert!(
                store
                    .recovery_notes()
                    .iter()
                    .any(|n| n.segment == Some(0) && n.detail.contains("truncated")),
                "{format} cut at {cut}: notes = {:?}",
                store.recovery_notes()
            );
            let records = store.run_records(run).expect("query");
            assert_eq!(
                records.len(),
                8,
                "{format} cut at {cut}: last complete batch"
            );
            let intervals: Vec<u64> = records.iter().map(|r| r.interval()).collect();
            assert_eq!(intervals, (0..8).collect::<Vec<_>>());
            store.close().expect("close");
        }

        // After recovery the file ends on a batch boundary: reopening
        // again is clean, and appending continues from there.
        let mut store = Store::open_with(&dir, small_cfg(format)).expect("reopen");
        assert!(store.recovery_notes().is_empty(), "already recovered");
        let run2 = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 2));
        assert!(run2.0 > run.0);
        store
            .append(run2, event(100))
            .expect("append after recovery");
        store.end_run(run2).expect("commit");
        assert_eq!(store.run_records(run2).expect("query").len(), 1);
        assert_eq!(store.run_records(run).expect("query").len(), 8);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn corrupt_batch_payload_is_cut_away_by_crc() {
    for format in BOTH {
        let dir = fresh_dir("corrupt", format);
        let run = write_store(&dir, format, 10);
        let seg = dir.join(segment::file_name(0));
        let mut bytes = std::fs::read(&seg).expect("read segment");
        let scan = segment::scan(&bytes).expect("clean scan");
        // Flip one payload bit in the middle batch: it and everything
        // after it are gone; the first batch survives.
        let mid = scan.batches[1].offset as usize + 8 + 5;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).expect("corrupt");

        let store = Store::open_with(&dir, small_cfg(format)).expect("recovers");
        assert!(
            store
                .recovery_notes()
                .iter()
                .any(|n| n.detail.contains("CRC")),
            "{format} notes: {:?}",
            store.recovery_notes()
        );
        let records = store.run_records(run).expect("query");
        assert_eq!(
            records.len(),
            BATCH,
            "{format}: only the first batch survives"
        );
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn stale_or_torn_sidecars_are_rebuilt_from_the_segment() {
    for format in BOTH {
        let dir = fresh_dir("sidecar", format);
        let run = write_store(&dir, format, 10);
        let idx_path = dir.join(SegmentIndex::file_name(0));
        let good = std::fs::read(&idx_path).expect("sidecar exists");

        // Torn sidecar bytes: recovery rebuilds (the sidecar is a cache).
        std::fs::write(&idx_path, &good[..good.len() / 2]).expect("tear sidecar");
        let store = Store::open_with(&dir, small_cfg(format)).expect("recovers");
        assert_eq!(store.run_records(run).expect("query").len(), 10);
        store.close().expect("close");
        // Closing refreshed the active segment's sidecar; it parses
        // again and remembers the segment's format.
        let repaired = std::fs::read(&idx_path).expect("sidecar rewritten");
        let parsed = SegmentIndex::from_bytes(&repaired).expect("parses");
        assert_eq!(parsed.records(), 10);
        assert_eq!(parsed.version, format);

        // Missing sidecar entirely: same outcome.
        std::fs::remove_file(&idx_path).expect("drop sidecar");
        let store = Store::open_with(&dir, small_cfg(format)).expect("recovers");
        assert_eq!(store.run_records(run).expect("query").len(), 10);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn torn_header_of_a_fresh_segment_is_rewritten() {
    for format in BOTH {
        let dir = fresh_dir("header", format);
        let run = write_store(&dir, format, 6);
        // Simulate a crash during the *next* segment's creation: a
        // second segment file exists but only part of its header made it
        // to disk.
        let seg1 = dir.join(segment::file_name(1));
        std::fs::write(&seg1, &segment::header_bytes(1, format)[..7]).expect("torn header");

        let mut store = Store::open_with(&dir, small_cfg(format)).expect("recovers");
        assert!(
            store
                .recovery_notes()
                .iter()
                .any(|n| n.segment == Some(1) && n.detail.contains("header")),
            "{format} notes: {:?}",
            store.recovery_notes()
        );
        // Old data intact, and the repaired segment accepts appends.
        assert_eq!(store.run_records(run).expect("query").len(), 6);
        let run2 = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 9));
        store.append(run2, event(0)).expect("append");
        store.end_run(run2).expect("commit");
        assert_eq!(store.run_records(run2).expect("query").len(), 1);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A v2 batch whose payload is cut mid-varint *with the framing patched
/// to look intact* (length and CRC recomputed) is not a torn tail — it
/// is unexplainable damage, and recovery must refuse the store rather
/// than serve a half-decoded batch.
#[test]
fn crc_valid_truncated_varint_payload_is_reported_as_corrupt() {
    let dir = fresh_dir("varint", FormatVersion::V2);
    write_store(&dir, FormatVersion::V2, 10);
    let seg = dir.join(segment::file_name(0));
    let full = std::fs::read(&seg).expect("read segment");
    let scan = segment::scan(&full).expect("clean scan");

    // Rebuild the final batch with its payload shortened by one byte —
    // cutting the last record's trailing varint — and a *recomputed*
    // CRC, so the framing layer sees a perfectly healthy batch.
    let last = scan.batches[2].offset as usize;
    let n_records = &full[last..last + 4];
    let payload_len = u32::from_le_bytes([
        full[last + 4],
        full[last + 5],
        full[last + 6],
        full[last + 7],
    ]) as usize;
    let cut_payload = &full[last + 8..last + 8 + payload_len - 1];
    let mut forged = full[..last].to_vec();
    forged.extend_from_slice(n_records);
    forged.extend_from_slice(&(cut_payload.len() as u32).to_le_bytes());
    forged.extend_from_slice(cut_payload);
    forged.extend_from_slice(&crc32(cut_payload).to_le_bytes());
    std::fs::write(&seg, &forged).expect("forge");

    // The sidecar rebuild decodes every batch; the mid-varint cut
    // surfaces as corruption, not as data loss silently absorbed.
    std::fs::remove_file(dir.join(SegmentIndex::file_name(0))).expect("drop sidecar");
    let err = match Store::open_with(&dir, small_cfg(FormatVersion::V2)) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("forged truncated-varint batch must not open"),
    };
    assert!(
        err.contains("corrupt"),
        "expected a corruption report, got: {err}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
