//! The store's losslessness contract, end to end:
//!
//! 1. **Sink fidelity** — a fleet run streamed through [`StoreSink`]
//!    lands in the store byte-identical to the buffered
//!    `FleetReport::events_jsonl` dump of the same fleet.
//! 2. **Replay fidelity** — per-tenant recordings archived in the store
//!    and loaded back through [`StoreSource`]/`ReplaySource` drive the
//!    closed loop to an event stream byte-identical to the live run's.
//!
//! Both comparisons are on rendered JSONL text: equality there means the
//! stored floats round-tripped bit-exactly (JSON rendering is a pure
//! function of the f64 value).

use dasr_core::replay::record_run;
use dasr_core::{tenant_seed, AutoPolicy, FleetRunner, RunConfig, TenantKnobs, TenantSpec};
use dasr_store::{RecordPayload, RunMeta, Store, StoreSource, WriterConfig};
use dasr_telemetry::{LatencyGoal, NullActuator, SourcePair};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::path::PathBuf;

const TENANTS: usize = 8;
const MINUTES: usize = 24;
const FLEET_SEED: u64 = 0x5703;

fn tenant_cfg(i: usize) -> RunConfig {
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(60.0 * MINUTES as f64)
            .with_latency_goal(LatencyGoal::P95(150.0 + (i % 4) as f64 * 100.0)),
        seed: tenant_seed(FLEET_SEED, i as u64),
        prewarm_pages: 1_000,
        ..RunConfig::default()
    }
}

fn tenant_trace(i: usize) -> Trace {
    let demand: Vec<f64> = (0..MINUTES)
        .map(|m| 5.0 + ((i + m) % 6) as f64 * 5.0 + if m % 9 == 4 { 20.0 } else { 0.0 })
        .collect();
    Trace::new("fleet-mix", demand)
}

fn fleet() -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..TENANTS)
        .map(|i| TenantSpec {
            cfg: tenant_cfg(i),
            trace: tenant_trace(i),
            workload: CpuIoWorkload::new(CpuIoConfig::small()),
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dasr-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_sink_captures_the_live_event_stream_byte_for_byte() {
    let tenants = fleet();
    let runner = FleetRunner::new(3);
    let live = runner.run_fleet(&tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs))
    });
    let live_jsonl = live.events_jsonl();
    assert!(!live_jsonl.is_empty());

    // Same fleet, summary mode, events streamed through the StoreSink.
    let dir = fresh_dir("sink");
    // Small batches/segments so the stream crosses several batch and
    // segment boundaries — the comparison must survive framing.
    let cfg = WriterConfig {
        batch_records: 32,
        segment_max_bytes: 8 * 1024,
        ..WriterConfig::default()
    };
    let mut store = Store::open_with(&dir, cfg).expect("open");
    let run = store.begin_run(
        RunMeta::new("auto", "cpuio", "fleet-mix", FLEET_SEED)
            .fleet(TENANTS as u64, MINUTES as u64),
    );
    let mut sink = store.event_sink(run).expect("sink");
    let summary = runner.run_fleet_summary(
        &tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)),
        &mut sink,
    );
    assert!(sink.error().is_none(), "sink error: {:?}", sink.error());
    assert_eq!(&summary, live.fleet_summary());
    let manifest = store.end_run(run).expect("commit");
    assert_eq!(
        manifest.events,
        live_jsonl.lines().count() as u64,
        "every live event was counted into the manifest"
    );

    // Render the stored stream back to JSONL, in append order.
    let mut stored_jsonl = String::new();
    for rec in store.run_records(run).expect("records") {
        match rec.payload {
            RecordPayload::Event(ev) => {
                stored_jsonl.push_str(&ev.to_json_line());
                stored_jsonl.push('\n');
            }
            RecordPayload::Sample(_) => panic!("sink wrote only events"),
        }
    }
    assert_eq!(
        stored_jsonl, live_jsonl,
        "stored stream is byte-identical to the buffered dump"
    );

    // And it survives a close + reopen.
    store.close().expect("close");
    let store = Store::open(&dir).expect("reopen");
    assert!(store.recovery_notes().is_empty(), "clean shutdown");
    assert_eq!(
        store.run_records(run).expect("records").len(),
        manifest.events as usize
    );
    store.close().expect("close");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn archived_recordings_replay_to_the_live_event_stream_byte_for_byte() {
    let tenants = fleet();
    let runner = FleetRunner::new(3);
    let live = runner.run_fleet(&tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs))
    });
    let live_jsonl = live.events_jsonl();

    // Archive each tenant's recorded samples under one fleet run.
    let dir = fresh_dir("replay");
    let mut store = Store::open(&dir).expect("open");
    let run = store.begin_run(
        RunMeta::new("auto", "cpuio", "fleet-mix", FLEET_SEED)
            .fleet(TENANTS as u64, MINUTES as u64),
    );
    for (i, tenant) in tenants.iter().enumerate() {
        let mut policy = AutoPolicy::with_knobs(tenant.cfg.knobs);
        let (_, mut recording) = record_run(
            &tenant.cfg,
            &tenant.trace,
            tenant.workload.clone(),
            &mut policy,
        );
        recording.stamp_tenant(i as u64);
        store.append_recording(run, &recording).expect("archive");
    }
    let manifest = store.end_run(run).expect("commit");
    assert_eq!(manifest.samples, (TENANTS * MINUTES) as u64);

    // The seam adapter presents the archived run as a TelemetrySource…
    {
        use dasr_telemetry::TelemetrySource as _;
        let src = StoreSource::open(&store, run, Some(0)).expect("loads");
        assert_eq!(src.header().policy, "auto");
        assert_eq!(src.header().seed, FLEET_SEED);
        assert_eq!(src.intervals(), MINUTES);
    }

    // …and the whole fleet loop runs from the archived telemetry.
    // Recordings are pre-loaded because the Store stays on this thread;
    // the worker closure only clones plain data.
    let recordings: Vec<_> = (0..TENANTS)
        .map(|i| store.load_recording(run, Some(i as u64)).expect("loads"))
        .collect();
    let replayed = runner.run_fleet_sources(TENANTS, |i| {
        let cfg = tenant_cfg(i);
        let policy: Box<dyn dasr_core::ScalingPolicy> = Box::new(AutoPolicy::with_knobs(cfg.knobs));
        let replay = dasr_core::ReplaySource::new(recordings[i].clone());
        (cfg, SourcePair::new(replay, NullActuator), policy)
    });
    let replayed_jsonl = replayed.events_jsonl();
    assert_eq!(
        replayed_jsonl, live_jsonl,
        "store → replay reproduces the live event stream byte for byte"
    );
    store.close().expect("close");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
