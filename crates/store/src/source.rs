//! [`StoreSource`]: feed an archived run back through the closed loop.
//!
//! The read-side twin of [`StoreSink`](crate::StoreSink): loads a
//! committed run's sample records out of the store and presents them as a
//! [`TelemetrySource`] by delegating to
//! [`ReplaySource`] — so everything that works
//! on a fresh recording ([`replay`](dasr_core::replay::replay), policy
//! A/B, [`ReplayDiff`](dasr_core::ReplayDiff)) works identically on an
//! archived one. Because the store holds floats bit-exactly, the replayed
//! loop observes precisely the samples the live loop saw: the
//! `store_replay_roundtrip` test pins live event JSONL against
//! store → replay event JSONL byte for byte.

use crate::record::RunId;
use crate::store::{Store, StoreError};
use dasr_core::replay::{RecordingHeader, ReplaySource, RunRecording};
use dasr_telemetry::{LatencyGoal, ProbeStatus, TelemetrySample, TelemetrySource};

/// A [`TelemetrySource`] over a run archived in a [`Store`].
pub struct StoreSource {
    inner: ReplaySource,
}

impl StoreSource {
    /// Loads `run` (optionally narrowed to one tenant of a fleet run)
    /// from the store. The run must be committed.
    pub fn open(store: &Store, run: RunId, tenant: Option<u64>) -> Result<Self, StoreError> {
        Ok(Self::from_recording(store.load_recording(run, tenant)?))
    }

    /// Wraps an already-loaded recording.
    pub fn from_recording(recording: RunRecording) -> Self {
        Self {
            inner: ReplaySource::new(recording),
        }
    }

    /// The run's metadata, as recorded in the manifest.
    pub fn header(&self) -> &RecordingHeader {
        self.inner.header()
    }

    /// The underlying replay source (for
    /// [`replay_with`](dasr_core::replay::replay_with)-style plumbing).
    pub fn into_replay(self) -> ReplaySource {
        self.inner
    }
}

impl TelemetrySource for StoreSource {
    // dasr-lint: no-alloc
    fn intervals(&self) -> usize {
        self.inner.intervals()
    }

    // dasr-lint: no-alloc
    fn workload_name(&self) -> &str {
        self.inner.workload_name()
    }

    // dasr-lint: no-alloc
    fn trace_name(&self) -> &str {
        self.inner.trace_name()
    }

    fn observe_interval(&mut self, interval: u64, goal: LatencyGoal) -> TelemetrySample {
        self.inner.observe_interval(interval, goal)
    }

    // dasr-lint: no-alloc
    fn interval_latencies_ms(&self) -> &[f64] {
        self.inner.interval_latencies_ms()
    }

    // dasr-lint: no-alloc
    fn probe(&self) -> ProbeStatus {
        self.inner.probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordPayload;
    use crate::store::RunMeta;
    use dasr_core::replay::SampleRecord;
    use dasr_telemetry::TelemetrySample;

    fn sample(interval: u64) -> SampleRecord {
        SampleRecord {
            tenant: Some(0),
            sample: TelemetrySample {
                interval,
                util_pct: [50.0, 10.0, 5.0, 1.0],
                wait_ms: [0.5; 7],
                latency_ms: Some(12.0 + interval as f64),
                avg_latency_ms: Some(11.0),
                completed: 100,
                arrivals: 100,
                rejected: 0,
                mem_used_mb: 512.0,
                mem_capacity_mb: 1024.0,
                disk_reads_per_sec: 3.5,
            },
            probe: ProbeStatus::Inactive,
        }
    }

    #[test]
    fn archived_runs_come_back_as_telemetry_sources() {
        let dir = std::env::temp_dir().join(format!("dasr-source-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir).expect("open");
        let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 42));
        for i in 0..3 {
            store
                .append(run, RecordPayload::Sample(sample(i)))
                .expect("append");
        }
        store.end_run(run).expect("commit");

        let mut src = StoreSource::open(&store, run, Some(0)).expect("loads");
        assert_eq!(src.intervals(), 3);
        assert_eq!(src.header().policy, "auto");
        assert_eq!(src.header().seed, 42);
        let goal = LatencyGoal::P95(f64::INFINITY);
        let s1 = src.observe_interval(1, goal);
        assert_eq!(s1.interval, 1);
        assert_eq!(s1.latency_ms, Some(13.0));
        assert_eq!(src.probe(), ProbeStatus::Inactive);

        // Uncommitted or absent runs refuse to load.
        assert!(StoreSource::open(&store, RunId(7), None).is_err());
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
