//! The store's read fast path: query descriptions, a lazy streaming
//! [`RecordCursor`], and the parallel per-segment fold behind every
//! `Store` query.
//!
//! Three ideas, layered (DESIGN.md §17):
//!
//! 1. **A [`Query`] is data.** Interval window, run, tenant, and record
//!    shape are one struct checked at two granularities: against an
//!    [`IndexEntry`] (may this *batch* hold a match? — pure index
//!    arithmetic, no file I/O) and against a decoded [`StoredRecord`]
//!    (is this record a match?). Every batch the entry check rejects is
//!    never read off disk, which is where the tenant-presence filter and
//!    kind bitmap pay off.
//! 2. **Batches stream through one reusable buffer.** A segment reader
//!    seeks to each surviving batch, reads exactly its frame into a
//!    buffer reused across batches *and* segments, CRC-checks it, and
//!    decodes records one at a time. A [`StoredRecord`] owns no heap
//!    data, so handing stack copies to a visitor allocates nothing:
//!    memory is O(largest batch), not O(result set) — the
//!    `store_query` example pins this with a VmHWM measurement.
//! 3. **Segments fan out; results fold in segment order.** Sealed
//!    segments are independent files, so workers claim them off an
//!    atomic cursor (the `FleetScheduler` pattern) and build per-segment
//!    partials. Partials are then folded *in segment id order*, so the
//!    result is byte-identical to a single-threaded scan at any thread
//!    count — the `scan_equivalence` test pins threads {1, 2, 8} against
//!    each other.

use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::codec::BatchDecoder;
use crate::crc::crc32;
use crate::index::{IndexEntry, SegmentIndex};
use crate::record::{etag_of, Cursor, RecordPayload, RunId, StoredRecord};
use crate::segment::{self, FormatVersion, BATCH_OVERHEAD};
use crate::store::{FireCounts, StoreError};

/// What record shapes a query wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shape {
    /// Events and samples alike.
    #[default]
    All,
    /// Telemetry samples only.
    Samples,
    /// Events only, restricted to the tags whose bits are set in the
    /// mask (`1 << etag`; [`KindSet::ALL_EVENTS`](crate::index::KindSet::ALL_EVENTS)
    /// for every event).
    Events(u16),
}

/// A declarative record query: every field narrows the result, `None`
/// (or [`Shape::All`]) leaves that axis unconstrained.
///
/// The same struct prunes at batch granularity
/// ([`matches_entry`](Self::matches_entry) — index arithmetic only) and
/// filters at record granularity
/// ([`matches_record`](Self::matches_record)).
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Keep records whose billing interval is in this half-open window.
    pub intervals: Option<Range<u64>>,
    /// Keep records of this run.
    pub run: Option<RunId>,
    /// Keep records stamped with this tenant (un-stamped records never
    /// match a tenant constraint).
    pub tenant: Option<u64>,
    /// Keep records of this shape.
    pub shape: Shape,
}

impl Query {
    /// True when a batch described by `e` may hold a matching record —
    /// a `false` here is a *proof* of absence, so the batch is skipped
    /// without touching segment bytes.
    // dasr-lint: no-alloc
    pub fn matches_entry(&self, e: &IndexEntry) -> bool {
        if e.n_records == 0 {
            return false;
        }
        if let Some(w) = &self.intervals {
            if !e.overlaps_intervals(w.start, w.end) {
                return false;
            }
        }
        if let Some(run) = self.run {
            if !e.may_contain_run(run.0) {
                return false;
            }
        }
        if let Some(t) = self.tenant {
            if !e.may_contain_tenant(t) {
                return false;
            }
        }
        match self.shape {
            Shape::All => true,
            Shape::Samples => e.kinds.has_samples(),
            Shape::Events(mask) => e.kinds.intersects(mask),
        }
    }

    /// True when `rec` itself matches every constraint.
    // dasr-lint: no-alloc
    pub fn matches_record(&self, rec: &StoredRecord) -> bool {
        if let Some(w) = &self.intervals {
            let i = rec.interval();
            if i < w.start || i >= w.end {
                return false;
            }
        }
        if let Some(run) = self.run {
            if rec.run != run {
                return false;
            }
        }
        if let Some(t) = self.tenant {
            if rec.tenant() != Some(t) {
                return false;
            }
        }
        match (&self.shape, &rec.payload) {
            (Shape::All, _) => true,
            (Shape::Samples, RecordPayload::Sample(_)) => true,
            (Shape::Samples, RecordPayload::Event(_)) => false,
            (Shape::Events(mask), RecordPayload::Event(ev)) => mask & (1 << etag_of(&ev.kind)) != 0,
            (Shape::Events(_), RecordPayload::Sample(_)) => false,
        }
    }
}

/// The exact byte length of entry `i`'s batch frame: entries are
/// contiguous in file order, so it runs to the next entry (or the
/// segment's end).
// dasr-lint: no-alloc
fn frame_len(idx: &SegmentIndex, i: usize) -> usize {
    let end = idx
        .entries
        .get(i + 1)
        .map_or(idx.seg_bytes, |next| next.offset);
    // dasr-lint: allow(G3) reason="entries[i] follows a successful matches-check at index i; get(i+1) guards the far edge"
    (end - idx.entries[i].offset) as usize
}

/// Parses and CRC-verifies one batch frame already in memory. Returns
/// the record count; the payload is `frame[8 .. len - 4]`.
fn verify_frame(frame: &[u8], offset: u64) -> Result<u32, String> {
    let len = frame.len();
    if len < BATCH_OVERHEAD {
        return Err(format!(
            "batch frame at offset {offset} shorter than its overhead"
        ));
    }
    // dasr-lint: allow(G3) reason="frame length checked against BATCH_OVERHEAD just above"
    let n_records = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
    let payload_len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
    if payload_len + BATCH_OVERHEAD != len {
        return Err(format!(
            "batch at offset {offset} promises {payload_len} payload bytes, index allots {len}"
        ));
    }
    let payload = &frame[8..8 + payload_len];
    let stored_crc = u32::from_le_bytes([
        frame[len - 4],
        frame[len - 3],
        frame[len - 2],
        frame[len - 1],
    ]);
    let actual = crc32(payload);
    if stored_crc != actual {
        return Err(format!(
            "batch at offset {offset} fails CRC: stored {stored_crc:08x}, computed {actual:08x}"
        ));
    }
    Ok(n_records)
}

/// Seeks to one batch frame, reads exactly `len` bytes into the caller's
/// reusable buffer, and CRC-verifies it. Returns the record count; the
/// payload is `buf[8 .. len - 4]`.
fn read_frame(file: &mut File, offset: u64, len: usize, buf: &mut Vec<u8>) -> Result<u32, String> {
    if len < BATCH_OVERHEAD {
        return Err(format!(
            "batch frame at offset {offset} shorter than its overhead"
        ));
    }
    buf.resize(len, 0);
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| format!("seek to batch at offset {offset} failed: {e}"))?;
    file.read_exact(buf)
        .map_err(|e| format!("read of batch at offset {offset} failed: {e}"))?;
    verify_frame(buf, offset)
}

/// Streams one segment's matching records into `fold(acc, &record)`,
/// reading only the batches `query.matches_entry` admits, through the
/// caller's reusable buffer.
///
/// Two read strategies, picked per segment: when at least half the
/// batches survive pruning the whole segment is read in one sequential
/// pass (one syscall, frames sliced out of the buffer); a sparse match
/// seeks to each surviving frame instead, so a narrow query never pays
/// for the batches it pruned.
fn fold_segment<T>(
    dir: &Path,
    idx: &SegmentIndex,
    query: &Query,
    acc: &mut T,
    fold: &(impl Fn(&mut T, &StoredRecord) + ?Sized),
    buf: &mut Vec<u8>,
) -> Result<(), String> {
    let name = || segment::file_name(idx.segment_id);
    let matching = idx
        .entries
        .iter()
        .filter(|e| query.matches_entry(e))
        .count();
    if matching == 0 {
        return Ok(());
    }
    let mut decode = |frame: &[u8], offset: u64| -> Result<(), String> {
        let n_records =
            verify_frame(frame, offset).map_err(|e| format!("segment {}: {e}", name()))?;
        let payload = &frame[8..frame.len() - 4];
        segment::decode_payload(idx.version, payload, n_records, |rec| {
            if query.matches_record(rec) {
                fold(acc, rec);
            }
        })
        .map_err(|e| format!("segment {} batch at offset {offset}: {e}", name()))
    };
    let dense = matching * 2 >= idx.entries.len();
    if dense {
        // Sequential read of the full segment; frames are slices of it.
        buf.clear();
        let mut file = File::open(dir.join(name()))
            .map_err(|e| format!("segment {} open failed: {e}", name()))?;
        file.read_to_end(buf)
            .map_err(|e| format!("segment {} read failed: {e}", name()))?;
        let seg = std::mem::take(buf);
        let mut result = Ok(());
        for (i, entry) in idx.entries.iter().enumerate() {
            if !query.matches_entry(entry) {
                continue;
            }
            let (at, len) = (entry.offset as usize, frame_len(idx, i));
            let Some(frame) = seg.get(at..at + len) else {
                result = Err(format!(
                    "segment {} batch at offset {at} runs past the file ({} bytes)",
                    name(),
                    seg.len()
                ));
                break;
            };
            if let Err(e) = decode(frame, entry.offset) {
                result = Err(e);
                break;
            }
        }
        *buf = seg;
        return result;
    }
    let mut file: Option<File> = None;
    for (i, entry) in idx.entries.iter().enumerate() {
        if !query.matches_entry(entry) {
            continue;
        }
        let file = match file.as_mut() {
            Some(f) => f,
            None => {
                let path = dir.join(name());
                file.insert(
                    File::open(&path)
                        .map_err(|e| format!("segment {} open failed: {e}", name()))?,
                )
            }
        };
        let len = frame_len(idx, i);
        if len < BATCH_OVERHEAD {
            return Err(format!(
                "segment {}: batch frame at offset {} shorter than its overhead",
                name(),
                entry.offset
            ));
        }
        buf.resize(len, 0);
        file.seek(SeekFrom::Start(entry.offset)).map_err(|e| {
            format!(
                "segment {}: seek to batch at offset {} failed: {e}",
                name(),
                entry.offset
            )
        })?;
        file.read_exact(buf).map_err(|e| {
            format!(
                "segment {}: read of batch at offset {} failed: {e}",
                name(),
                entry.offset
            )
        })?;
        decode(&buf[..], entry.offset)?;
    }
    Ok(())
}

/// Runs `query` over every segment, folding matching records into one
/// accumulator per segment (`make` builds each), and returns the
/// partials **in segment id order** — so any associative combine the
/// caller does is independent of thread count.
///
/// Segments whose entries all fail the batch check are skipped without
/// opening their files. With `threads > 1` and more than one working
/// segment, workers claim segments off an atomic cursor; otherwise the
/// fold runs inline on the caller's thread. Both paths produce
/// identical partials (`scan_equivalence` pins it).
pub(crate) fn fold_records<T, M, F>(
    dir: &Path,
    indices: &[SegmentIndex],
    query: &Query,
    threads: usize,
    make: M,
    fold: F,
) -> Result<Vec<T>, StoreError>
where
    T: Send,
    M: Fn() -> T + Sync,
    F: Fn(&mut T, &StoredRecord) + Sync,
{
    let work: Vec<&SegmentIndex> = indices
        .iter()
        .filter(|idx| idx.entries.iter().any(|e| query.matches_entry(e)))
        .collect();
    let threads = threads.clamp(1, work.len().max(1));
    if threads <= 1 {
        let mut buf = Vec::new();
        let mut out = Vec::with_capacity(work.len());
        for idx in &work {
            let mut acc = make();
            fold_segment(dir, idx, query, &mut acc, &fold, &mut buf)
                .map_err(StoreError::Corrupt)?;
            out.push(acc);
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let partials: Mutex<Vec<(usize, Result<T, String>)>> =
        Mutex::new(Vec::with_capacity(work.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut buf = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(idx) = work.get(k) else { break };
                    let mut acc = make();
                    let res =
                        fold_segment(dir, idx, query, &mut acc, &fold, &mut buf).map(|()| acc);
                    partials
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((k, res));
                }
            });
        }
    });
    let mut partials = partials
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    partials.sort_unstable_by_key(|(k, _)| *k);
    partials
        .into_iter()
        .map(|(_, r)| r.map_err(StoreError::Corrupt))
        .collect()
}

/// True when every record a batch described by `e` could contribute to
/// the query is *provably* admitted — the interval window contains the
/// batch's whole bounding box and the run filter (if any) is pinned by
/// `min_run == max_run`. For such a batch the index tally IS the
/// answer, so the batch is never read.
// dasr-lint: no-alloc
fn tally_covers_entry(query: &Query, e: &IndexEntry) -> bool {
    query.tenant.is_none()
        && query
            .intervals
            .as_ref()
            .is_none_or(|w| w.start <= e.min_interval && e.max_interval < w.end)
        && query
            .run
            .is_none_or(|r| e.min_run == e.max_run && e.min_run == r.0)
}

/// One segment's contribution to a fire-count query: fully-covered
/// batches sum their index tallies without any file I/O; only batches
/// the window (or a multi-run segment) straddles are read and decoded.
fn fires_segment(
    dir: &Path,
    idx: &SegmentIndex,
    query: &Query,
    counts: &mut FireCounts,
    buf: &mut Vec<u8>,
) -> Result<(), String> {
    let name = || segment::file_name(idx.segment_id);
    let mut file: Option<File> = None;
    for (i, entry) in idx.entries.iter().enumerate() {
        if !query.matches_entry(entry) {
            continue;
        }
        if tally_covers_entry(query, entry) {
            counts.merge_tally(&entry.fires);
            continue;
        }
        let file = match file.as_mut() {
            Some(f) => f,
            None => file.insert(
                File::open(dir.join(name()))
                    .map_err(|e| format!("segment {} open failed: {e}", name()))?,
            ),
        };
        let n_records = read_frame(file, entry.offset, frame_len(idx, i), buf)
            .map_err(|e| format!("segment {}: {e}", name()))?;
        // dasr-lint: allow(G3) reason="read_frame only returns buffers at least BATCH_OVERHEAD (12 bytes) long"
        let payload = &buf[8..buf.len() - 4];
        segment::decode_payload(idx.version, payload, n_records, |rec| {
            if query.matches_record(rec) {
                if let RecordPayload::Event(ev) = &rec.payload {
                    counts.record(&ev.kind);
                }
            }
        })
        .map_err(|e| format!("segment {} batch at offset {}: {e}", name(), entry.offset))?;
    }
    Ok(())
}

/// [`fold_records`] specialized to rule-fire counting: the per-batch
/// [`FireTally`](crate::index::FireTally) in the index answers every
/// fully-covered batch with pure index arithmetic, so a whole-run
/// `fire_counts` is an index walk, not a decode (the ≥5× bar
/// `store_fire_counts_100k` gates on). Partials still merge in segment
/// id order at any thread count — `FireCounts::merge` is commutative,
/// but `scan_equivalence` need not rely on it.
///
/// `query.shape` must admit every event shape the tallies count (the
/// [`Store::fire_counts`](crate::Store::fire_counts) mask): a narrower
/// mask would make covered batches overcount relative to a decode.
pub(crate) fn fold_fires(
    dir: &Path,
    indices: &[SegmentIndex],
    query: &Query,
    threads: usize,
) -> Result<FireCounts, StoreError> {
    let work: Vec<&SegmentIndex> = indices
        .iter()
        .filter(|idx| idx.entries.iter().any(|e| query.matches_entry(e)))
        .collect();
    let threads = threads.clamp(1, work.len().max(1));
    let mut total = FireCounts::default();
    if threads <= 1 {
        let mut buf = Vec::new();
        for idx in &work {
            fires_segment(dir, idx, query, &mut total, &mut buf).map_err(StoreError::Corrupt)?;
        }
        return Ok(total);
    }
    let cursor = AtomicUsize::new(0);
    let partials: Mutex<Vec<(usize, Result<FireCounts, String>)>> =
        Mutex::new(Vec::with_capacity(work.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut buf = Vec::new();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(idx) = work.get(k) else { break };
                    let mut acc = FireCounts::default();
                    let res = fires_segment(dir, idx, query, &mut acc, &mut buf).map(|()| acc);
                    partials
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((k, res));
                }
            });
        }
    });
    let mut partials = partials
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    partials.sort_unstable_by_key(|(k, _)| *k);
    for (_, part) in partials {
        total.merge(&part.map_err(StoreError::Corrupt)?);
    }
    Ok(total)
}

/// A lazy, pull-based record stream over a store snapshot: decodes one
/// record per [`next`](Iterator::next) call from a single reusable
/// batch buffer, skipping batches the query's index check rejects.
///
/// Obtained from [`Store::cursor`](crate::Store::cursor). Yields
/// matching records in append order (segment order, then file order).
/// The first decode or I/O error is yielded as `Err` and ends the
/// stream; results reflect everything flushed before the cursor was
/// created.
pub struct RecordCursor {
    dir: PathBuf,
    query: Query,
    indices: Vec<SegmentIndex>,
    /// Position in `indices`.
    seg: usize,
    /// Next entry to consider within the current segment.
    entry: usize,
    /// Open handle for the current segment (dropped at each boundary).
    file: Option<File>,
    /// Reusable frame buffer — the cursor's only per-batch storage.
    buf: Vec<u8>,
    version: FormatVersion,
    decoder: BatchDecoder,
    /// Payload byte length of the loaded batch (payload = `buf[8..8+len]`).
    payload_len: usize,
    /// Decode position within the payload.
    at: usize,
    /// Records left to decode in the loaded batch.
    remaining: u32,
    /// Set after yielding an error; the stream is over.
    failed: bool,
}

impl RecordCursor {
    pub(crate) fn new(dir: PathBuf, indices: Vec<SegmentIndex>, query: Query) -> Self {
        Self {
            dir,
            query,
            indices,
            seg: 0,
            entry: 0,
            file: None,
            buf: Vec::new(),
            version: FormatVersion::default(),
            decoder: BatchDecoder::new(),
            payload_len: 0,
            at: 0,
            remaining: 0,
            failed: false,
        }
    }

    /// Loads the next batch that survives the index check into the
    /// reusable buffer. `Ok(false)` means the store is exhausted.
    fn load_next_batch(&mut self) -> Result<bool, String> {
        loop {
            let Some(idx) = self.indices.get(self.seg) else {
                return Ok(false);
            };
            while self.entry < idx.entries.len() {
                let i = self.entry;
                self.entry += 1;
                if !self.query.matches_entry(&idx.entries[i]) {
                    continue;
                }
                let file = match self.file.as_mut() {
                    Some(f) => f,
                    None => {
                        let path = self.dir.join(segment::file_name(idx.segment_id));
                        self.file.insert(File::open(&path).map_err(|e| {
                            format!(
                                "segment {} open failed: {e}",
                                segment::file_name(idx.segment_id)
                            )
                        })?)
                    }
                };
                let len = frame_len(idx, i);
                let n_records = read_frame(file, idx.entries[i].offset, len, &mut self.buf)
                    .map_err(|e| format!("segment {}: {e}", segment::file_name(idx.segment_id)))?;
                self.version = idx.version;
                self.payload_len = len - BATCH_OVERHEAD;
                self.at = 0;
                self.remaining = n_records;
                self.decoder.reset();
                return Ok(true);
            }
            self.seg += 1;
            self.entry = 0;
            self.file = None;
        }
    }

    /// Decodes the next record of the loaded batch.
    fn decode_one(&mut self) -> Result<StoredRecord, String> {
        let payload = &self.buf[8..8 + self.payload_len];
        let (rec, used) = match self.version {
            FormatVersion::V1 => StoredRecord::decode(&payload[self.at..])?,
            FormatVersion::V2 => {
                let mut c = Cursor::new(&payload[self.at..]);
                let rec = self.decoder.decode_next(&mut c)?;
                (rec, c.pos())
            }
        };
        self.at += used;
        self.remaining -= 1;
        if self.remaining == 0 && self.at != self.payload_len {
            return Err(format!(
                "batch payload has {} trailing bytes after its promised records",
                self.payload_len - self.at
            ));
        }
        Ok(rec)
    }
}

impl Iterator for RecordCursor {
    type Item = Result<StoredRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            while self.remaining > 0 {
                match self.decode_one() {
                    Ok(rec) => {
                        if self.query.matches_record(&rec) {
                            return Some(Ok(rec));
                        }
                    }
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(StoreError::Corrupt(e)));
                    }
                }
            }
            match self.load_next_batch() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(StoreError::Corrupt(e)));
                }
            }
        }
    }
}
