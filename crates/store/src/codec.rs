//! The v2 batch codec: LEB128 varints, delta-encoded ids, per-batch
//! float dictionary.
//!
//! v1 frames (see [`record`](crate::record)) are fixed-layout: every
//! event costs 47 bytes on the wire no matter what it says. The v2
//! encoding keeps the exact same *information* — floats still travel as
//! raw IEEE-754 bits, so nothing is lossy — but spends bytes only where
//! the data varies:
//!
//! * **LEB128 varints** for every integer field: small values (rungs,
//!   deny reasons, per-interval counts) cost one byte instead of eight.
//! * **Delta encoding** for the three stamps every record carries (run,
//!   tenant, interval): consecutive records in a batch almost always
//!   share a run and tenant and step the interval by 0 or 1, so each
//!   stamp is usually a single zigzag byte. Deltas wrap, which makes the
//!   `TENANT_NONE` sentinel (`u64::MAX`) cheap too: from an initial
//!   previous value of 0 it is a delta of −1.
//! * **A per-batch float dictionary** for repeated exact bit patterns: a
//!   float is either a literal (`0` tag + 8 raw bytes, which also
//!   appends it to the dictionary) or a back-reference (`k` tag meaning
//!   dictionary entry `k−1`). Telemetry repeats exact values constantly
//!   (0.0 waits, saturated 100.0 utilizations, a flat `mem_capacity_mb`)
//!   and every repeat collapses to one or two bytes. The dictionary is
//!   built identically by encoder and decoder as a side effect of the
//!   byte stream, so nothing extra is stored — and it resets at every
//!   batch boundary, so batches stay independently decodable and the
//!   torn-tail recovery story is unchanged.
//!
//! Both sides are **stateful within one batch and stateless across
//! batches**: [`BatchEncoder::reset`]/[`BatchDecoder::reset`] are called
//! at each batch boundary. Byte output is a pure function of the record
//! sequence, so the PR-8 determinism argument (DESIGN.md §16) carries
//! over verbatim; DESIGN.md §17 extends it to this codec.
//!
//! The byte layout is specified normatively in `docs/STORE_FORMAT.md`
//! §9–§10, whose worked hex dump the `format_spec` test decodes with
//! this module.

use std::collections::HashMap;

use crate::record::{
    etag, flag, Cursor, RecordPayload, RunId, StoredRecord, KIND_EVENT, KIND_SAMPLE, TENANT_NONE,
};
use dasr_containers::RESOURCE_KINDS;
use dasr_core::obs::{BalloonPhase, DenyReason, EventKind, RunEvent};
use dasr_core::SampleRecord;
use dasr_engine::waits::WAIT_CLASSES;
use dasr_telemetry::{ProbeStatus, TelemetrySample};

/// Maximum float-dictionary entries per batch. A bound, not a tuning
/// knob: once full, further distinct floats are written as literals
/// without being added, so encoder and decoder stay in lockstep and
/// memory stays O(1) per batch.
pub const DICT_CAP: usize = 4096;

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
// dasr-lint: no-alloc
pub fn put_uvar(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped as an unsigned varint (small magnitudes of
/// either sign stay small).
// dasr-lint: no-alloc
pub fn put_ivar(buf: &mut Vec<u8>, v: i64) {
    put_uvar(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads an unsigned LEB128 varint. Rejects truncation and encodings
/// longer than 10 bytes (the widest a u64 needs).
pub fn read_uvar(c: &mut Cursor<'_>) -> Result<u64, String> {
    // One-byte varints dominate real streams (deltas, small counters);
    // take them without entering the loop.
    let first = c.u8().map_err(|e| format!("varint truncated: {e}"))?;
    if first & 0x80 == 0 {
        return Ok(u64::from(first));
    }
    let mut v: u64 = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let byte = c.u8().map_err(|e| format!("varint truncated: {e}"))?;
        if shift == 63 {
            if byte & 0x80 != 0 {
                return Err("varint longer than 10 bytes".to_string());
            }
            if byte > 1 {
                return Err("varint overflows u64".to_string());
            }
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads a zigzag varint back to a signed value.
pub fn read_ivar(c: &mut Cursor<'_>) -> Result<i64, String> {
    let z = read_uvar(c)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Encoder half of the per-batch float dictionary.
#[derive(Debug, Default)]
struct DictEncoder {
    /// bits → dictionary slot (lookup only — never iterated, so batch
    /// bytes stay a pure function of the record sequence).
    slots: HashMap<u64, u32>,
    len: u32,
}

impl DictEncoder {
    fn reset(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Writes one float: a back-reference when its exact bits were seen
    /// earlier in this batch, a literal (which defines the next slot)
    /// otherwise.
    fn put_f64(&mut self, buf: &mut Vec<u8>, v: f64) {
        let bits = v.to_bits();
        if let Some(&slot) = self.slots.get(&bits) {
            put_uvar(buf, u64::from(slot) + 1);
            return;
        }
        put_uvar(buf, 0);
        buf.extend_from_slice(&bits.to_le_bytes());
        if (self.len as usize) < DICT_CAP {
            self.slots.insert(bits, self.len);
            self.len += 1;
        }
    }
}

/// Decoder half of the per-batch float dictionary.
#[derive(Debug, Default)]
struct DictDecoder {
    entries: Vec<u64>,
}

impl DictDecoder {
    fn reset(&mut self) {
        self.entries.clear();
    }

    fn read_f64(&mut self, c: &mut Cursor<'_>) -> Result<f64, String> {
        let tag = read_uvar(c)?;
        if tag == 0 {
            let bits = c.u64()?;
            if self.entries.len() < DICT_CAP {
                self.entries.push(bits);
            }
            return Ok(f64::from_bits(bits));
        }
        let slot = (tag - 1) as usize;
        match self.entries.get(slot) {
            Some(&bits) => Ok(f64::from_bits(bits)),
            None => Err(format!(
                "float dictionary reference {slot} out of range ({} entries)",
                self.entries.len()
            )),
        }
    }
}

/// The three delta-encoded stamps shared by encoder and decoder.
#[derive(Debug, Clone, Copy, Default)]
struct Prev {
    run: u64,
    tenant: u64,
    interval: u64,
}

// dasr-lint: no-alloc
fn delta(prev: &mut u64, now: u64) -> i64 {
    let d = now.wrapping_sub(*prev) as i64;
    *prev = now;
    d
}

// dasr-lint: no-alloc
fn undelta(prev: &mut u64, d: i64) -> u64 {
    *prev = prev.wrapping_add(d as u64);
    *prev
}

/// Stateful v2 batch encoder. [`reset`](Self::reset) at every batch
/// boundary; byte output is a pure function of the record sequence since
/// the last reset.
#[derive(Debug, Default)]
pub struct BatchEncoder {
    prev: Prev,
    dict: DictEncoder,
}

impl BatchEncoder {
    /// A fresh encoder (equivalent to a just-reset one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all cross-record state (call at each batch boundary).
    pub fn reset(&mut self) {
        self.prev = Prev::default();
        self.dict.reset();
    }

    /// Appends `rec`'s v2 frame to `buf`.
    // dasr-lint: entry(G1)
    pub fn encode_into(&mut self, rec: &StoredRecord, buf: &mut Vec<u8>) {
        match &rec.payload {
            RecordPayload::Event(ev) => {
                buf.push(KIND_EVENT);
                self.encode_head(rec.run, ev.tenant, ev.interval, buf);
                self.encode_event(ev, buf);
            }
            RecordPayload::Sample(s) => {
                buf.push(KIND_SAMPLE);
                self.encode_head(rec.run, s.tenant, s.sample.interval, buf);
                self.encode_sample(s, buf);
            }
        }
    }

    // dasr-lint: no-alloc
    fn encode_head(&mut self, run: RunId, tenant: Option<u64>, interval: u64, buf: &mut Vec<u8>) {
        put_ivar(buf, delta(&mut self.prev.run, u64::from(run.0)));
        put_ivar(
            buf,
            delta(&mut self.prev.tenant, tenant.unwrap_or(TENANT_NONE)),
        );
        put_ivar(buf, delta(&mut self.prev.interval, interval));
    }

    fn encode_event(&mut self, ev: &RunEvent, buf: &mut Vec<u8>) {
        match &ev.kind {
            EventKind::IntervalStart => {
                buf.push(etag::INTERVAL_START);
                buf.push(0);
            }
            EventKind::IntervalEnd {
                latency_ms,
                completed,
                rejected,
            } => {
                buf.push(etag::INTERVAL_END);
                buf.push(latency_ms.map_or(0, |_| flag::OPT_A));
                if let Some(l) = latency_ms {
                    self.dict.put_f64(buf, *l);
                }
                put_uvar(buf, *completed);
                put_uvar(buf, *rejected);
            }
            EventKind::ResizeIssued { from_rung, to_rung } => {
                buf.push(etag::RESIZE_ISSUED);
                buf.push(0);
                put_uvar(buf, u64::from(*from_rung));
                put_uvar(buf, u64::from(*to_rung));
            }
            EventKind::ResizeDenied { reason } => {
                buf.push(etag::RESIZE_DENIED);
                buf.push(0);
                put_uvar(
                    buf,
                    match reason {
                        DenyReason::Cooldown => 0,
                        DenyReason::Budget => 1,
                    },
                );
            }
            EventKind::BudgetThrottle { headroom_pct } => {
                buf.push(etag::BUDGET_THROTTLE);
                buf.push(0);
                self.dict.put_f64(buf, *headroom_pct);
            }
            EventKind::BalloonTrigger { phase, target_mb } => {
                buf.push(etag::BALLOON_TRIGGER);
                buf.push(target_mb.map_or(0, |_| flag::OPT_A));
                put_uvar(
                    buf,
                    match phase {
                        BalloonPhase::Started => 0,
                        BalloonPhase::Aborted => 1,
                        BalloonPhase::Confirmed => 2,
                    },
                );
                if let Some(t) = target_mb {
                    self.dict.put_f64(buf, *t);
                }
            }
            EventKind::SloViolation {
                observed_ms,
                goal_ms,
            } => {
                buf.push(etag::SLO_VIOLATION);
                buf.push(0);
                self.dict.put_f64(buf, *observed_ms);
                self.dict.put_f64(buf, *goal_ms);
            }
        }
    }

    fn encode_sample(&mut self, rec: &SampleRecord, buf: &mut Vec<u8>) {
        let s = &rec.sample;
        let mut flags = 0u8;
        if s.latency_ms.is_some() {
            flags |= flag::OPT_A;
        }
        if s.avg_latency_ms.is_some() {
            flags |= flag::OPT_B;
        }
        if let ProbeStatus::Active { reached_target } = rec.probe {
            flags |= flag::PROBE_ACTIVE;
            if reached_target {
                flags |= flag::PROBE_REACHED;
            }
        }
        buf.push(flags);
        buf.push(RESOURCE_KINDS.len() as u8);
        buf.push(WAIT_CLASSES.len() as u8);
        for v in &s.util_pct {
            self.dict.put_f64(buf, *v);
        }
        for v in &s.wait_ms {
            self.dict.put_f64(buf, *v);
        }
        if let Some(l) = s.latency_ms {
            self.dict.put_f64(buf, l);
        }
        if let Some(a) = s.avg_latency_ms {
            self.dict.put_f64(buf, a);
        }
        put_uvar(buf, s.completed);
        put_uvar(buf, s.arrivals);
        put_uvar(buf, s.rejected);
        self.dict.put_f64(buf, s.mem_used_mb);
        self.dict.put_f64(buf, s.mem_capacity_mb);
        self.dict.put_f64(buf, s.disk_reads_per_sec);
    }
}

/// Stateful v2 batch decoder — the exact mirror of [`BatchEncoder`].
#[derive(Debug, Default)]
pub struct BatchDecoder {
    prev: Prev,
    dict: DictDecoder,
}

impl BatchDecoder {
    /// A fresh decoder (equivalent to a just-reset one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all cross-record state (call at each batch boundary).
    pub fn reset(&mut self) {
        self.prev = Prev::default();
        self.dict.reset();
    }

    /// Decodes the next v2 frame from `c`.
    // dasr-lint: entry(G1, G3)
    pub fn decode_next(&mut self, c: &mut Cursor<'_>) -> Result<StoredRecord, String> {
        let kind = c.u8()?;
        let run = RunId(
            u32::try_from(undelta(&mut self.prev.run, read_ivar(c)?))
                .map_err(|_| "run delta leaves the u32 range".to_string())?,
        );
        let tenant_wire = undelta(&mut self.prev.tenant, read_ivar(c)?);
        let tenant = (tenant_wire != TENANT_NONE).then_some(tenant_wire);
        let interval = undelta(&mut self.prev.interval, read_ivar(c)?);
        let payload = match kind {
            KIND_EVENT => RecordPayload::Event(RunEvent {
                tenant,
                interval,
                kind: self.decode_event_kind(c)?,
            }),
            KIND_SAMPLE => RecordPayload::Sample(self.decode_sample(tenant, interval, c)?),
            other => return Err(format!("unknown v2 record kind {other}")),
        };
        Ok(StoredRecord { run, payload })
    }

    fn decode_event_kind(&mut self, c: &mut Cursor<'_>) -> Result<EventKind, String> {
        let tag = c.u8()?;
        let flags = c.u8()?;
        Ok(match tag {
            etag::INTERVAL_START => EventKind::IntervalStart,
            etag::INTERVAL_END => {
                let latency_ms = if flags & flag::OPT_A != 0 {
                    Some(self.dict.read_f64(c)?)
                } else {
                    None
                };
                EventKind::IntervalEnd {
                    latency_ms,
                    completed: read_uvar(c)?,
                    rejected: read_uvar(c)?,
                }
            }
            etag::RESIZE_ISSUED => EventKind::ResizeIssued {
                from_rung: read_uvar(c)? as u8,
                to_rung: read_uvar(c)? as u8,
            },
            etag::RESIZE_DENIED => EventKind::ResizeDenied {
                reason: match read_uvar(c)? {
                    0 => DenyReason::Cooldown,
                    1 => DenyReason::Budget,
                    other => return Err(format!("unknown deny-reason code {other}")),
                },
            },
            etag::BUDGET_THROTTLE => EventKind::BudgetThrottle {
                headroom_pct: self.dict.read_f64(c)?,
            },
            etag::BALLOON_TRIGGER => {
                let phase = match read_uvar(c)? {
                    0 => BalloonPhase::Started,
                    1 => BalloonPhase::Aborted,
                    2 => BalloonPhase::Confirmed,
                    other => return Err(format!("unknown balloon-phase code {other}")),
                };
                let target_mb = if flags & flag::OPT_A != 0 {
                    Some(self.dict.read_f64(c)?)
                } else {
                    None
                };
                EventKind::BalloonTrigger { phase, target_mb }
            }
            etag::SLO_VIOLATION => EventKind::SloViolation {
                observed_ms: self.dict.read_f64(c)?,
                goal_ms: self.dict.read_f64(c)?,
            },
            other => return Err(format!("unknown v2 event tag {other}")),
        })
    }

    fn decode_sample(
        &mut self,
        tenant: Option<u64>,
        interval: u64,
        c: &mut Cursor<'_>,
    ) -> Result<SampleRecord, String> {
        let flags = c.u8()?;
        let n_util = c.u8()? as usize;
        let n_wait = c.u8()? as usize;
        if n_util != RESOURCE_KINDS.len() || n_wait != WAIT_CLASSES.len() {
            return Err(format!(
                "sample arity mismatch: frame has {n_util} util / {n_wait} wait slots, \
                 this build expects {} / {}",
                RESOURCE_KINDS.len(),
                WAIT_CLASSES.len()
            ));
        }
        let mut util_pct = [0.0; RESOURCE_KINDS.len()];
        for slot in &mut util_pct {
            *slot = self.dict.read_f64(c)?;
        }
        let mut wait_ms = [0.0; WAIT_CLASSES.len()];
        for slot in &mut wait_ms {
            *slot = self.dict.read_f64(c)?;
        }
        let latency_ms = if flags & flag::OPT_A != 0 {
            Some(self.dict.read_f64(c)?)
        } else {
            None
        };
        let avg_latency_ms = if flags & flag::OPT_B != 0 {
            Some(self.dict.read_f64(c)?)
        } else {
            None
        };
        let completed = read_uvar(c)?;
        let arrivals = read_uvar(c)?;
        let rejected = read_uvar(c)?;
        let mem_used_mb = self.dict.read_f64(c)?;
        let mem_capacity_mb = self.dict.read_f64(c)?;
        let disk_reads_per_sec = self.dict.read_f64(c)?;
        let probe = if flags & flag::PROBE_ACTIVE != 0 {
            ProbeStatus::Active {
                reached_target: flags & flag::PROBE_REACHED != 0,
            }
        } else {
            ProbeStatus::Inactive
        };
        Ok(SampleRecord {
            tenant,
            sample: TelemetrySample {
                interval,
                util_pct,
                wait_ms,
                latency_ms,
                avg_latency_ms,
                completed,
                arrivals,
                rejected,
                mem_used_mb,
                mem_capacity_mb,
                disk_reads_per_sec,
            },
            probe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uvar_bytes(v: u64) -> Vec<u8> {
        let mut b = Vec::new();
        put_uvar(&mut b, v);
        b
    }

    #[test]
    fn uvar_round_trips_edge_widths() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let b = uvar_bytes(v);
            assert!(b.len() <= 10);
            let mut c = Cursor::new(&b);
            assert_eq!(read_uvar(&mut c).expect("decodes"), v, "v = {v}");
            assert_eq!(c.pos(), b.len());
        }
        assert_eq!(uvar_bytes(0), vec![0]);
        assert_eq!(uvar_bytes(127).len(), 1);
        assert_eq!(uvar_bytes(128).len(), 2);
        assert_eq!(uvar_bytes(u64::MAX).len(), 10, "max-width LEB128");
    }

    #[test]
    fn ivar_round_trips_extremes_and_zero() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut b = Vec::new();
            put_ivar(&mut b, v);
            let mut c = Cursor::new(&b);
            assert_eq!(read_ivar(&mut c).expect("decodes"), v, "v = {v}");
        }
        // Zero delta is the common case and must cost one byte.
        let mut b = Vec::new();
        put_ivar(&mut b, 0);
        assert_eq!(b, vec![0]);
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        // Every continuation bit set, then the bytes run out.
        for n in 1..10 {
            let bytes = vec![0x80u8; n];
            let mut c = Cursor::new(&bytes);
            assert!(read_uvar(&mut c).is_err(), "truncated at {n}");
        }
        // 10 continuation bytes: longer than any u64 needs.
        let bytes = [0x80u8; 11];
        let mut c = Cursor::new(&bytes);
        assert!(read_uvar(&mut c)
            .expect_err("overlong")
            .contains("longer than 10"));
        // 10th byte with payload bits above bit 63.
        let mut bytes = vec![0xffu8; 9];
        bytes.push(0x02);
        let mut c = Cursor::new(&bytes);
        assert!(read_uvar(&mut c)
            .expect_err("overflow")
            .contains("overflow"));
    }

    #[test]
    fn float_dictionary_hits_repeat_bit_patterns() {
        let mut enc = DictEncoder::default();
        let mut buf = Vec::new();
        enc.put_f64(&mut buf, 0.5); // literal: 1 + 8 bytes
        assert_eq!(buf.len(), 9);
        enc.put_f64(&mut buf, 0.5); // hit: 1 byte
        assert_eq!(buf.len(), 10);
        enc.put_f64(&mut buf, -0.0); // distinct bits from +0.0
        enc.put_f64(&mut buf, 0.0);
        assert_eq!(buf.len(), 10 + 9 + 9);

        let mut dec = DictDecoder::default();
        let mut c = Cursor::new(&buf);
        assert_eq!(dec.read_f64(&mut c).unwrap().to_bits(), 0.5f64.to_bits());
        assert_eq!(dec.read_f64(&mut c).unwrap().to_bits(), 0.5f64.to_bits());
        assert_eq!(dec.read_f64(&mut c).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.read_f64(&mut c).unwrap().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn nan_and_inf_dictionary_hits_preserve_bits() {
        // Two NaNs with different payloads are different dictionary
        // entries; the same NaN bits hit.
        let quiet = f64::NAN;
        let payload = f64::from_bits(f64::NAN.to_bits() ^ 0x1);
        let mut enc = DictEncoder::default();
        let mut buf = Vec::new();
        for v in [quiet, f64::INFINITY, payload, quiet, f64::INFINITY, payload] {
            enc.put_f64(&mut buf, v);
        }
        assert_eq!(buf.len(), 3 * 9 + 3, "second pass is all 1-byte hits");
        let mut dec = DictDecoder::default();
        let mut c = Cursor::new(&buf);
        for want in [quiet, f64::INFINITY, payload, quiet, f64::INFINITY, payload] {
            assert_eq!(dec.read_f64(&mut c).unwrap().to_bits(), want.to_bits());
        }
    }

    #[test]
    fn dangling_dictionary_reference_is_rejected() {
        let mut buf = Vec::new();
        put_uvar(&mut buf, 3); // reference to entry 2 of an empty dict
        let mut dec = DictDecoder::default();
        let mut c = Cursor::new(&buf);
        assert!(dec
            .read_f64(&mut c)
            .expect_err("dangling")
            .contains("out of range"));
    }

    #[test]
    fn deltas_wrap_so_tenant_none_is_cheap() {
        let mut prev = 0u64;
        let d = delta(&mut prev, TENANT_NONE);
        assert_eq!(d, -1, "u64::MAX from 0 wraps to −1");
        let mut b = Vec::new();
        put_ivar(&mut b, d);
        assert_eq!(b.len(), 1);
        let mut prev2 = 0u64;
        assert_eq!(undelta(&mut prev2, d), TENANT_NONE);
    }

    #[test]
    fn zero_deltas_between_identical_stamps() {
        let rec = |interval: u64| StoredRecord {
            run: RunId(7),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(3),
                interval,
                kind: EventKind::IntervalStart,
            }),
        };
        let mut enc = BatchEncoder::new();
        let mut buf = Vec::new();
        enc.encode_into(&rec(5), &mut buf);
        let first = buf.len();
        enc.encode_into(&rec(5), &mut buf);
        // kind + etag + flags + three zero deltas = 6 bytes.
        assert_eq!(buf.len() - first, 6, "repeat stamp costs zero-delta bytes");
        let mut dec = BatchDecoder::new();
        let mut c = Cursor::new(&buf);
        assert_eq!(dec.decode_next(&mut c).unwrap(), rec(5));
        assert_eq!(dec.decode_next(&mut c).unwrap(), rec(5));
        assert_eq!(c.pos(), buf.len());
    }

    #[test]
    fn truncated_v2_frames_error_cleanly() {
        let rec = StoredRecord {
            run: RunId(1),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(2),
                interval: 300,
                kind: EventKind::SloViolation {
                    observed_ms: 151.25,
                    goal_ms: 100.0,
                },
            }),
        };
        let mut enc = BatchEncoder::new();
        let mut buf = Vec::new();
        enc.encode_into(&rec, &mut buf);
        for cut in 0..buf.len() {
            let mut dec = BatchDecoder::new();
            let mut c = Cursor::new(&buf[..cut]);
            assert!(dec.decode_next(&mut c).is_err(), "cut = {cut}");
        }
        let mut dec = BatchDecoder::new();
        let mut c = Cursor::new(&buf);
        assert_eq!(dec.decode_next(&mut c).unwrap(), rec);
    }
}
