//! Segment files: the append-only unit of the binary log.
//!
//! A store directory holds numbered segment files (`seg-000000.dseg`,
//! `seg-000001.dseg`, …). Each segment is a 16-byte header followed by a
//! sequence of **batch frames**; records never span batches and batches
//! never span segments. The batch is the durability quantum: its payload
//! is covered by a trailing CRC-32, so a crash mid-write leaves a torn
//! *tail*, never a torn *prefix* — recovery scans forward, keeps every
//! intact batch, and truncates the rest ([`scan`] reports the cut point).
//! This is the "recover to the last complete batch" contract the
//! crash-consistency test exercises.
//!
//! Byte layout (all integers little-endian; specified byte-for-byte in
//! `docs/STORE_FORMAT.md`):
//!
//! ```text
//! segment  := header batch*
//! header   := magic "DASRSEG\x01" | segment_id u32 | version u16 | reserved u16
//! batch    := n_records u32 | payload_len u32 | payload | crc32(payload) u32
//! payload  := record*      (v1: crate::record fixed frames;
//!                           v2: crate::codec varint/delta/dict frames)
//! ```
//!
//! The header's `version` field governs how every batch payload in the
//! file decodes — segments are **homogeneous**: a store directory may mix
//! v1 and v2 segments freely, but one file never mixes formats. v1
//! segments written by earlier builds remain readable forever; new
//! segments default to [`FormatVersion::V2`].

use crate::codec::BatchDecoder;
use crate::crc::crc32;
use crate::record::{Cursor, StoredRecord};

/// First eight bytes of every segment file.
pub const MAGIC: [u8; 8] = *b"DASRSEG\x01";
/// Header `version` value of the fixed-layout v1 record format.
pub const VERSION_V1: u16 = 1;
/// Header `version` value of the varint/delta/dict v2 record format.
pub const VERSION_V2: u16 = 2;
/// Segment header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Batch frame overhead: 8-byte header plus 4-byte CRC trailer.
pub const BATCH_OVERHEAD: usize = 12;

/// A segment's record-payload format, as negotiated by the header's
/// `version` field. See `docs/STORE_FORMAT.md` §9 for the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatVersion {
    /// Fixed-layout frames (`rec_len u16` + body); the PR-8 format.
    V1,
    /// Varint/delta/dictionary frames decoded by [`crate::codec`].
    #[default]
    V2,
}

impl FormatVersion {
    /// The header `version` field value for this format.
    pub fn wire(self) -> u16 {
        match self {
            Self::V1 => VERSION_V1,
            Self::V2 => VERSION_V2,
        }
    }

    /// Parses a header `version` field; unknown values are an error (a
    /// reader must never guess at an unfamiliar payload format).
    pub fn from_wire(v: u16) -> Result<Self, String> {
        match v {
            VERSION_V1 => Ok(Self::V1),
            VERSION_V2 => Ok(Self::V2),
            other => Err(format!("unsupported segment version {other}")),
        }
    }
}

impl std::fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::V1 => "v1",
            Self::V2 => "v2",
        })
    }
}

/// File name of segment `id` (`seg-000042.dseg`).
pub fn file_name(id: u32) -> String {
    format!("seg-{id:06}.dseg")
}

/// The 16 header bytes of segment `id` in format `version`.
pub fn header_bytes(id: u32, version: FormatVersion) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&id.to_le_bytes());
    h[12..14].copy_from_slice(&version.wire().to_le_bytes());
    h
}

/// Frames `payload` (already-encoded records) as one batch and appends it
/// to `out`.
// dasr-lint: no-alloc
pub fn append_batch(out: &mut Vec<u8>, n_records: u32, payload: &[u8]) {
    out.extend_from_slice(&n_records.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// One intact batch located by [`scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch<'a> {
    /// File offset of the batch's 8-byte header.
    pub offset: u64,
    /// Records in the payload.
    pub n_records: u32,
    /// The checksummed record payload.
    pub payload: &'a [u8],
    /// Payload format, inherited from the segment header.
    pub version: FormatVersion,
}

impl Batch<'_> {
    /// Decodes the payload into records (exactly `n_records` of them).
    pub fn records(&self) -> Result<Vec<StoredRecord>, String> {
        let mut out = Vec::with_capacity(self.n_records as usize);
        decode_payload(self.version, self.payload, self.n_records, |rec| {
            out.push(*rec)
        })
        .map_err(|e| format!("batch at offset {}: {e}", self.offset))?;
        Ok(out)
    }
}

/// Decodes one batch payload record by record, handing each to `visit`.
///
/// This is the single decode loop behind both [`Batch::records`] and the
/// streaming cursor ([`crate::cursor`]): a `StoredRecord` owns no heap
/// data, so visiting stack copies is allocation-free and the caller
/// chooses whether to collect, fold, or drop them.
pub fn decode_payload(
    version: FormatVersion,
    payload: &[u8],
    n_records: u32,
    mut visit: impl FnMut(&StoredRecord),
) -> Result<(), String> {
    match version {
        FormatVersion::V1 => {
            let mut at = 0;
            let mut seen = 0u32;
            while at < payload.len() {
                let (rec, used) = StoredRecord::decode(&payload[at..])?;
                visit(&rec);
                seen += 1;
                at += used;
            }
            check_count(seen, n_records)
        }
        FormatVersion::V2 => {
            let mut dec = BatchDecoder::new();
            let mut c = Cursor::new(payload);
            for _ in 0..n_records {
                visit(&dec.decode_next(&mut c)?);
            }
            if c.pos() != payload.len() {
                return Err(format!(
                    "batch payload has {} trailing bytes after {n_records} records",
                    payload.len() - c.pos()
                ));
            }
            Ok(())
        }
    }
}

fn check_count(seen: u32, promised: u32) -> Result<(), String> {
    if seen != promised {
        return Err(format!(
            "batch promises {promised} records, payload holds {seen}"
        ));
    }
    Ok(())
}

/// Reads and CRC-verifies the single batch at `offset` — the targeted
/// read path queries use with offsets taken from the sparse index, so a
/// range scan decodes only the batches whose bounding boxes overlap the
/// query instead of re-walking the whole segment.
pub fn batch_at(bytes: &[u8], offset: u64) -> Result<Batch<'_>, String> {
    let at = offset as usize;
    if at < HEADER_LEN || at + 8 > bytes.len() {
        return Err(format!("batch offset {offset} out of bounds"));
    }
    let version = FormatVersion::from_wire(u16::from_le_bytes([bytes[12], bytes[13]]))?;
    let n_records = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let payload_len =
        u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]) as usize;
    let rest = &bytes[at + 8..];
    if rest.len() < payload_len + 4 {
        return Err(format!(
            "batch at offset {offset} truncated: payload {payload_len}+4 bytes promised, {} on disk",
            rest.len()
        ));
    }
    let payload = &rest[..payload_len];
    let stored_crc = u32::from_le_bytes([
        rest[payload_len],
        rest[payload_len + 1],
        rest[payload_len + 2],
        rest[payload_len + 3],
    ]);
    let actual = crc32(payload);
    if stored_crc != actual {
        return Err(format!(
            "batch at offset {offset} fails CRC: stored {stored_crc:08x}, computed {actual:08x}"
        ));
    }
    Ok(Batch {
        offset,
        n_records,
        payload,
        version,
    })
}

/// What a forward scan of a segment's bytes found.
#[derive(Debug)]
pub struct ScanOutcome<'a> {
    /// Segment id from the header.
    pub segment_id: u32,
    /// Payload format from the header.
    pub version: FormatVersion,
    /// Every intact batch, in file order.
    pub batches: Vec<Batch<'a>>,
    /// Bytes from the start of the file through the last intact batch —
    /// the length recovery truncates the file to.
    pub valid_len: u64,
    /// Why the bytes beyond `valid_len` were rejected (`None` when the
    /// file ends cleanly on a batch boundary).
    pub torn: Option<String>,
}

/// Scans a segment's bytes: validates the header, walks batch frames, and
/// stops at the first torn or corrupt one.
///
/// A bad *header* is an error (the file is not a segment); a bad *tail*
/// is data loss bounded to the final writes and is reported in
/// [`ScanOutcome::torn`] for the caller to truncate away.
pub fn scan(bytes: &[u8]) -> Result<ScanOutcome<'_>, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "segment header truncated: {} bytes, need {HEADER_LEN}",
            bytes.len()
        ));
    }
    if bytes[..8] != MAGIC {
        return Err("bad segment magic".to_string());
    }
    let segment_id = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let version = FormatVersion::from_wire(u16::from_le_bytes([bytes[12], bytes[13]]))?;

    let mut batches = Vec::new();
    let mut at = HEADER_LEN;
    let mut torn = None;
    while at < bytes.len() {
        let Some(rest) = bytes.get(at + 8..) else {
            torn = Some(format!("batch header truncated at offset {at}"));
            break;
        };
        let n_records =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let payload_len =
            u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]])
                as usize;
        if rest.len() < payload_len + 4 {
            torn = Some(format!(
                "batch at offset {at} truncated: payload {payload_len}+4 bytes promised, {} on disk",
                rest.len()
            ));
            break;
        }
        let payload = &rest[..payload_len];
        let stored_crc = u32::from_le_bytes([
            rest[payload_len],
            rest[payload_len + 1],
            rest[payload_len + 2],
            rest[payload_len + 3],
        ]);
        let actual = crc32(payload);
        if stored_crc != actual {
            torn = Some(format!(
                "batch at offset {at} fails CRC: stored {stored_crc:08x}, computed {actual:08x}"
            ));
            break;
        }
        batches.push(Batch {
            offset: at as u64,
            n_records,
            payload,
            version,
        });
        at += BATCH_OVERHEAD + payload_len;
    }
    let valid_len = batches.last().map_or(HEADER_LEN as u64, |b| {
        b.offset + (BATCH_OVERHEAD + b.payload.len()) as u64
    });
    Ok(ScanOutcome {
        segment_id,
        version,
        batches,
        valid_len,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BatchEncoder;
    use crate::record::{RecordPayload, RunId};
    use dasr_core::obs::{EventKind, RunEvent};

    const BOTH: [FormatVersion; 2] = [FormatVersion::V1, FormatVersion::V2];

    fn event(interval: u64) -> StoredRecord {
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(interval),
                interval,
                kind: EventKind::ResizeIssued {
                    from_rung: 1,
                    to_rung: 2,
                },
            }),
        }
    }

    fn segment_with(version: FormatVersion, batches: &[&[StoredRecord]]) -> Vec<u8> {
        let mut bytes = header_bytes(7, version).to_vec();
        for recs in batches {
            let mut payload = Vec::new();
            match version {
                FormatVersion::V1 => {
                    for r in *recs {
                        r.encode_into(&mut payload);
                    }
                }
                FormatVersion::V2 => {
                    let mut enc = BatchEncoder::new();
                    for r in *recs {
                        enc.encode_into(r, &mut payload);
                    }
                }
            }
            append_batch(&mut bytes, recs.len() as u32, &payload);
        }
        bytes
    }

    #[test]
    fn clean_segment_scans_fully_in_both_formats() {
        for version in BOTH {
            let a = [event(1), event(2)];
            let b = [event(3)];
            let bytes = segment_with(version, &[&a, &b]);
            let out = scan(&bytes).expect("scans");
            assert_eq!(out.segment_id, 7);
            assert_eq!(out.version, version);
            assert_eq!(out.batches.len(), 2);
            assert!(out.torn.is_none());
            assert_eq!(out.valid_len, bytes.len() as u64);
            assert_eq!(out.batches[0].records().unwrap(), a, "{version}");
            assert_eq!(out.batches[1].records().unwrap(), b, "{version}");
        }
    }

    #[test]
    fn v2_batches_are_smaller_than_v1() {
        let recs: Vec<StoredRecord> = (0..32).map(event).collect();
        let v1 = segment_with(FormatVersion::V1, &[&recs]);
        let v2 = segment_with(FormatVersion::V2, &[&recs]);
        assert!(
            v2.len() * 4 < v1.len(),
            "expected ≥4x shrink on an event batch: v1 = {}, v2 = {}",
            v1.len(),
            v2.len()
        );
    }

    #[test]
    fn empty_segment_is_just_a_header() {
        for version in BOTH {
            let bytes = header_bytes(0, version).to_vec();
            let out = scan(&bytes).expect("scans");
            assert!(out.batches.is_empty());
            assert!(out.torn.is_none());
            assert_eq!(out.valid_len, HEADER_LEN as u64);
        }
    }

    #[test]
    fn torn_tail_keeps_intact_prefix() {
        for version in BOTH {
            let a = [event(1), event(2)];
            let b = [event(3)];
            let bytes = segment_with(version, &[&a, &b]);
            let first_end = scan(&bytes).unwrap().batches[1].offset as usize;
            // Truncate anywhere inside the second batch: first batch
            // survives.
            for cut in [first_end + 1, first_end + 5, bytes.len() - 1] {
                let out = scan(&bytes[..cut]).expect("header intact");
                assert_eq!(out.batches.len(), 1, "cut = {cut} ({version})");
                assert!(out.torn.is_some());
                assert_eq!(out.valid_len as usize, first_end);
            }
        }
    }

    #[test]
    fn batch_at_reads_exactly_one_batch() {
        for version in BOTH {
            let a = [event(1), event(2)];
            let b = [event(3)];
            let bytes = segment_with(version, &[&a, &b]);
            let scanned = scan(&bytes).unwrap();
            for want in &scanned.batches {
                let got = batch_at(&bytes, want.offset).expect("reads");
                assert_eq!(&got, want);
            }
            assert!(batch_at(&bytes, 0).is_err(), "offset inside the header");
            assert!(batch_at(&bytes, bytes.len() as u64).is_err());
            let mut corrupt = bytes.clone();
            let second = scanned.batches[1].offset as usize;
            corrupt[second + 10] ^= 0x01;
            assert!(batch_at(&corrupt, second as u64)
                .expect_err("corrupt")
                .contains("CRC"));
        }
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        for version in BOTH {
            let a = [event(1), event(2)];
            let mut bytes = segment_with(version, &[&a]);
            let flip = HEADER_LEN + 8 + 3; // inside the payload
            bytes[flip] ^= 0x40;
            let out = scan(&bytes).expect("header intact");
            assert!(out.batches.is_empty());
            assert!(out.torn.expect("torn").contains("CRC"));
        }
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(scan(b"short").is_err());
        let mut bytes = header_bytes(1, FormatVersion::V1).to_vec();
        bytes[0] = b'X';
        assert!(scan(&bytes).is_err());
        let mut bytes = header_bytes(1, FormatVersion::V1).to_vec();
        bytes[12] = 9; // version
        assert!(scan(&bytes)
            .expect_err("unknown version")
            .contains("unsupported"));
    }

    #[test]
    fn version_wire_round_trips() {
        for version in BOTH {
            assert_eq!(FormatVersion::from_wire(version.wire()).unwrap(), version);
        }
        assert!(FormatVersion::from_wire(0).is_err());
        assert!(FormatVersion::from_wire(3).is_err());
        assert_eq!(FormatVersion::default(), FormatVersion::V2);
    }
}
