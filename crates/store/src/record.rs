//! Binary record codec: [`RunEvent`]s and [`SampleRecord`]s as
//! fixed-layout little-endian frames.
//!
//! The store is a *binary* log — JSONL is the interchange format at the
//! edges (sinks, recordings), but on disk every record is a compact frame
//! whose floats are stored as raw IEEE-754 bits (`f64::to_bits`). That
//! choice is what makes the store lossless: a float that round-trips
//! through its bits is the *same* float, so a recording loaded back from
//! the store renders byte-identical JSONL to the live run
//! (`store_replay_roundtrip` pins this). The full byte layout is specified
//! in `docs/STORE_FORMAT.md`; the `format_spec` test decodes the worked
//! hex example in that document with this module's real decoder, so the
//! spec cannot drift from the implementation.
//!
//! Record types here are R1-protected (`dasr-lint`): no `String` fields —
//! human-readable output is rendered from structure at print time, never
//! stored.

use dasr_containers::RESOURCE_KINDS;
use dasr_core::obs::{BalloonPhase, DenyReason, EventKind, RunEvent};
use dasr_core::SampleRecord;
use dasr_engine::waits::WAIT_CLASSES;
use dasr_telemetry::{ProbeStatus, TelemetrySample};

/// Record kind tag: a [`RunEvent`] frame.
pub const KIND_EVENT: u8 = 1;
/// Record kind tag: a [`SampleRecord`] frame.
pub const KIND_SAMPLE: u8 = 2;

/// Wire encoding of "no tenant stamp".
pub const TENANT_NONE: u64 = u64::MAX;

/// Event-kind tags (field `etag` of an event frame).
pub mod etag {
    /// [`super::EventKind::IntervalStart`].
    pub const INTERVAL_START: u8 = 0;
    /// [`super::EventKind::IntervalEnd`].
    pub const INTERVAL_END: u8 = 1;
    /// [`super::EventKind::ResizeIssued`].
    pub const RESIZE_ISSUED: u8 = 2;
    /// [`super::EventKind::ResizeDenied`].
    pub const RESIZE_DENIED: u8 = 3;
    /// [`super::EventKind::BudgetThrottle`].
    pub const BUDGET_THROTTLE: u8 = 4;
    /// [`super::EventKind::BalloonTrigger`].
    pub const BALLOON_TRIGGER: u8 = 5;
    /// [`super::EventKind::SloViolation`].
    pub const SLO_VIOLATION: u8 = 6;

    /// Number of distinct event tags.
    pub const COUNT: u8 = 7;
}

/// The wire tag of an event kind (shared by both frame formats and the
/// index's per-batch kind bitmap).
// dasr-lint: no-alloc
pub fn etag_of(kind: &EventKind) -> u8 {
    match kind {
        EventKind::IntervalStart => etag::INTERVAL_START,
        EventKind::IntervalEnd { .. } => etag::INTERVAL_END,
        EventKind::ResizeIssued { .. } => etag::RESIZE_ISSUED,
        EventKind::ResizeDenied { .. } => etag::RESIZE_DENIED,
        EventKind::BudgetThrottle { .. } => etag::BUDGET_THROTTLE,
        EventKind::BalloonTrigger { .. } => etag::BALLOON_TRIGGER,
        EventKind::SloViolation { .. } => etag::SLO_VIOLATION,
    }
}

/// Flag bits shared by event and sample frames.
pub(crate) mod flag {
    /// Event: `latency_ms`/`target_mb` present. Sample: `latency_ms`
    /// present.
    pub const OPT_A: u8 = 1 << 0;
    /// Sample: `avg_latency_ms` present.
    pub const OPT_B: u8 = 1 << 1;
    /// Sample: balloon probe active.
    pub const PROBE_ACTIVE: u8 = 1 << 2;
    /// Sample: active probe reached its target.
    pub const PROBE_REACHED: u8 = 1 << 3;
}

/// A run's identity within one store: dense, assigned by
/// [`Store::begin_run`](crate::Store::begin_run) in open order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId(pub u32);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run-{:04}", self.0)
    }
}

/// What a stored record carries: one of the two telemetry shapes that
/// cross the closed loop's seams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordPayload {
    /// A structured run event (the `core::obs` stream).
    Event(RunEvent),
    /// A per-interval telemetry sample + probe state (the `core::replay`
    /// unit — what [`ReplaySource`](dasr_core::ReplaySource) plays back).
    Sample(SampleRecord),
}

/// One record of the segmented log: a run-stamped payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredRecord {
    /// The run this record belongs to.
    pub run: RunId,
    /// The payload.
    pub payload: RecordPayload,
}

impl StoredRecord {
    /// The record's billing interval (what the sparse time index ranges
    /// over).
    // dasr-lint: no-alloc
    pub fn interval(&self) -> u64 {
        match &self.payload {
            RecordPayload::Event(ev) => ev.interval,
            RecordPayload::Sample(s) => s.sample.interval,
        }
    }

    /// The record's tenant stamp, if any.
    // dasr-lint: no-alloc
    pub fn tenant(&self) -> Option<u64> {
        match &self.payload {
            RecordPayload::Event(ev) => ev.tenant,
            RecordPayload::Sample(s) => s.tenant,
        }
    }

    /// Appends the record's wire frame (`rec_len u16` + body) to `buf`.
    ///
    /// The frame layout is fixed per kind — see `docs/STORE_FORMAT.md` —
    /// so the append hot path never allocates beyond the caller's buffer.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let len_at = buf.len();
        put_u16(buf, 0); // patched below
        put_u32(buf, self.run.0);
        match &self.payload {
            RecordPayload::Event(ev) => {
                buf.push(KIND_EVENT);
                encode_event(ev, buf);
            }
            RecordPayload::Sample(rec) => {
                buf.push(KIND_SAMPLE);
                encode_sample(rec, buf);
            }
        }
        let body = (buf.len() - len_at - 2) as u16;
        buf[len_at..len_at + 2].copy_from_slice(&body.to_le_bytes());
    }

    /// Decodes one wire frame from the front of `bytes`; returns the
    /// record and the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), String> {
        let mut c = Cursor::new(bytes);
        let body_len = c.u16()? as usize;
        let frame_len = 2 + body_len;
        if bytes.len() < frame_len {
            return Err(format!(
                "record frame truncated: header promises {body_len} body bytes, {} available",
                bytes.len() - 2
            ));
        }
        let run = RunId(c.u32()?);
        let kind = c.u8()?;
        let payload = match kind {
            KIND_EVENT => RecordPayload::Event(decode_event(&mut c)?),
            KIND_SAMPLE => RecordPayload::Sample(decode_sample(&mut c)?),
            other => return Err(format!("unknown record kind {other}")),
        };
        if c.pos != frame_len {
            return Err(format!(
                "record frame length mismatch: header promises {frame_len} bytes, decoder consumed {}",
                c.pos
            ));
        }
        Ok((Self { run, payload }, frame_len))
    }
}

/// Event frame body: `tenant u64 | interval u64 | etag u8 | flags u8 |
/// a u64 | b u64 | c u64` (42 bytes; unused of a/b/c are zero).
// dasr-lint: no-alloc
fn encode_event(ev: &RunEvent, buf: &mut Vec<u8>) {
    put_u64(buf, ev.tenant.unwrap_or(TENANT_NONE));
    put_u64(buf, ev.interval);
    let (tag, flags, a, b, cc) = match &ev.kind {
        EventKind::IntervalStart => (etag::INTERVAL_START, 0, 0, 0, 0),
        EventKind::IntervalEnd {
            latency_ms,
            completed,
            rejected,
        } => (
            etag::INTERVAL_END,
            latency_ms.map_or(0, |_| flag::OPT_A),
            latency_ms.map_or(0, f64::to_bits),
            *completed,
            *rejected,
        ),
        EventKind::ResizeIssued { from_rung, to_rung } => (
            etag::RESIZE_ISSUED,
            0,
            u64::from(*from_rung),
            u64::from(*to_rung),
            0,
        ),
        EventKind::ResizeDenied { reason } => {
            let code = match reason {
                DenyReason::Cooldown => 0,
                DenyReason::Budget => 1,
            };
            (etag::RESIZE_DENIED, 0, code, 0, 0)
        }
        EventKind::BudgetThrottle { headroom_pct } => {
            (etag::BUDGET_THROTTLE, 0, headroom_pct.to_bits(), 0, 0)
        }
        EventKind::BalloonTrigger { phase, target_mb } => {
            let code = match phase {
                BalloonPhase::Started => 0,
                BalloonPhase::Aborted => 1,
                BalloonPhase::Confirmed => 2,
            };
            (
                etag::BALLOON_TRIGGER,
                target_mb.map_or(0, |_| flag::OPT_A),
                code,
                target_mb.map_or(0, f64::to_bits),
                0,
            )
        }
        EventKind::SloViolation {
            observed_ms,
            goal_ms,
        } => (
            etag::SLO_VIOLATION,
            0,
            observed_ms.to_bits(),
            goal_ms.to_bits(),
            0,
        ),
    };
    buf.push(tag);
    buf.push(flags);
    put_u64(buf, a);
    put_u64(buf, b);
    put_u64(buf, cc);
}

fn decode_event(c: &mut Cursor<'_>) -> Result<RunEvent, String> {
    let tenant = opt_tenant(c.u64()?);
    let interval = c.u64()?;
    let tag = c.u8()?;
    let flags = c.u8()?;
    let a = c.u64()?;
    let b = c.u64()?;
    let cc = c.u64()?;
    let kind = match tag {
        etag::INTERVAL_START => EventKind::IntervalStart,
        etag::INTERVAL_END => EventKind::IntervalEnd {
            latency_ms: (flags & flag::OPT_A != 0).then(|| f64::from_bits(a)),
            completed: b,
            rejected: cc,
        },
        etag::RESIZE_ISSUED => EventKind::ResizeIssued {
            from_rung: a as u8,
            to_rung: b as u8,
        },
        etag::RESIZE_DENIED => EventKind::ResizeDenied {
            reason: match a {
                0 => DenyReason::Cooldown,
                1 => DenyReason::Budget,
                other => return Err(format!("unknown deny-reason code {other}")),
            },
        },
        etag::BUDGET_THROTTLE => EventKind::BudgetThrottle {
            headroom_pct: f64::from_bits(a),
        },
        etag::BALLOON_TRIGGER => EventKind::BalloonTrigger {
            phase: match a {
                0 => BalloonPhase::Started,
                1 => BalloonPhase::Aborted,
                2 => BalloonPhase::Confirmed,
                other => return Err(format!("unknown balloon-phase code {other}")),
            },
            target_mb: (flags & flag::OPT_A != 0).then(|| f64::from_bits(b)),
        },
        etag::SLO_VIOLATION => EventKind::SloViolation {
            observed_ms: f64::from_bits(a),
            goal_ms: f64::from_bits(b),
        },
        other => return Err(format!("unknown event tag {other}")),
    };
    Ok(RunEvent {
        tenant,
        interval,
        kind,
    })
}

/// Sample frame body: `tenant u64 | interval u64 | flags u8 | n_util u8 |
/// n_wait u8 | util f64-bits×n_util | wait f64-bits×n_wait | latency u64 |
/// avg u64 | completed u64 | arrivals u64 | rejected u64 | mem_used u64 |
/// mem_cap u64 | disk_rps u64` (171 bytes at the current arities).
// dasr-lint: no-alloc
fn encode_sample(rec: &SampleRecord, buf: &mut Vec<u8>) {
    let s = &rec.sample;
    put_u64(buf, rec.tenant.unwrap_or(TENANT_NONE));
    put_u64(buf, s.interval);
    let mut flags = 0u8;
    if s.latency_ms.is_some() {
        flags |= flag::OPT_A;
    }
    if s.avg_latency_ms.is_some() {
        flags |= flag::OPT_B;
    }
    match rec.probe {
        ProbeStatus::Inactive => {}
        ProbeStatus::Active { reached_target } => {
            flags |= flag::PROBE_ACTIVE;
            if reached_target {
                flags |= flag::PROBE_REACHED;
            }
        }
    }
    buf.push(flags);
    buf.push(RESOURCE_KINDS.len() as u8);
    buf.push(WAIT_CLASSES.len() as u8);
    for v in &s.util_pct {
        put_u64(buf, v.to_bits());
    }
    for v in &s.wait_ms {
        put_u64(buf, v.to_bits());
    }
    put_u64(buf, s.latency_ms.map_or(0, f64::to_bits));
    put_u64(buf, s.avg_latency_ms.map_or(0, f64::to_bits));
    put_u64(buf, s.completed);
    put_u64(buf, s.arrivals);
    put_u64(buf, s.rejected);
    put_u64(buf, s.mem_used_mb.to_bits());
    put_u64(buf, s.mem_capacity_mb.to_bits());
    put_u64(buf, s.disk_reads_per_sec.to_bits());
}

fn decode_sample(c: &mut Cursor<'_>) -> Result<SampleRecord, String> {
    let tenant = opt_tenant(c.u64()?);
    let interval = c.u64()?;
    let flags = c.u8()?;
    let n_util = c.u8()? as usize;
    let n_wait = c.u8()? as usize;
    if n_util != RESOURCE_KINDS.len() || n_wait != WAIT_CLASSES.len() {
        return Err(format!(
            "sample arity mismatch: frame has {n_util} util / {n_wait} wait slots, \
             this build expects {} / {}",
            RESOURCE_KINDS.len(),
            WAIT_CLASSES.len()
        ));
    }
    let mut util_pct = [0.0; RESOURCE_KINDS.len()];
    for slot in &mut util_pct {
        *slot = f64::from_bits(c.u64()?);
    }
    let mut wait_ms = [0.0; WAIT_CLASSES.len()];
    for slot in &mut wait_ms {
        *slot = f64::from_bits(c.u64()?);
    }
    let latency_bits = c.u64()?;
    let avg_bits = c.u64()?;
    let completed = c.u64()?;
    let arrivals = c.u64()?;
    let rejected = c.u64()?;
    let mem_used_mb = f64::from_bits(c.u64()?);
    let mem_capacity_mb = f64::from_bits(c.u64()?);
    let disk_reads_per_sec = f64::from_bits(c.u64()?);
    let probe = if flags & flag::PROBE_ACTIVE != 0 {
        ProbeStatus::Active {
            reached_target: flags & flag::PROBE_REACHED != 0,
        }
    } else {
        ProbeStatus::Inactive
    };
    Ok(SampleRecord {
        tenant,
        sample: TelemetrySample {
            interval,
            util_pct,
            wait_ms,
            latency_ms: (flags & flag::OPT_A != 0).then(|| f64::from_bits(latency_bits)),
            avg_latency_ms: (flags & flag::OPT_B != 0).then(|| f64::from_bits(avg_bits)),
            completed,
            arrivals,
            rejected,
            mem_used_mb,
            mem_capacity_mb,
            disk_reads_per_sec,
        },
        probe,
    })
}

// dasr-lint: no-alloc
fn opt_tenant(wire: u64) -> Option<u64> {
    (wire != TENANT_NONE).then_some(wire)
}

// dasr-lint: no-alloc
fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// dasr-lint: no-alloc
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// dasr-lint: no-alloc
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice. Shared with
/// the v2 codec ([`crate::codec`]), which layers varint reads on top of
/// the same truncation-checked primitive.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                // dasr-lint: allow(G3) reason="end is checked_add-filtered to at most bytes.len() before slicing"
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(format!(
                "record truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.bytes.len()
            )),
        }
    }

    /// Reads one byte; errors on truncation.
    pub fn u8(&mut self) -> Result<u8, String> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(format!(
                "record truncated at byte {} (wanted 1 more of {})",
                self.pos,
                self.bytes.len()
            )),
        }
    }

    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`; errors on truncation.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(interval: u64) -> SampleRecord {
        SampleRecord {
            tenant: Some(9),
            sample: TelemetrySample {
                interval,
                util_pct: [12.5, 0.0, 99.9, 50.0],
                wait_ms: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
                latency_ms: Some(41.25),
                avg_latency_ms: None,
                completed: 640,
                arrivals: 650,
                rejected: 10,
                mem_used_mb: 1024.5,
                mem_capacity_mb: 2048.0,
                disk_reads_per_sec: 17.75,
            },
            probe: ProbeStatus::Active {
                reached_target: true,
            },
        }
    }

    fn all_events() -> Vec<EventKind> {
        vec![
            EventKind::IntervalStart,
            EventKind::IntervalEnd {
                latency_ms: Some(f64::consts_hack()),
                completed: 7,
                rejected: 0,
            },
            EventKind::IntervalEnd {
                latency_ms: None,
                completed: 0,
                rejected: 0,
            },
            EventKind::ResizeIssued {
                from_rung: 2,
                to_rung: 4,
            },
            EventKind::ResizeDenied {
                reason: DenyReason::Cooldown,
            },
            EventKind::ResizeDenied {
                reason: DenyReason::Budget,
            },
            EventKind::BudgetThrottle { headroom_pct: 12.5 },
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Started,
                target_mb: Some(1740.5),
            },
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Aborted,
                target_mb: None,
            },
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Confirmed,
                target_mb: Some(900.0),
            },
            EventKind::SloViolation {
                observed_ms: 150.5,
                goal_ms: 100.0,
            },
        ]
    }

    trait ConstsHack {
        /// An f64 that does not survive a decimal round trip naively —
        /// bit-exact storage must preserve it anyway.
        fn consts_hack() -> f64;
    }
    impl ConstsHack for f64 {
        fn consts_hack() -> f64 {
            0.1 + 0.2 // 0.30000000000000004
        }
    }

    #[test]
    fn every_event_kind_round_trips_bit_exactly() {
        for (i, kind) in all_events().into_iter().enumerate() {
            let rec = StoredRecord {
                run: RunId(42),
                payload: RecordPayload::Event(RunEvent {
                    tenant: if i % 2 == 0 { Some(i as u64) } else { None },
                    interval: 1000 + i as u64,
                    kind,
                }),
            };
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, used) = StoredRecord::decode(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(back, rec);
            // Stable encoding: re-encoding yields identical bytes.
            let mut buf2 = Vec::new();
            back.encode_into(&mut buf2);
            assert_eq!(buf2, buf);
        }
    }

    #[test]
    fn sample_round_trips_bit_exactly() {
        for probe in [
            ProbeStatus::Inactive,
            ProbeStatus::Active {
                reached_target: false,
            },
            ProbeStatus::Active {
                reached_target: true,
            },
        ] {
            let mut s = sample(77);
            s.probe = probe;
            s.tenant = None;
            let rec = StoredRecord {
                run: RunId(0),
                payload: RecordPayload::Sample(s),
            };
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            let (back, used) = StoredRecord::decode(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn frames_concatenate_and_split() {
        let mut buf = Vec::new();
        let recs: Vec<StoredRecord> = (0..5)
            .map(|i| StoredRecord {
                run: RunId(i),
                payload: if i % 2 == 0 {
                    RecordPayload::Event(RunEvent {
                        tenant: Some(u64::from(i)),
                        interval: u64::from(i) * 10,
                        kind: EventKind::IntervalStart,
                    })
                } else {
                    RecordPayload::Sample(sample(u64::from(i)))
                },
            })
            .collect();
        for r in &recs {
            r.encode_into(&mut buf);
        }
        let mut at = 0;
        let mut back = Vec::new();
        while at < buf.len() {
            let (rec, used) = StoredRecord::decode(&buf[at..]).expect("frame");
            back.push(rec);
            at += used;
        }
        assert_eq!(back, recs);
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let rec = StoredRecord {
            run: RunId(1),
            payload: RecordPayload::Sample(sample(3)),
        };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(StoredRecord::decode(&buf[..cut]).is_err(), "cut = {cut}");
        }
        // Unknown kind byte.
        let mut bad = buf.clone();
        bad[6] = 99;
        assert!(StoredRecord::decode(&bad).is_err());
        // Arity byte from a different build.
        let mut bad = buf;
        bad[24] = 3; // n_util
        assert!(StoredRecord::decode(&bad).is_err());
    }

    #[test]
    fn nan_payloads_survive_bit_exactly() {
        // NaN never survives JSON; the binary format must carry it.
        let rec = StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: None,
                interval: 0,
                kind: EventKind::SloViolation {
                    observed_ms: f64::NAN,
                    goal_ms: f64::NEG_INFINITY,
                },
            }),
        };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let (back, _) = StoredRecord::decode(&buf).expect("decodes");
        match back.payload {
            RecordPayload::Event(RunEvent {
                kind:
                    EventKind::SloViolation {
                        observed_ms,
                        goal_ms,
                    },
                ..
            }) => {
                assert_eq!(observed_ms.to_bits(), f64::NAN.to_bits());
                assert_eq!(goal_ms.to_bits(), f64::NEG_INFINITY.to_bits());
            }
            other => panic!("wrong payload {other:?}"),
        }
    }
}
