//! # dasr-store — durable segmented run store with a query API
//!
//! The closed loop produces two streams worth keeping: per-interval
//! telemetry samples (the [`replay`](mod@dasr_core::replay) unit) and
//! structured run events (the [`obs`](dasr_core::obs) stream). This crate
//! persists both in an append-only **segmented binary log** and answers
//! questions about them later — time-range scans, per-tenant event
//! streams, rule-fire aggregation across runs — without re-running
//! anything.
//!
//! ```text
//!  run_fleet_summary ──events──▶ StoreSink ─┐          ┌─▶ scan_range
//!  record_run ───────samples──▶ Store ──────┤ writer   │   tenant_events
//!                                           ├─thread──▶│   fire_counts
//!  (batch-buffered, CRC-framed,             │          │   load_recording
//!   deterministic flush — DESIGN.md §16)    ▼          └─▶ StoreSource ──▶ replay
//!                                     seg-NNNNNN.dseg
//!                                     seg-NNNNNN.idx
//!                                     manifest.jsonl
//! ```
//!
//! - [`Store`] — open/recover a store directory, append records under
//!   runs, commit runs to the manifest, query everything back;
//! - [`StoreSink`] — an [`EventSink`](dasr_core::obs::EventSink): stream
//!   a fleet run's events straight to disk;
//! - [`StoreSource`] — a
//!   [`TelemetrySource`](dasr_telemetry::TelemetrySource): feed an
//!   archived run back through any policy via the replay machinery;
//! - [`record`], [`codec`], [`segment`], [`index`], [`writer`],
//!   [`cursor`] — the layers: bit-exact record codec (fixed-width v1
//!   and delta/varint/dictionary v2 framing), CRC-framed batches in
//!   numbered segments, sparse per-batch time index with content
//!   filters and fire tallies, deterministic writer thread, and the
//!   streaming/parallel read fast path ([`Query`], [`RecordCursor`]).
//!
//! Floats are stored as raw IEEE-754 bits, so an archived run replays
//! **byte-identically** to its live event stream — the
//! `store_replay_roundtrip` test pins `FleetReport::events_jsonl` against
//! the store→replay reproduction. The on-disk format is specified
//! byte-for-byte in `docs/STORE_FORMAT.md`, and the `format_spec` test
//! decodes that document's worked hex dump with this crate's real
//! decoder, so spec and implementation cannot drift apart.
//!
//! Crash consistency: the batch is the durability quantum. A torn write
//! leaves a tail that fails its CRC; [`Store::open`] truncates to the
//! last intact batch, rebuilds stale index sidecars, drops a torn
//! manifest tail line, and never reuses the run id of orphaned records.
//! (Durability is to the OS page cache — the store targets torn-write
//! safety and deterministic bytes, not power-loss fsync guarantees.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod codec;
pub mod crc;
pub mod cursor;
pub mod index;
pub mod record;
pub mod segment;
pub mod sink;
pub mod source;
pub mod store;
pub mod writer;

pub use cursor::{Query, RecordCursor, Shape};
pub use record::{RecordPayload, RunId, StoredRecord};
pub use segment::FormatVersion;
pub use sink::StoreSink;
pub use source::StoreSource;
pub use store::{
    FireCounts, RecoveryNote, RunManifest, RunMeta, Store, StoreError, StoreStats, MANIFEST_FILE,
};
pub use writer::WriterConfig;
