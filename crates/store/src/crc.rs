//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`) — the checksum guarding
//! every batch frame and index file.
//!
//! Hand-rolled (the workspace is offline and dependency-free): a
//! slice-by-8 kernel over 8×256-entry tables built at first use via
//! `OnceLock`, the same construction zlib and `crc32fast` use on the
//! scalar path. The read fast path checksums every batch it streams, so
//! the kernel processes eight bytes per step instead of one; the
//! function itself stays the *stable, specified* CRC-32/ISO-HDLC
//! (`docs/STORE_FORMAT.md` §5 lists test vectors).

use std::sync::OnceLock;

/// `t[0]` is the classic byte-at-a-time table; `t[k][i]` advances the
/// partial CRC `t[k-1][i]` through one more zero byte, so eight lookups
/// jointly consume eight input bytes.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            // dasr-lint: allow(G3) reason="i ranges over 0..256, the fixed table width"
            t[0][i] = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// CRC-32/ISO-HDLC of `bytes` (init `0xFFFFFFFF`, reflected, final XOR
/// `0xFFFFFFFF` — the `cksum -a crc32` / zlib `crc32()` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        // dasr-lint: allow(G3) reason="chunks_exact(8) yields exactly 8-byte slices"
        let lo = c ^ u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn sliced_kernel_matches_bytewise_at_every_length() {
        // Cover every remainder length and 8-byte alignment: the sliced
        // kernel and the reference byte-at-a-time loop must agree.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(37) ^ 0xA5) as u8)
            .collect();
        let t = tables();
        for len in 0..data.len() {
            let mut c = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(&data[..len]), c ^ 0xFFFF_FFFF, "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the store's batch payload";
        let good = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), good, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
