//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`) — the checksum guarding
//! every batch frame and index file.
//!
//! Hand-rolled (the workspace is offline and dependency-free): a 256-entry
//! table built at first use via `OnceLock`, the same construction zlib and
//! `crc32fast` implement. The store does not need speed records here —
//! batches are checksummed once per flush — it needs a *stable, specified*
//! function, which CRC-32/ISO-HDLC is (`docs/STORE_FORMAT.md` §5 lists
//! test vectors).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32/ISO-HDLC of `bytes` (init `0xFFFFFFFF`, reflected, final XOR
/// `0xFFFFFFFF` — the `cksum -a crc32` / zlib `crc32()` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the store's batch payload";
        let good = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), good, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
