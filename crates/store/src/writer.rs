//! The writer thread: batch-buffered, deterministically framed appends.
//!
//! All writes to a store go through one background thread fed by a
//! channel. Appends accumulate in an in-memory batch; the batch is framed
//! and written when it reaches [`WriterConfig::batch_records`] records or
//! when a [`flush`](StoreWriter::flush) / shutdown arrives — **never** on
//! a timer. Batch boundaries (and therefore the bytes on disk) are a pure
//! function of the append sequence and the explicit flush points, so two
//! runs of the same deterministic workload produce byte-identical
//! segments; DESIGN.md §16 spells out the argument.
//!
//! The thread owns the active segment file and the in-memory
//! [`SegmentIndex`] of every segment. Rollover happens when a batch write
//! pushes the active segment past [`WriterConfig::segment_max_bytes`]:
//! the segment is sealed (final flush + `.idx` sidecar) and the next
//! numbered segment is created. Flush replies carry a [`WriterSnapshot`]
//! — the full index set — which is how the query side sees fresh data
//! without sharing mutable state.
//!
//! I/O errors are sticky: the first failure is kept, subsequent appends
//! are dropped, and every later flush reports the original error.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::codec::BatchEncoder;
use crate::index::{IndexEntry, SegmentIndex};
use crate::record::StoredRecord;
use crate::segment::{self, FormatVersion};
use crate::StoreError;

/// Flush-policy knobs for the writer thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterConfig {
    /// Records per batch: a batch is flushed to disk when it reaches this
    /// many records (or at an explicit flush, whichever comes first).
    pub batch_records: usize,
    /// Segment size bound in bytes: the segment is sealed and the next one
    /// opened once a batch write reaches this length. A bound, not an
    /// exact size — the final batch is never split.
    pub segment_max_bytes: u64,
    /// Record format for *newly created* segments. A recovered active
    /// segment keeps the format in its header regardless of this knob —
    /// segments are homogeneous — so reopening an old store appends v1
    /// frames until the active v1 segment seals, then rolls into this
    /// format.
    pub format: FormatVersion,
}

impl Default for WriterConfig {
    fn default() -> Self {
        Self {
            batch_records: 256,
            segment_max_bytes: 4 * 1024 * 1024,
            format: FormatVersion::default(),
        }
    }
}

/// A consistent view of the store's segments at one flush point: every
/// segment's index (file order, active segment last) with all buffered
/// records written out.
#[derive(Debug, Clone)]
pub struct WriterSnapshot {
    /// Index of every segment, ordered by segment id; the last one is the
    /// active (appendable) segment.
    pub indices: Vec<SegmentIndex>,
    /// Records appended over the writer's lifetime (this process only).
    pub records_appended: u64,
}

impl WriterSnapshot {
    /// Total store payload records across all segments.
    pub fn records(&self) -> u64 {
        self.indices.iter().map(SegmentIndex::records).sum()
    }

    /// Total segment bytes across all segments.
    pub fn bytes(&self) -> u64 {
        self.indices.iter().map(|i| i.seg_bytes).sum()
    }
}

type Ack = mpsc::Sender<Result<WriterSnapshot, String>>;

enum Msg {
    Append(StoredRecord),
    Flush(Ack),
    Shutdown(Ack),
}

/// Handle to the writer thread. Cloneable append capability is exposed to
/// sinks via [`AppendHandle`]; the owning [`Store`](crate::Store) drives
/// flush and shutdown.
pub struct StoreWriter {
    tx: mpsc::Sender<Msg>,
    thread: Option<JoinHandle<()>>,
}

/// A cheap, `Send` handle that can append records and request flushes —
/// what [`StoreSink`](crate::StoreSink) holds so event streams can write
/// while the `Store` itself stays borrowable for queries.
#[derive(Clone)]
pub struct AppendHandle {
    tx: mpsc::Sender<Msg>,
}

impl AppendHandle {
    /// Sends one record to the writer thread.
    pub fn append(&self, rec: StoredRecord) -> Result<(), StoreError> {
        self.tx
            .send(Msg::Append(rec))
            .map_err(|_| StoreError::Closed)
    }

    /// Flushes buffered records to disk and waits for the ack.
    pub fn flush(&self) -> Result<WriterSnapshot, StoreError> {
        let (ack, rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack))
            .map_err(|_| StoreError::Closed)?;
        match rx.recv() {
            Ok(Ok(snap)) => Ok(snap),
            Ok(Err(e)) => Err(StoreError::Backend(e)),
            Err(_) => Err(StoreError::Closed),
        }
    }
}

impl StoreWriter {
    /// Spawns the writer thread over a recovered store directory.
    ///
    /// `indices` must hold one entry per existing segment in id order; the
    /// last is the active segment, already truncated to its recovered
    /// length — the writer opens it in append mode and continues from
    /// there.
    pub fn spawn(
        dir: PathBuf,
        cfg: WriterConfig,
        indices: Vec<SegmentIndex>,
    ) -> std::io::Result<Self> {
        let active = indices.last().expect("at least the active segment");
        let file = OpenOptions::new()
            .append(true)
            .open(dir.join(segment::file_name(active.segment_id)))?;
        let (tx, rx) = mpsc::channel();
        let mut state = WriterState {
            dir,
            cfg,
            file,
            indices,
            batch_payload: Vec::new(),
            batch_entry: IndexEntry::empty(0),
            frame_buf: Vec::new(),
            encoder: BatchEncoder::new(),
            records_appended: 0,
            error: None,
        };
        let thread = std::thread::Builder::new()
            .name("dasr-store-writer".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Append(rec) => state.append(&rec),
                        Msg::Flush(ack) => {
                            state.flush_all();
                            let _ = ack.send(state.reply());
                        }
                        Msg::Shutdown(ack) => {
                            state.flush_all();
                            let _ = ack.send(state.reply());
                            return;
                        }
                    }
                }
            })?;
        Ok(Self {
            tx,
            thread: Some(thread),
        })
    }

    /// An append/flush handle for sinks.
    pub fn handle(&self) -> AppendHandle {
        AppendHandle {
            tx: self.tx.clone(),
        }
    }

    /// Appends one record (buffered; durable after the next flush or a
    /// full batch).
    pub fn append(&self, rec: StoredRecord) -> Result<(), StoreError> {
        self.tx
            .send(Msg::Append(rec))
            .map_err(|_| StoreError::Closed)
    }

    /// Flushes buffered records and returns the post-flush snapshot.
    pub fn flush(&self) -> Result<WriterSnapshot, StoreError> {
        self.handle().flush()
    }

    /// Flushes, stops the thread, and joins it. Idempotent.
    pub fn shutdown(&mut self) -> Result<Option<WriterSnapshot>, StoreError> {
        let Some(thread) = self.thread.take() else {
            return Ok(None);
        };
        let (ack, rx) = mpsc::channel();
        let sent = self.tx.send(Msg::Shutdown(ack)).is_ok();
        let reply = if sent { rx.recv().ok() } else { None };
        let _ = thread.join();
        match reply {
            Some(Ok(snap)) => Ok(Some(snap)),
            Some(Err(e)) => Err(StoreError::Backend(e)),
            None => Err(StoreError::Closed),
        }
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

struct WriterState {
    dir: PathBuf,
    cfg: WriterConfig,
    file: File,
    /// Every segment's index, id order; last = active.
    indices: Vec<SegmentIndex>,
    /// Encoded records of the open (unwritten) batch.
    batch_payload: Vec<u8>,
    /// Bounding box of the open batch.
    batch_entry: IndexEntry,
    /// Reusable frame buffer for batch writes.
    frame_buf: Vec<u8>,
    /// v2 batch encoder; reset at every batch boundary. Unused while the
    /// active segment is v1.
    encoder: BatchEncoder,
    records_appended: u64,
    /// Sticky first I/O error; set once, reported on every later flush.
    error: Option<String>,
}

impl WriterState {
    fn active(&mut self) -> &mut SegmentIndex {
        self.indices.last_mut().expect("active segment index")
    }

    /// The active segment's record format (fixed by its header).
    fn active_version(&self) -> FormatVersion {
        self.indices.last().expect("active segment index").version
    }

    /// Buffers one record; flushes the batch when it fills. The hot path:
    /// encoding appends into the reusable batch buffer, no per-record
    /// allocation.
    // dasr-lint: no-alloc
    fn append(&mut self, rec: &StoredRecord) {
        if self.error.is_some() {
            return;
        }
        if self.batch_entry.n_records == 0 {
            self.batch_entry = IndexEntry::empty(self.active().seg_bytes);
        }
        match self.active_version() {
            FormatVersion::V1 => rec.encode_into(&mut self.batch_payload),
            FormatVersion::V2 => self.encoder.encode_into(rec, &mut self.batch_payload),
        }
        self.batch_entry.absorb(rec);
        self.records_appended += 1;
        if self.batch_entry.n_records as usize >= self.cfg.batch_records {
            // dasr-lint: allow(G2) reason="batch boundary: flush_batch allocates only on the cold write-error branch and at segment rolls, amortized over batch_records appends"
            self.flush_batch();
        }
    }

    /// Frames and writes the open batch; seals the segment when it passes
    /// the size bound.
    fn flush_batch(&mut self) {
        if self.error.is_some() || self.batch_entry.n_records == 0 {
            return;
        }
        self.frame_buf.clear();
        segment::append_batch(
            &mut self.frame_buf,
            self.batch_entry.n_records,
            &self.batch_payload,
        );
        if let Err(e) = self.file.write_all(&self.frame_buf) {
            self.error = Some(format!("batch write failed: {e}"));
            return;
        }
        let frame_len = self.frame_buf.len() as u64;
        let entry = self.batch_entry;
        let active = self.active();
        active.seg_bytes += frame_len;
        active.entries.push(entry);
        self.batch_payload.clear();
        self.batch_entry = IndexEntry::empty(0);
        self.encoder.reset();
        if self.active().seg_bytes >= self.cfg.segment_max_bytes {
            self.seal_and_roll();
        }
    }

    /// Seals the active segment (data flush + `.idx` sidecar) and opens
    /// the next one.
    fn seal_and_roll(&mut self) {
        if let Err(e) = self.file.flush() {
            self.error = Some(format!("seal flush failed: {e}"));
            return;
        }
        if let Err(e) = self.write_sidecar() {
            self.error = Some(format!("seal sidecar write failed: {e}"));
            return;
        }
        let next_id = self.active().segment_id + 1;
        let path = self.dir.join(segment::file_name(next_id));
        let mut file = match File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                self.error = Some(format!("segment {next_id} create failed: {e}"));
                return;
            }
        };
        if let Err(e) = file.write_all(&segment::header_bytes(next_id, self.cfg.format)) {
            self.error = Some(format!("segment {next_id} header write failed: {e}"));
            return;
        }
        self.file = file;
        self.indices
            .push(SegmentIndex::fresh(next_id, self.cfg.format));
    }

    /// Writes the active segment's `.idx` sidecar (atomic enough for a
    /// cache: the sidecar is rebuilt from the segment whenever it is
    /// stale or torn).
    fn write_sidecar(&mut self) -> std::io::Result<()> {
        let active = self.indices.last().expect("active segment index");
        let path = self.dir.join(SegmentIndex::file_name(active.segment_id));
        std::fs::write(path, active.to_bytes())
    }

    /// Explicit flush: write the open batch, push it to the OS, refresh
    /// the active sidecar.
    fn flush_all(&mut self) {
        self.flush_batch();
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.file.flush() {
            self.error = Some(format!("flush failed: {e}"));
            return;
        }
        if let Err(e) = self.write_sidecar() {
            self.error = Some(format!("sidecar write failed: {e}"));
        }
    }

    fn reply(&self) -> Result<WriterSnapshot, String> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(WriterSnapshot {
                indices: self.indices.clone(),
                records_appended: self.records_appended,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordPayload, RunId};
    use dasr_core::obs::{EventKind, RunEvent};
    use std::path::Path;

    fn rec(interval: u64) -> StoredRecord {
        StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: Some(1),
                interval,
                kind: EventKind::IntervalStart,
            }),
        }
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dasr-writer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn init_segment(dir: &Path, version: FormatVersion) -> Vec<SegmentIndex> {
        std::fs::write(
            dir.join(segment::file_name(0)),
            segment::header_bytes(0, version),
        )
        .expect("seed segment");
        vec![SegmentIndex::fresh(0, version)]
    }

    #[test]
    fn batches_flush_at_the_record_bound() {
        let dir = fresh_dir("batch");
        let cfg = WriterConfig {
            batch_records: 3,
            ..WriterConfig::default()
        };
        let writer =
            StoreWriter::spawn(dir.clone(), cfg, init_segment(&dir, cfg.format)).expect("spawn");
        for i in 0..7 {
            writer.append(rec(i)).expect("append");
        }
        let snap = writer.flush().expect("flush");
        assert_eq!(snap.records_appended, 7);
        let entries = &snap.indices[0].entries;
        // 3 + 3 from the bound, 1 from the explicit flush.
        assert_eq!(
            entries.iter().map(|e| e.n_records).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let bytes = std::fs::read(dir.join(segment::file_name(0))).expect("read");
        let scan = segment::scan(&bytes).expect("scan");
        assert_eq!(scan.batches.len(), 3);
        assert!(scan.torn.is_none());
        drop(writer);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        for (tag, version) in [("roll1", FormatVersion::V1), ("roll2", FormatVersion::V2)] {
            let dir = fresh_dir(tag);
            let cfg = WriterConfig {
                batch_records: 4,
                segment_max_bytes: 256,
                format: version,
            };
            let mut writer =
                StoreWriter::spawn(dir.clone(), cfg, init_segment(&dir, version)).expect("spawn");
            for i in 0..40 {
                writer.append(rec(i)).expect("append");
            }
            let snap = writer.shutdown().expect("shutdown").expect("snapshot");
            assert!(snap.indices.len() > 1, "rolled into multiple segments");
            assert_eq!(snap.records(), 40);
            for idx in &snap.indices {
                assert_eq!(idx.version, version);
                let seg_path = dir.join(segment::file_name(idx.segment_id));
                let bytes = std::fs::read(&seg_path).expect("segment readable");
                assert_eq!(bytes.len() as u64, idx.seg_bytes);
                let rebuilt = SegmentIndex::build_from_segment(&bytes).expect("rebuilds");
                assert_eq!(&rebuilt, idx, "sidecar-free rebuild matches");
                let sidecar = std::fs::read(dir.join(SegmentIndex::file_name(idx.segment_id)))
                    .expect("sidecar written");
                assert_eq!(&SegmentIndex::from_bytes(&sidecar).expect("parses"), idx);
            }
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }

    #[test]
    fn recovered_v1_segment_keeps_v1_until_it_rolls() {
        // A store written before the v2 codec reopens with format = V2 in
        // the config; the active segment must keep appending v1 frames
        // (its header says v1), and only the *next* segment is v2.
        let dir = fresh_dir("upgrade");
        let cfg = WriterConfig {
            batch_records: 4,
            segment_max_bytes: 256,
            format: FormatVersion::V2,
        };
        let mut writer =
            StoreWriter::spawn(dir.clone(), cfg, init_segment(&dir, FormatVersion::V1))
                .expect("spawn");
        for i in 0..40 {
            writer.append(rec(i)).expect("append");
        }
        let snap = writer.shutdown().expect("shutdown").expect("snapshot");
        assert!(snap.indices.len() > 1, "rolled into multiple segments");
        assert_eq!(snap.indices[0].version, FormatVersion::V1);
        assert!(snap.indices[1..]
            .iter()
            .all(|i| i.version == FormatVersion::V2));
        for idx in &snap.indices {
            let bytes =
                std::fs::read(dir.join(segment::file_name(idx.segment_id))).expect("readable");
            assert_eq!(segment::scan(&bytes).expect("scans").version, idx.version);
            assert_eq!(&SegmentIndex::build_from_segment(&bytes).expect("ok"), idx);
        }
        assert_eq!(snap.records(), 40);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn flush_is_deterministic_across_identical_append_sequences() {
        let mut contents = Vec::new();
        for round in 0..2 {
            let dir = fresh_dir(&format!("det{round}"));
            let cfg = WriterConfig {
                batch_records: 5,
                segment_max_bytes: 300,
                ..WriterConfig::default()
            };
            let mut writer = StoreWriter::spawn(dir.clone(), cfg, init_segment(&dir, cfg.format))
                .expect("spawn");
            for i in 0..23 {
                writer.append(rec(i * 7)).expect("append");
                if i == 11 {
                    writer.flush().expect("mid flush");
                }
            }
            let snap = writer.shutdown().expect("shutdown").expect("snapshot");
            let mut bytes = Vec::new();
            for idx in &snap.indices {
                bytes.extend_from_slice(
                    &std::fs::read(dir.join(segment::file_name(idx.segment_id))).expect("read"),
                );
            }
            contents.push(bytes);
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
        assert_eq!(
            contents[0], contents[1],
            "same append + flush sequence, byte-identical segments"
        );
    }
}
