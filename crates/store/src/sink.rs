//! [`StoreSink`]: stream a fleet run's events straight into the store.
//!
//! Implements [`EventSink`], so
//! [`FleetRunner::run_fleet_summary`](dasr_core::FleetRunner) can deliver
//! a fleet's event stream to disk in shard order without ever
//! materializing it in memory — the store-backed counterpart of
//! [`JsonlSink`](dasr_core::obs::JsonlSink). Events cross to the writer
//! thread over the channel; the scheduler's worker is never blocked on
//! disk I/O.
//!
//! Error handling follows the `JsonlSink` idiom: `emit` cannot fail (the
//! trait has no error channel), so the first failure is recorded, later
//! events are dropped, and [`StoreSink::error`] surfaces what happened —
//! check it (or the [`end_run`](crate::Store::end_run) result, which
//! flushes the same writer) after the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::record::{RecordPayload, RunId, StoredRecord};
use crate::writer::AppendHandle;
use dasr_core::obs::{EventSink, RunEvent};

/// An [`EventSink`] that appends every event to a store run.
///
/// Created by [`Store::event_sink`](crate::Store::event_sink); the run
/// must still be open when the events are counted into its manifest entry
/// (i.e. call [`end_run`](crate::Store::end_run) after the fleet run
/// finishes).
pub struct StoreSink {
    handle: AppendHandle,
    run: RunId,
    events: Arc<AtomicU64>,
    error: Option<String>,
}

impl StoreSink {
    pub(crate) fn new(handle: AppendHandle, run: RunId, events: Arc<AtomicU64>) -> Self {
        Self {
            handle,
            run,
            events,
            error: None,
        }
    }

    /// The run this sink records into.
    pub fn run(&self) -> RunId {
        self.run
    }

    /// The first failure, if any (later events were dropped).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

impl EventSink for StoreSink {
    fn emit(&mut self, event: &RunEvent) {
        if self.error.is_some() {
            return;
        }
        let rec = StoredRecord {
            run: self.run,
            payload: RecordPayload::Event(*event),
        };
        match self.handle.append(rec) {
            Ok(()) => {
                self.events.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.handle.flush() {
                self.error = Some(e.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RunMeta, Store};
    use dasr_core::obs::EventKind;

    #[test]
    fn sink_streams_events_into_the_run() {
        let dir = std::env::temp_dir().join(format!("dasr-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open(&dir).expect("open");
        let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        let mut sink = store.event_sink(run).expect("sink");
        assert_eq!(sink.run(), run);
        for tenant in 0..3u64 {
            sink.emit(&RunEvent {
                tenant: Some(tenant),
                interval: tenant,
                kind: EventKind::IntervalStart,
            });
        }
        sink.finish();
        assert!(sink.error().is_none());
        let committed = store.end_run(run).expect("commit");
        assert_eq!(committed.events, 3, "sink emissions counted in manifest");
        assert_eq!(store.tenant_events(run, 2).expect("query").len(), 1);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn sink_for_unknown_run_is_rejected() {
        let dir = std::env::temp_dir().join(format!("dasr-sink-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        assert!(store.event_sink(RunId(99)).is_err());
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
