//! Sparse per-segment time index.
//!
//! One [`IndexEntry`] per batch: the batch's file offset plus the
//! *bounding box* of what it contains — interval range and run-id range.
//! The index is sparse (batch granularity, not record granularity) because
//! fleet event streams are tenant-major: intervals are **not** monotone
//! within a segment, so a query cannot binary-search; it can, however,
//! skip every batch whose bounding box misses the query, which is the
//! scan-cost win (`store_scan` benches measure it).
//!
//! The index is a pure *cache*: it lives in a `.idx` sidecar next to its
//! segment and is rebuilt from the segment bytes whenever it is missing,
//! fails its CRC, or describes a different byte length than the recovered
//! segment (a crash can tear the sidecar just like the log — rebuilding is
//! always safe because the segment is the single source of truth).
//!
//! Byte layout (little-endian; `docs/STORE_FORMAT.md` §4):
//!
//! ```text
//! index  := magic "DASRIDX\x01" | segment_id u32 | n_entries u32
//!           | seg_bytes u64 | entry* | crc32(entries) u32
//! entry  := offset u64 | n_records u32 | min_interval u64 | max_interval u64
//!           | min_run u32 | max_run u32                        (36 bytes)
//! ```

use crate::crc::crc32;
use crate::record::StoredRecord;
use crate::segment;

/// First eight bytes of every index sidecar.
pub const MAGIC: [u8; 8] = *b"DASRIDX\x01";
/// Index header length in bytes.
pub const HEADER_LEN: usize = 24;
/// Encoded size of one [`IndexEntry`].
pub const ENTRY_LEN: usize = 36;

/// One batch's bounding box in the sparse index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// File offset of the batch header inside the segment.
    pub offset: u64,
    /// Records in the batch.
    pub n_records: u32,
    /// Smallest billing interval of any record in the batch.
    pub min_interval: u64,
    /// Largest billing interval of any record in the batch.
    pub max_interval: u64,
    /// Smallest run id of any record in the batch.
    pub min_run: u32,
    /// Largest run id of any record in the batch.
    pub max_run: u32,
}

impl IndexEntry {
    /// Bounding box of `records` (which must be non-empty) at `offset`.
    pub fn from_records(offset: u64, records: &[StoredRecord]) -> Self {
        debug_assert!(!records.is_empty(), "batches are never empty");
        let mut e = Self::empty(offset);
        for r in records {
            e.absorb(r);
        }
        e
    }

    /// Starts a bounding box at `offset` with no records yet.
    pub fn empty(offset: u64) -> Self {
        Self {
            offset,
            n_records: 0,
            min_interval: u64::MAX,
            max_interval: 0,
            min_run: u32::MAX,
            max_run: 0,
        }
    }

    /// Widens the box to cover `rec`.
    // dasr-lint: no-alloc
    pub fn absorb(&mut self, rec: &StoredRecord) {
        let interval = rec.interval();
        self.n_records += 1;
        self.min_interval = self.min_interval.min(interval);
        self.max_interval = self.max_interval.max(interval);
        self.min_run = self.min_run.min(rec.run.0);
        self.max_run = self.max_run.max(rec.run.0);
    }

    /// True when the batch may hold intervals in `[start, end)`.
    // dasr-lint: no-alloc
    pub fn overlaps_intervals(&self, start: u64, end: u64) -> bool {
        self.n_records > 0 && self.min_interval < end && self.max_interval >= start
    }

    /// True when the batch may hold records of `run`.
    // dasr-lint: no-alloc
    pub fn may_contain_run(&self, run: u32) -> bool {
        self.n_records > 0 && self.min_run <= run && self.max_run >= run
    }
}

/// The sparse index of one segment: an [`IndexEntry`] per batch, in file
/// order, stamped with the segment byte length it describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIndex {
    /// The segment this index describes.
    pub segment_id: u32,
    /// Segment byte length the entries cover (staleness check: a sidecar
    /// whose `seg_bytes` differs from the recovered segment is rebuilt).
    pub seg_bytes: u64,
    /// One entry per batch, in file order.
    pub entries: Vec<IndexEntry>,
}

impl SegmentIndex {
    /// File name of segment `id`'s sidecar (`seg-000042.idx`).
    pub fn file_name(id: u32) -> String {
        format!("seg-{id:06}.idx")
    }

    /// An empty index for a fresh segment (header only).
    pub fn fresh(segment_id: u32) -> Self {
        Self {
            segment_id,
            seg_bytes: segment::HEADER_LEN as u64,
            entries: Vec::new(),
        }
    }

    /// Records in the segment, summed over the entries.
    pub fn records(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.n_records)).sum()
    }

    /// Largest run id any entry has seen (`None` for an empty segment) —
    /// recovery uses this as the run-id high-water mark without decoding
    /// a single record.
    pub fn max_run(&self) -> Option<u32> {
        self.entries
            .iter()
            .filter(|e| e.n_records > 0)
            .map(|e| e.max_run)
            .max()
    }

    /// Serializes the sidecar bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.entries.len() * ENTRY_LEN + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.segment_id.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.seg_bytes.to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.n_records.to_le_bytes());
            out.extend_from_slice(&e.min_interval.to_le_bytes());
            out.extend_from_slice(&e.max_interval.to_le_bytes());
            out.extend_from_slice(&e.min_run.to_le_bytes());
            out.extend_from_slice(&e.max_run.to_le_bytes());
        }
        let crc = crc32(&out[HEADER_LEN..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a sidecar; any inconsistency is an error (the caller then
    /// rebuilds from the segment).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err("index sidecar truncated".to_string());
        }
        if bytes[..8] != MAGIC {
            return Err("bad index magic".to_string());
        }
        let segment_id = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let n_entries = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let seg_bytes = u64::from_le_bytes([
            bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
        ]);
        let body_len = n_entries * ENTRY_LEN;
        if bytes.len() != HEADER_LEN + body_len + 4 {
            return Err(format!(
                "index sidecar length {} does not match {n_entries} entries",
                bytes.len()
            ));
        }
        let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
        let stored_crc = u32::from_le_bytes([
            bytes[HEADER_LEN + body_len],
            bytes[HEADER_LEN + body_len + 1],
            bytes[HEADER_LEN + body_len + 2],
            bytes[HEADER_LEN + body_len + 3],
        ]);
        let actual = crc32(body);
        if stored_crc != actual {
            return Err(format!(
                "index sidecar fails CRC: stored {stored_crc:08x}, computed {actual:08x}"
            ));
        }
        let mut entries = Vec::with_capacity(n_entries);
        for chunk in body.chunks_exact(ENTRY_LEN) {
            let u64_at = |at: usize| {
                let mut a = [0u8; 8];
                a.copy_from_slice(&chunk[at..at + 8]);
                u64::from_le_bytes(a)
            };
            let u32_at = |at: usize| {
                let mut a = [0u8; 4];
                a.copy_from_slice(&chunk[at..at + 4]);
                u32::from_le_bytes(a)
            };
            entries.push(IndexEntry {
                offset: u64_at(0),
                n_records: u32_at(8),
                min_interval: u64_at(12),
                max_interval: u64_at(20),
                min_run: u32_at(28),
                max_run: u32_at(32),
            });
        }
        Ok(Self {
            segment_id,
            seg_bytes,
            entries,
        })
    }

    /// Rebuilds the index by scanning (and fully decoding) the segment
    /// bytes — the fallback when the sidecar is missing or untrustworthy.
    pub fn build_from_segment(bytes: &[u8]) -> Result<Self, String> {
        let scan = segment::scan(bytes)?;
        let mut entries = Vec::with_capacity(scan.batches.len());
        for batch in &scan.batches {
            let records = batch.records()?;
            entries.push(IndexEntry::from_records(batch.offset, &records));
        }
        Ok(Self {
            segment_id: scan.segment_id,
            seg_bytes: scan.valid_len,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordPayload, RunId};
    use dasr_core::obs::{EventKind, RunEvent};

    fn rec(run: u32, interval: u64) -> StoredRecord {
        StoredRecord {
            run: RunId(run),
            payload: RecordPayload::Event(RunEvent {
                tenant: None,
                interval,
                kind: EventKind::IntervalStart,
            }),
        }
    }

    #[test]
    fn bounding_boxes_and_overlap() {
        let e = IndexEntry::from_records(16, &[rec(1, 10), rec(3, 50), rec(2, 30)]);
        assert_eq!(e.n_records, 3);
        assert_eq!((e.min_interval, e.max_interval), (10, 50));
        assert_eq!((e.min_run, e.max_run), (1, 3));
        assert!(e.overlaps_intervals(0, 11));
        assert!(e.overlaps_intervals(50, 51));
        assert!(!e.overlaps_intervals(0, 10));
        assert!(!e.overlaps_intervals(51, 100));
        assert!(e.may_contain_run(2));
        assert!(!e.may_contain_run(4));
        assert!(!IndexEntry::empty(0).overlaps_intervals(0, u64::MAX));
    }

    #[test]
    fn sidecar_round_trips() {
        let idx = SegmentIndex {
            segment_id: 3,
            seg_bytes: 4096,
            entries: vec![
                IndexEntry::from_records(16, &[rec(0, 5)]),
                IndexEntry::from_records(80, &[rec(1, 7), rec(1, 9)]),
            ],
        };
        let bytes = idx.to_bytes();
        let back = SegmentIndex::from_bytes(&bytes).expect("parses");
        assert_eq!(back, idx);
        assert_eq!(back.records(), 3);
        assert_eq!(back.max_run(), Some(1));
        assert_eq!(SegmentIndex::fresh(9).max_run(), None);
    }

    #[test]
    fn corrupt_sidecars_are_rejected() {
        let idx = SegmentIndex {
            segment_id: 1,
            seg_bytes: 100,
            entries: vec![IndexEntry::from_records(16, &[rec(0, 1)])],
        };
        let bytes = idx.to_bytes();
        assert!(SegmentIndex::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SegmentIndex::from_bytes(&bad).is_err());
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 2] ^= 1; // entry byte: CRC must catch it
        assert!(SegmentIndex::from_bytes(&bad).is_err());
        let mut bad = bytes;
        bad.truncate(bad.len() - 1);
        assert!(SegmentIndex::from_bytes(&bad).is_err());
    }

    #[test]
    fn rebuild_matches_incremental_construction() {
        let mut seg = segment::header_bytes(5).to_vec();
        let recs = [rec(0, 3), rec(0, 8), rec(1, 1)];
        let mut payload = Vec::new();
        for r in &recs {
            r.encode_into(&mut payload);
        }
        segment::append_batch(&mut seg, recs.len() as u32, &payload);
        let rebuilt = SegmentIndex::build_from_segment(&seg).expect("rebuilds");
        assert_eq!(rebuilt.segment_id, 5);
        assert_eq!(rebuilt.seg_bytes, seg.len() as u64);
        assert_eq!(rebuilt.entries, vec![IndexEntry::from_records(16, &recs)]);
    }
}
