//! Sparse per-segment time index.
//!
//! One [`IndexEntry`] per batch: the batch's file offset plus the
//! *bounding box* of what it contains — interval range and run-id range.
//! The index is sparse (batch granularity, not record granularity) because
//! fleet event streams are tenant-major: intervals are **not** monotone
//! within a segment, so a query cannot binary-search; it can, however,
//! skip every batch whose bounding box misses the query, which is the
//! scan-cost win (`store_scan` benches measure it).
//!
//! The index is a pure *cache*: it lives in a `.idx` sidecar next to its
//! segment and is rebuilt from the segment bytes whenever it is missing,
//! fails its CRC, or describes a different byte length than the recovered
//! segment (a crash can tear the sidecar just like the log — rebuilding is
//! always safe because the segment is the single source of truth).
//!
//! Beyond the bounding boxes, each entry carries two *content filters*
//! so the common queries can skip batches without touching segment
//! bytes at all:
//!
//! - [`TenantFilter`] — a 64-bit hashed tenant-presence filter (one bit
//!   per tenant via SplitMix64). `tenant_events` skips any batch whose
//!   filter lacks the queried tenant's bit; false positives only cost a
//!   decode, never correctness.
//! - [`KindSet`] — a per-etag event-kind bitmap plus a has-samples bit.
//!   `fire_counts` skips batches holding nothing it counts; `run_samples`
//!   skips all-event batches.
//! - [`FireTally`] — per-batch rule-fire counters, one slot per counted
//!   event shape. A batch the query's window and run filter admit *in
//!   full* is answered by summing its tally — `fire_counts` over a whole
//!   run never reads a single segment byte.
//!
//! Byte layout (little-endian; `docs/STORE_FORMAT.md` §4):
//!
//! ```text
//! index  := magic "DASRIDX\x02" | segment_id u32 | n_entries u32
//!           | seg_bytes u64 | seg_version u16 | reserved u16×3
//!           | entry* | crc32(entries) u32
//! entry  := offset u64 | n_records u32 | min_interval u64 | max_interval u64
//!           | min_run u32 | max_run u32 | tenant_filter u64
//!           | kinds u16 | fires u32×9                          (82 bytes)
//! ```
//!
//! (The PR-8 sidecar magic was `DASRIDX\x01` with 36-byte entries; those
//! sidecars simply fail the magic check and are rebuilt from their
//! segment — the sidecar is a cache, so the upgrade is self-healing.)

use crate::crc::crc32;
use crate::record::{etag, etag_of, RecordPayload, StoredRecord};
use crate::segment::{self, FormatVersion};
use dasr_core::obs::{BalloonPhase, DenyReason, EventKind};

/// First eight bytes of every index sidecar.
pub const MAGIC: [u8; 8] = *b"DASRIDX\x02";
/// Index header length in bytes.
pub const HEADER_LEN: usize = 32;
/// Encoded size of one [`IndexEntry`].
pub const ENTRY_LEN: usize = 82;

/// SplitMix64 finalizer — the fixed, seedless bit mixer behind
/// [`TenantFilter`]. Deterministic by construction: the same tenant id
/// always hashes to the same bit on every platform.
// dasr-lint: no-alloc
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 64-bit hashed tenant-presence filter: bit `splitmix64(t) % 64` is
/// set for every tenant `t` stamped on a record in the batch. A clear
/// bit proves absence; a set bit only permits presence (one-in-64 false
/// positives per absent tenant are the price of eight bytes per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantFilter(pub u64);

impl TenantFilter {
    /// Adds `tenant`'s bit (un-stamped records leave the filter alone —
    /// tenant queries never match them).
    // dasr-lint: no-alloc
    pub fn stamp(&mut self, tenant: Option<u64>) {
        if let Some(t) = tenant {
            self.0 |= 1u64 << (splitmix64(t) & 63);
        }
    }

    /// False when the batch provably holds no record of `tenant`.
    // dasr-lint: no-alloc
    pub fn may_contain(self, tenant: u64) -> bool {
        self.0 & (1u64 << (splitmix64(tenant) & 63)) != 0
    }
}

/// A bitmap of what record shapes a batch holds: one bit per event tag
/// (`1 << etag`, tags 0..=6) plus [`Self::SAMPLES`] for telemetry
/// samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindSet(pub u16);

impl KindSet {
    /// Bit set when the batch holds any [`RecordPayload::Sample`].
    pub const SAMPLES: u16 = 1 << 15;
    /// Mask covering every event-tag bit.
    pub const ALL_EVENTS: u16 = (1 << etag::COUNT) - 1;

    /// Adds `rec`'s shape to the set.
    // dasr-lint: no-alloc
    pub fn stamp(&mut self, rec: &StoredRecord) {
        match &rec.payload {
            RecordPayload::Event(ev) => self.0 |= 1 << etag_of(&ev.kind),
            RecordPayload::Sample(_) => self.0 |= Self::SAMPLES,
        }
    }

    /// True when the batch may hold an event whose tag bit is in `mask`.
    // dasr-lint: no-alloc
    pub fn intersects(self, mask: u16) -> bool {
        self.0 & mask != 0
    }

    /// True when the batch may hold telemetry samples.
    // dasr-lint: no-alloc
    pub fn has_samples(self) -> bool {
        self.0 & Self::SAMPLES != 0
    }
}

/// Per-batch rule-fire counters, one `u32` slot per event shape that
/// `FireCounts::record` counts, in the same order `FireCounts` lists
/// its fields (the slot order is part of the sidecar wire format):
///
/// ```text
/// 0 interval_starts   1 resizes_issued    2 denied_cooldown
/// 3 denied_budget     4 budget_throttles  5 balloon_started
/// 6 balloon_aborted   7 balloon_confirmed 8 slo_violations
/// ```
///
/// `IntervalEnd` events and samples tally nothing, mirroring what the
/// decode path would count. A `u32` per slot cannot overflow: a batch
/// holds at most `n_records` (itself a `u32`) events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FireTally(pub [u32; Self::SLOTS]);

impl FireTally {
    /// Number of counter slots.
    pub const SLOTS: usize = 9;

    /// Tallies one event (exactly the events `FireCounts::record` counts).
    // dasr-lint: no-alloc
    pub fn stamp(&mut self, kind: &EventKind) {
        let slot = match kind {
            EventKind::IntervalStart => 0,
            EventKind::IntervalEnd { .. } => return,
            EventKind::ResizeIssued { .. } => 1,
            EventKind::ResizeDenied {
                reason: DenyReason::Cooldown,
            } => 2,
            EventKind::ResizeDenied {
                reason: DenyReason::Budget,
            } => 3,
            EventKind::BudgetThrottle { .. } => 4,
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Started,
                ..
            } => 5,
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Aborted,
                ..
            } => 6,
            EventKind::BalloonTrigger {
                phase: BalloonPhase::Confirmed,
                ..
            } => 7,
            EventKind::SloViolation { .. } => 8,
        };
        self.0[slot] += 1;
    }
}

/// One batch's bounding box in the sparse index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// File offset of the batch header inside the segment.
    pub offset: u64,
    /// Records in the batch.
    pub n_records: u32,
    /// Smallest billing interval of any record in the batch.
    pub min_interval: u64,
    /// Largest billing interval of any record in the batch.
    pub max_interval: u64,
    /// Smallest run id of any record in the batch.
    pub min_run: u32,
    /// Largest run id of any record in the batch.
    pub max_run: u32,
    /// Hashed presence filter over the batch's tenant stamps.
    pub tenant_filter: TenantFilter,
    /// Bitmap of the record shapes (event tags / samples) present.
    pub kinds: KindSet,
    /// Rule-fire counters over the batch's events — lets fully-covered
    /// batches answer `fire_counts` without being read at all.
    pub fires: FireTally,
}

impl IndexEntry {
    /// Bounding box of `records` (which must be non-empty) at `offset`.
    pub fn from_records(offset: u64, records: &[StoredRecord]) -> Self {
        debug_assert!(!records.is_empty(), "batches are never empty");
        let mut e = Self::empty(offset);
        for r in records {
            e.absorb(r);
        }
        e
    }

    /// Starts a bounding box at `offset` with no records yet.
    pub fn empty(offset: u64) -> Self {
        Self {
            offset,
            n_records: 0,
            min_interval: u64::MAX,
            max_interval: 0,
            min_run: u32::MAX,
            max_run: 0,
            tenant_filter: TenantFilter::default(),
            kinds: KindSet::default(),
            fires: FireTally::default(),
        }
    }

    /// Widens the box (and content filters) to cover `rec`.
    // dasr-lint: no-alloc
    pub fn absorb(&mut self, rec: &StoredRecord) {
        let interval = rec.interval();
        self.n_records += 1;
        self.min_interval = self.min_interval.min(interval);
        self.max_interval = self.max_interval.max(interval);
        self.min_run = self.min_run.min(rec.run.0);
        self.max_run = self.max_run.max(rec.run.0);
        self.tenant_filter.stamp(rec.tenant());
        self.kinds.stamp(rec);
        if let RecordPayload::Event(ev) = &rec.payload {
            self.fires.stamp(&ev.kind);
        }
    }

    /// True when the batch may hold intervals in `[start, end)`.
    // dasr-lint: no-alloc
    pub fn overlaps_intervals(&self, start: u64, end: u64) -> bool {
        self.n_records > 0 && self.min_interval < end && self.max_interval >= start
    }

    /// True when the batch may hold records of `run`.
    // dasr-lint: no-alloc
    pub fn may_contain_run(&self, run: u32) -> bool {
        self.n_records > 0 && self.min_run <= run && self.max_run >= run
    }

    /// True when the batch may hold records of `tenant`.
    // dasr-lint: no-alloc
    pub fn may_contain_tenant(&self, tenant: u64) -> bool {
        self.n_records > 0 && self.tenant_filter.may_contain(tenant)
    }
}

/// The sparse index of one segment: an [`IndexEntry`] per batch, in file
/// order, stamped with the segment byte length it describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIndex {
    /// The segment this index describes.
    pub segment_id: u32,
    /// The segment's record-payload format (mirrored from its header so
    /// readers can plan a query without opening the segment file).
    pub version: FormatVersion,
    /// Segment byte length the entries cover (staleness check: a sidecar
    /// whose `seg_bytes` differs from the recovered segment is rebuilt).
    pub seg_bytes: u64,
    /// One entry per batch, in file order.
    pub entries: Vec<IndexEntry>,
}

impl SegmentIndex {
    /// File name of segment `id`'s sidecar (`seg-000042.idx`).
    pub fn file_name(id: u32) -> String {
        format!("seg-{id:06}.idx")
    }

    /// An empty index for a fresh segment (header only).
    pub fn fresh(segment_id: u32, version: FormatVersion) -> Self {
        Self {
            segment_id,
            version,
            seg_bytes: segment::HEADER_LEN as u64,
            entries: Vec::new(),
        }
    }

    /// Records in the segment, summed over the entries.
    pub fn records(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.n_records)).sum()
    }

    /// Largest run id any entry has seen (`None` for an empty segment) —
    /// recovery uses this as the run-id high-water mark without decoding
    /// a single record.
    pub fn max_run(&self) -> Option<u32> {
        self.entries
            .iter()
            .filter(|e| e.n_records > 0)
            .map(|e| e.max_run)
            .max()
    }

    /// Serializes the sidecar bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.entries.len() * ENTRY_LEN + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.segment_id.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.seg_bytes.to_le_bytes());
        out.extend_from_slice(&self.version.wire().to_le_bytes());
        out.extend_from_slice(&[0u8; 6]);
        for e in &self.entries {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.n_records.to_le_bytes());
            out.extend_from_slice(&e.min_interval.to_le_bytes());
            out.extend_from_slice(&e.max_interval.to_le_bytes());
            out.extend_from_slice(&e.min_run.to_le_bytes());
            out.extend_from_slice(&e.max_run.to_le_bytes());
            out.extend_from_slice(&e.tenant_filter.0.to_le_bytes());
            out.extend_from_slice(&e.kinds.0.to_le_bytes());
            for slot in e.fires.0 {
                out.extend_from_slice(&slot.to_le_bytes());
            }
        }
        let crc = crc32(&out[HEADER_LEN..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a sidecar; any inconsistency is an error (the caller then
    /// rebuilds from the segment).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err("index sidecar truncated".to_string());
        }
        if bytes[..8] != MAGIC {
            return Err("bad index magic".to_string());
        }
        let segment_id = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let n_entries = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let seg_bytes = u64::from_le_bytes([
            bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
        ]);
        let version = FormatVersion::from_wire(u16::from_le_bytes([bytes[24], bytes[25]]))?;
        let body_len = n_entries * ENTRY_LEN;
        if bytes.len() != HEADER_LEN + body_len + 4 {
            return Err(format!(
                "index sidecar length {} does not match {n_entries} entries",
                bytes.len()
            ));
        }
        let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
        let stored_crc = u32::from_le_bytes([
            bytes[HEADER_LEN + body_len],
            bytes[HEADER_LEN + body_len + 1],
            bytes[HEADER_LEN + body_len + 2],
            bytes[HEADER_LEN + body_len + 3],
        ]);
        let actual = crc32(body);
        if stored_crc != actual {
            return Err(format!(
                "index sidecar fails CRC: stored {stored_crc:08x}, computed {actual:08x}"
            ));
        }
        let mut entries = Vec::with_capacity(n_entries);
        for chunk in body.chunks_exact(ENTRY_LEN) {
            let u64_at = |at: usize| {
                let mut a = [0u8; 8];
                a.copy_from_slice(&chunk[at..at + 8]);
                u64::from_le_bytes(a)
            };
            let u32_at = |at: usize| {
                let mut a = [0u8; 4];
                a.copy_from_slice(&chunk[at..at + 4]);
                u32::from_le_bytes(a)
            };
            let mut fires = FireTally::default();
            for (slot, v) in fires.0.iter_mut().enumerate() {
                *v = u32_at(46 + slot * 4);
            }
            entries.push(IndexEntry {
                offset: u64_at(0),
                n_records: u32_at(8),
                min_interval: u64_at(12),
                max_interval: u64_at(20),
                min_run: u32_at(28),
                max_run: u32_at(32),
                tenant_filter: TenantFilter(u64_at(36)),
                kinds: KindSet(u16::from_le_bytes([chunk[44], chunk[45]])),
                fires,
            });
        }
        Ok(Self {
            segment_id,
            version,
            seg_bytes,
            entries,
        })
    }

    /// Rebuilds the index by scanning (and fully decoding) the segment
    /// bytes — the fallback when the sidecar is missing or untrustworthy.
    pub fn build_from_segment(bytes: &[u8]) -> Result<Self, String> {
        let scan = segment::scan(bytes)?;
        let mut entries = Vec::with_capacity(scan.batches.len());
        for batch in &scan.batches {
            let mut entry = IndexEntry::empty(batch.offset);
            segment::decode_payload(batch.version, batch.payload, batch.n_records, |rec| {
                entry.absorb(rec)
            })
            .map_err(|e| format!("batch at offset {}: {e}", batch.offset))?;
            entries.push(entry);
        }
        Ok(Self {
            segment_id: scan.segment_id,
            version: scan.version,
            seg_bytes: scan.valid_len,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordPayload, RunId};
    use dasr_core::obs::{EventKind, RunEvent};

    fn rec(run: u32, interval: u64) -> StoredRecord {
        StoredRecord {
            run: RunId(run),
            payload: RecordPayload::Event(RunEvent {
                tenant: None,
                interval,
                kind: EventKind::IntervalStart,
            }),
        }
    }

    #[test]
    fn bounding_boxes_and_overlap() {
        let e = IndexEntry::from_records(16, &[rec(1, 10), rec(3, 50), rec(2, 30)]);
        assert_eq!(e.n_records, 3);
        assert_eq!((e.min_interval, e.max_interval), (10, 50));
        assert_eq!((e.min_run, e.max_run), (1, 3));
        assert!(e.overlaps_intervals(0, 11));
        assert!(e.overlaps_intervals(50, 51));
        assert!(!e.overlaps_intervals(0, 10));
        assert!(!e.overlaps_intervals(51, 100));
        assert!(e.may_contain_run(2));
        assert!(!e.may_contain_run(4));
        assert!(!IndexEntry::empty(0).overlaps_intervals(0, u64::MAX));
    }

    #[test]
    fn tenant_filter_proves_absence_without_false_negatives() {
        let mut e = IndexEntry::empty(16);
        for t in [0u64, 7, 1_000_000] {
            e.absorb(&StoredRecord {
                run: RunId(0),
                payload: RecordPayload::Event(RunEvent {
                    tenant: Some(t),
                    interval: 1,
                    kind: EventKind::IntervalStart,
                }),
            });
        }
        // Stamped tenants must always pass (no false negatives).
        for t in [0u64, 7, 1_000_000] {
            assert!(e.may_contain_tenant(t), "tenant {t}");
        }
        // With 3 of 64 bits set, *some* absent tenant must fail the
        // filter — find one deterministically.
        let miss = (0..1000u64).find(|t| !e.may_contain_tenant(*t));
        assert!(miss.is_some(), "filter never prunes anything");
        // An un-stamped record contributes nothing.
        let mut blank = IndexEntry::empty(0);
        blank.absorb(&StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: None,
                interval: 1,
                kind: EventKind::IntervalStart,
            }),
        });
        assert_eq!(blank.tenant_filter, TenantFilter(0));
    }

    #[test]
    fn kind_set_tracks_event_tags_and_samples() {
        let mut e = IndexEntry::empty(16);
        e.absorb(&rec(0, 1)); // IntervalStart
        assert!(e.kinds.intersects(1 << etag::INTERVAL_START));
        assert!(!e.kinds.intersects(1 << etag::BUDGET_THROTTLE));
        assert!(!e.kinds.has_samples());
        assert!(e.kinds.intersects(KindSet::ALL_EVENTS));
    }

    #[test]
    fn fire_tally_slot_mapping_and_round_trip() {
        // One event per counted shape (some twice), exercising every
        // tally slot plus the two no-count shapes.
        let ev = |kind: EventKind| StoredRecord {
            run: RunId(0),
            payload: RecordPayload::Event(RunEvent {
                tenant: None,
                interval: 1,
                kind,
            }),
        };
        let mut e = IndexEntry::empty(16);
        e.absorb(&ev(EventKind::IntervalStart));
        e.absorb(&ev(EventKind::IntervalEnd {
            latency_ms: Some(2.0),
            completed: 5,
            rejected: 0,
        }));
        e.absorb(&ev(EventKind::ResizeIssued {
            from_rung: 0,
            to_rung: 1,
        }));
        e.absorb(&ev(EventKind::ResizeDenied {
            reason: DenyReason::Cooldown,
        }));
        e.absorb(&ev(EventKind::ResizeDenied {
            reason: DenyReason::Budget,
        }));
        e.absorb(&ev(EventKind::ResizeDenied {
            reason: DenyReason::Budget,
        }));
        e.absorb(&ev(EventKind::BudgetThrottle { headroom_pct: 1.0 }));
        e.absorb(&ev(EventKind::BalloonTrigger {
            phase: BalloonPhase::Started,
            target_mb: Some(64.0),
        }));
        e.absorb(&ev(EventKind::BalloonTrigger {
            phase: BalloonPhase::Aborted,
            target_mb: None,
        }));
        e.absorb(&ev(EventKind::BalloonTrigger {
            phase: BalloonPhase::Confirmed,
            target_mb: Some(64.0),
        }));
        e.absorb(&ev(EventKind::SloViolation {
            observed_ms: 9.0,
            goal_ms: 5.0,
        }));
        // IntervalEnd tallies nothing; every other slot as documented.
        assert_eq!(e.fires, FireTally([1, 1, 1, 2, 1, 1, 1, 1, 1]));
        assert_eq!(e.n_records, 11);

        // The tally survives the sidecar wire format.
        let idx = SegmentIndex {
            segment_id: 3,
            version: FormatVersion::V2,
            seg_bytes: 999,
            entries: vec![e],
        };
        let parsed = SegmentIndex::from_bytes(&idx.to_bytes()).expect("parse");
        assert_eq!(parsed, idx);
    }

    #[test]
    fn sidecar_round_trips() {
        let idx = SegmentIndex {
            segment_id: 3,
            version: FormatVersion::V2,
            seg_bytes: 4096,
            entries: vec![
                IndexEntry::from_records(16, &[rec(0, 5)]),
                IndexEntry::from_records(80, &[rec(1, 7), rec(1, 9)]),
            ],
        };
        let bytes = idx.to_bytes();
        let back = SegmentIndex::from_bytes(&bytes).expect("parses");
        assert_eq!(back, idx);
        assert_eq!(back.records(), 3);
        assert_eq!(back.max_run(), Some(1));
        assert_eq!(
            SegmentIndex::fresh(9, FormatVersion::default()).max_run(),
            None
        );
    }

    #[test]
    fn corrupt_sidecars_are_rejected() {
        let idx = SegmentIndex {
            segment_id: 1,
            version: FormatVersion::V1,
            seg_bytes: 100,
            entries: vec![IndexEntry::from_records(16, &[rec(0, 1)])],
        };
        let bytes = idx.to_bytes();
        assert!(SegmentIndex::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SegmentIndex::from_bytes(&bad).is_err());
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 2] ^= 1; // entry byte: CRC must catch it
        assert!(SegmentIndex::from_bytes(&bad).is_err());
        let mut bad = bytes;
        bad.truncate(bad.len() - 1);
        assert!(SegmentIndex::from_bytes(&bad).is_err());
        // A PR-8 (v1-magic) sidecar fails the magic check → rebuilt.
        let mut old = idx.to_bytes();
        old[7] = 0x01;
        assert!(SegmentIndex::from_bytes(&old)
            .expect_err("old magic")
            .contains("magic"));
    }

    #[test]
    fn rebuild_matches_incremental_construction() {
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let mut seg = segment::header_bytes(5, version).to_vec();
            let recs = [rec(0, 3), rec(0, 8), rec(1, 1)];
            let mut payload = Vec::new();
            match version {
                FormatVersion::V1 => {
                    for r in &recs {
                        r.encode_into(&mut payload);
                    }
                }
                FormatVersion::V2 => {
                    let mut enc = crate::codec::BatchEncoder::new();
                    for r in &recs {
                        enc.encode_into(r, &mut payload);
                    }
                }
            }
            segment::append_batch(&mut seg, recs.len() as u32, &payload);
            let rebuilt = SegmentIndex::build_from_segment(&seg).expect("rebuilds");
            assert_eq!(rebuilt.segment_id, 5);
            assert_eq!(rebuilt.version, version);
            assert_eq!(rebuilt.seg_bytes, seg.len() as u64);
            assert_eq!(rebuilt.entries, vec![IndexEntry::from_records(16, &recs)]);
        }
    }
}
