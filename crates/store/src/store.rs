//! [`Store`]: the durable run store — open/recover, append, commit runs,
//! query back.
//!
//! A store is one directory:
//!
//! ```text
//! store/
//!   manifest.jsonl     run catalog: one committed run per line
//!   seg-000000.dseg    segment 0 (sealed)
//!   seg-000000.idx     its sparse index sidecar
//!   seg-000001.dseg    segment 1 (active, appendable)
//!   seg-000001.idx     its sidecar (refreshed at every flush)
//! ```
//!
//! **Commit protocol.** Records append through the writer thread into the
//! active segment; a run becomes *committed* when [`Store::end_run`]
//! flushes the writer and appends the run's manifest line. Recovery honors
//! exactly that order: torn segment tails are truncated to the last intact
//! batch, a torn manifest tail line is dropped, and run ids of
//! uncommitted records are never reused (the sparse index doubles as a
//! run-id high-water mark), so a crash leaves at worst an orphaned —
//! never a corrupted or aliased — run.
//!
//! **Queries.** Every query first flushes the writer (so results include
//! all appends that happened-before the call), then runs a [`Query`]
//! through the cursor layer: only batches whose index entry — interval
//! bounding box, run range, tenant-presence filter, kind bitmap — may
//! match are read or decoded, segments fan out across
//! [`read_threads`](Store::read_threads) workers, and per-segment
//! partials fold back in segment order, so results are in append order
//! and byte-identical at any thread count. [`Store::cursor`] exposes the
//! same machinery as a lazy iterator with O(batch) memory.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cursor::{self, Query, RecordCursor, Shape};
use crate::index::{FireTally, KindSet, SegmentIndex};
use crate::record::{etag, RecordPayload, RunId, StoredRecord};
use crate::segment::{self, FormatVersion};
use crate::sink::StoreSink;
use crate::writer::{StoreWriter, WriterConfig, WriterSnapshot};
use dasr_core::json::{self, Json};
use dasr_core::obs::{BalloonPhase, DenyReason, EventKind, RunEvent};
use dasr_core::replay::{RecordingHeader, RunRecording, SampleRecord};

/// The run-catalog file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// Everything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed (open, read, truncate, manifest write).
    Io(std::io::Error),
    /// The writer thread hit an I/O error earlier; appends since then were
    /// dropped and the original failure is reported here.
    Backend(String),
    /// On-disk bytes that recovery cannot explain as a torn tail.
    Corrupt(String),
    /// The run id is not open (for appends) or not committed (for reads).
    UnknownRun(RunId),
    /// The writer thread is gone (the store was closed).
    Closed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::Backend(e) => write!(f, "store writer failed: {e}"),
            Self::Corrupt(e) => write!(f, "store corrupt: {e}"),
            Self::UnknownRun(run) => write!(f, "unknown run {run}"),
            Self::Closed => write!(f, "store writer is closed"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Caller-supplied metadata describing a run, recorded in the manifest
/// and replayed back as a [`RecordingHeader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Policy that produced the run.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Demand-trace name.
    pub trace: String,
    /// Base seed (for fleets: the fleet seed the per-tenant SplitMix64
    /// streams derive from).
    pub seed: u64,
    /// Tenants in the run.
    pub tenants: u64,
    /// Billing intervals per tenant.
    pub intervals: u64,
}

impl RunMeta {
    /// Metadata for a single-tenant run.
    pub fn new(policy: &str, workload: &str, trace: &str, seed: u64) -> Self {
        Self {
            policy: policy.to_string(),
            workload: workload.to_string(),
            trace: trace.to_string(),
            seed,
            tenants: 1,
            intervals: 0,
        }
    }

    /// Widens the metadata to a fleet shape.
    #[must_use]
    pub fn fleet(mut self, tenants: u64, intervals: u64) -> Self {
        self.tenants = tenants;
        self.intervals = intervals;
        self
    }

    /// The replay header this metadata reconstructs.
    pub fn header(&self) -> RecordingHeader {
        RecordingHeader {
            policy: self.policy.clone(),
            workload: self.workload.clone(),
            trace: self.trace.clone(),
            seed: self.seed,
        }
    }
}

/// One committed run in the catalog: caller metadata plus what the store
/// counted on the way in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// The run's id within this store.
    pub run: RunId,
    /// Caller-supplied metadata.
    pub meta: RunMeta,
    /// Sample records committed under this run.
    pub samples: u64,
    /// Event records committed under this run.
    pub events: u64,
}

impl RunManifest {
    /// Serializes the manifest entry as one JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("dasr-run".into())),
            ("version".into(), Json::Num(1.0)),
            ("run".into(), Json::Num(f64::from(self.run.0))),
            ("policy".into(), Json::Str(self.meta.policy.clone())),
            ("workload".into(), Json::Str(self.meta.workload.clone())),
            ("trace".into(), Json::Str(self.meta.trace.clone())),
            // Seeds use the full u64 range — ship as text, as recordings do.
            ("seed".into(), Json::Str(self.meta.seed.to_string())),
            ("tenants".into(), Json::Num(self.meta.tenants as f64)),
            ("intervals".into(), Json::Num(self.meta.intervals as f64)),
            ("samples".into(), Json::Num(self.samples as f64)),
            ("events".into(), Json::Num(self.events as f64)),
        ])
        .write()
    }

    /// Parses an entry back from [`RunManifest::to_json_line`] output.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line)?;
        if v.get("kind")?.str()? != "dasr-run" {
            return Err("not a dasr-run manifest line".into());
        }
        let version = v.get("version")?.num()? as u64;
        if version != 1 {
            return Err(format!("unsupported manifest version {version}"));
        }
        Ok(Self {
            run: RunId(v.get("run")?.num()? as u32),
            meta: RunMeta {
                policy: v.get("policy")?.str()?.to_string(),
                workload: v.get("workload")?.str()?.to_string(),
                trace: v.get("trace")?.str()?.to_string(),
                seed: v
                    .get("seed")?
                    .str()?
                    .parse::<u64>()
                    .map_err(|e| format!("bad seed: {e}"))?,
                tenants: v.get("tenants")?.num()? as u64,
                intervals: v.get("intervals")?.num()? as u64,
            },
            samples: v.get("samples")?.num()? as u64,
            events: v.get("events")?.num()? as u64,
        })
    }
}

/// Rule-fire totals aggregated from stored event records — the
/// "which rules fired, how often" query over any interval window, one run
/// or the whole store. R1-protected: counts only, rendered at print time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FireCounts {
    /// `IntervalStart` events seen (a normalization denominator).
    pub interval_starts: u64,
    /// Resizes issued.
    pub resizes_issued: u64,
    /// Resizes denied by the cooldown rule.
    pub denied_cooldown: u64,
    /// Resizes denied by the budget rule.
    pub denied_budget: u64,
    /// Budget-throttle fires.
    pub budget_throttles: u64,
    /// Balloon probes started.
    pub balloon_started: u64,
    /// Balloon probes aborted.
    pub balloon_aborted: u64,
    /// Balloon probes confirmed.
    pub balloon_confirmed: u64,
    /// SLO violations observed.
    pub slo_violations: u64,
}

impl FireCounts {
    /// Folds one event into the totals.
    // dasr-lint: no-alloc
    pub fn record(&mut self, kind: &EventKind) {
        match kind {
            EventKind::IntervalStart => self.interval_starts += 1,
            EventKind::IntervalEnd { .. } => {}
            EventKind::ResizeIssued { .. } => self.resizes_issued += 1,
            EventKind::ResizeDenied { reason } => match reason {
                DenyReason::Cooldown => self.denied_cooldown += 1,
                DenyReason::Budget => self.denied_budget += 1,
            },
            EventKind::BudgetThrottle { .. } => self.budget_throttles += 1,
            EventKind::BalloonTrigger { phase, .. } => match phase {
                BalloonPhase::Started => self.balloon_started += 1,
                BalloonPhase::Aborted => self.balloon_aborted += 1,
                BalloonPhase::Confirmed => self.balloon_confirmed += 1,
            },
            EventKind::SloViolation { .. } => self.slo_violations += 1,
        }
    }

    /// Adds one batch's index-side tally — the zero-decode path of
    /// [`Store::fire_counts`]: a batch the query admits in full
    /// contributes its pre-computed counters straight off the sidecar.
    /// Slot order is fixed by [`FireTally`]'s docs.
    pub fn merge_tally(&mut self, t: &FireTally) {
        self.interval_starts += u64::from(t.0[0]);
        self.resizes_issued += u64::from(t.0[1]);
        self.denied_cooldown += u64::from(t.0[2]);
        self.denied_budget += u64::from(t.0[3]);
        self.budget_throttles += u64::from(t.0[4]);
        self.balloon_started += u64::from(t.0[5]);
        self.balloon_aborted += u64::from(t.0[6]);
        self.balloon_confirmed += u64::from(t.0[7]);
        self.slo_violations += u64::from(t.0[8]);
    }

    /// Adds another tally into this one — the exact-sum monoid queries
    /// use to combine per-segment partials (order-independent, so the
    /// parallel fold cannot perturb totals).
    pub fn merge(&mut self, other: &Self) {
        self.interval_starts += other.interval_starts;
        self.resizes_issued += other.resizes_issued;
        self.denied_cooldown += other.denied_cooldown;
        self.denied_budget += other.denied_budget;
        self.budget_throttles += other.budget_throttles;
        self.balloon_started += other.balloon_started;
        self.balloon_aborted += other.balloon_aborted;
        self.balloon_confirmed += other.balloon_confirmed;
        self.slo_violations += other.slo_violations;
    }

    /// Total rule fires (everything except interval bookkeeping).
    pub fn total_fires(&self) -> u64 {
        self.resizes_issued
            + self.denied_cooldown
            + self.denied_budget
            + self.budget_throttles
            + self.balloon_started
            + self.balloon_aborted
            + self.balloon_confirmed
            + self.slo_violations
    }
}

impl std::fmt::Display for FireCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resizes={} denied(cooldown={}, budget={}) throttles={} \
             balloons(start={}, abort={}, confirm={}) slo={}",
            self.resizes_issued,
            self.denied_cooldown,
            self.denied_budget,
            self.budget_throttles,
            self.balloon_started,
            self.balloon_aborted,
            self.balloon_confirmed,
            self.slo_violations
        )
    }
}

/// Size accounting over the whole store (from the index, no data reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Segment files.
    pub segments: u64,
    /// Committed batches.
    pub batches: u64,
    /// Records across all batches.
    pub records: u64,
    /// Segment bytes (headers + frames; sidecars and manifest excluded).
    pub bytes: u64,
}

/// One recovery action taken by [`Store::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryNote {
    /// The segment acted on (`None` for manifest recovery).
    pub segment: Option<u32>,
    /// What happened, human-readable.
    pub detail: String,
}

struct PendingRun {
    meta: RunMeta,
    samples: u64,
    /// Shared with any [`StoreSink`]s recording into this run.
    events: Arc<AtomicU64>,
}

/// The durable segmented run store. See the [module docs](self) for the
/// directory layout and commit protocol.
pub struct Store {
    dir: PathBuf,
    writer: StoreWriter,
    manifest: Vec<RunManifest>,
    open_runs: BTreeMap<u32, PendingRun>,
    next_run: u32,
    recovery: Vec<RecoveryNote>,
    read_threads: usize,
}

impl Store {
    /// Opens (creating if needed) the store at `dir` with default writer
    /// knobs, running crash recovery first: torn segment tails are
    /// truncated to the last intact batch, stale index sidecars rebuilt,
    /// and a torn manifest tail line dropped — see
    /// [`recovery_notes`](Self::recovery_notes) for what was done.
    ///
    /// # Examples
    ///
    /// ```
    /// use dasr_store::Store;
    ///
    /// let dir = std::env::temp_dir().join(format!("dasr-doc-open-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let store = Store::open(&dir)?;
    /// assert!(store.runs().is_empty());
    /// assert!(store.recovery_notes().is_empty());
    /// store.close()?;
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), dasr_store::StoreError>(())
    /// ```
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, WriterConfig::default())
    }

    /// [`open`](Self::open) with explicit writer knobs (batch size,
    /// segment size bound).
    pub fn open_with(dir: impl AsRef<Path>, cfg: WriterConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut notes = Vec::new();
        let indices = recover_segments(&dir, cfg.format, &mut notes)?;
        let manifest = recover_manifest(&dir, &mut notes)?;
        let max_manifest_run = manifest.iter().map(|m| m.run.0).max();
        let max_stored_run = indices.iter().filter_map(SegmentIndex::max_run).max();
        let next_run = max_manifest_run
            .max(max_stored_run)
            .map_or(0, |max| max + 1);
        let writer = StoreWriter::spawn(dir.clone(), cfg, indices)?;
        Ok(Self {
            dir,
            writer,
            manifest,
            open_runs: BTreeMap::new(),
            next_run,
            recovery: notes,
            read_threads: std::thread::available_parallelism().map_or(1, usize::from),
        })
    }

    /// How many worker threads queries fan segments out across.
    pub fn read_threads(&self) -> usize {
        self.read_threads
    }

    /// Sets the query fan-out width (clamped to at least 1). Results are
    /// byte-identical at any setting; this only trades wall-clock for
    /// cores.
    pub fn set_read_threads(&mut self, threads: usize) {
        self.read_threads = threads.max(1);
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What [`open`](Self::open) had to repair (empty after a clean
    /// shutdown).
    pub fn recovery_notes(&self) -> &[RecoveryNote] {
        &self.recovery
    }

    /// The committed runs, in commit order.
    pub fn runs(&self) -> &[RunManifest] {
        &self.manifest
    }

    /// Opens a new run: assigns the next run id and starts counting its
    /// records. The run appears in [`runs`](Self::runs) only after
    /// [`end_run`](Self::end_run) commits it.
    pub fn begin_run(&mut self, meta: RunMeta) -> RunId {
        let run = RunId(self.next_run);
        self.next_run += 1;
        self.open_runs.insert(
            run.0,
            PendingRun {
                meta,
                samples: 0,
                events: Arc::new(AtomicU64::new(0)),
            },
        );
        run
    }

    /// Appends one record under an open run. Buffered: durable after the
    /// batch fills, an explicit [`flush`](Self::flush), or the committing
    /// [`end_run`](Self::end_run).
    ///
    /// # Examples
    ///
    /// ```
    /// use dasr_core::obs::{EventKind, RunEvent};
    /// use dasr_store::{RecordPayload, RunMeta, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("dasr-doc-append-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut store = Store::open(&dir)?;
    /// let run = store.begin_run(RunMeta::new("static-max", "cpuio", "flat", 7));
    /// store.append(
    ///     run,
    ///     RecordPayload::Event(RunEvent {
    ///         tenant: Some(0),
    ///         interval: 3,
    ///         kind: EventKind::IntervalStart,
    ///     }),
    /// )?;
    /// let committed = store.end_run(run)?;
    /// assert_eq!(committed.events, 1);
    /// store.close()?;
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), dasr_store::StoreError>(())
    /// ```
    pub fn append(&mut self, run: RunId, payload: RecordPayload) -> Result<(), StoreError> {
        let pending = self
            .open_runs
            .get_mut(&run.0)
            .ok_or(StoreError::UnknownRun(run))?;
        match &payload {
            RecordPayload::Sample(_) => pending.samples += 1,
            RecordPayload::Event(_) => {
                pending.events.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.writer.append(StoredRecord { run, payload })
    }

    /// Appends every sample record of `recording` under `run` (the bulk
    /// path for archiving a [`record_run`](dasr_core::replay::record_run)
    /// capture). Records are `Copy`, so the loop moves plain stack
    /// copies into the writer — no per-record heap traffic.
    // dasr-lint: no-alloc
    pub fn append_recording(
        &mut self,
        run: RunId,
        recording: &RunRecording,
    ) -> Result<(), StoreError> {
        for rec in &recording.records {
            self.append(run, RecordPayload::Sample(*rec))?;
        }
        Ok(())
    }

    /// An [`EventSink`](dasr_core::obs::EventSink) that streams a fleet
    /// run's events into `run` — hand it to
    /// [`FleetRunner::run_fleet_summary`](dasr_core::FleetRunner) and the
    /// whole event stream lands in the store without materializing in
    /// memory.
    pub fn event_sink(&self, run: RunId) -> Result<StoreSink, StoreError> {
        let pending = self
            .open_runs
            .get(&run.0)
            .ok_or(StoreError::UnknownRun(run))?;
        Ok(StoreSink::new(
            self.writer.handle(),
            run,
            Arc::clone(&pending.events),
        ))
    }

    /// Commits an open run: flushes every buffered record to disk, then
    /// appends the run's line to `manifest.jsonl` — the commit point.
    pub fn end_run(&mut self, run: RunId) -> Result<RunManifest, StoreError> {
        if !self.open_runs.contains_key(&run.0) {
            return Err(StoreError::UnknownRun(run));
        }
        self.writer.flush()?;
        let pending = self
            .open_runs
            .remove(&run.0)
            .ok_or(StoreError::UnknownRun(run))?;
        let entry = RunManifest {
            run,
            meta: pending.meta,
            samples: pending.samples,
            events: pending.events.load(Ordering::Relaxed),
        };
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.dir.join(MANIFEST_FILE))?;
        file.write_all(entry.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        self.manifest.push(entry.clone());
        Ok(entry)
    }

    /// Flushes buffered records to disk without committing anything.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.writer.flush().map(|_| ())
    }

    /// Flushes, stops the writer thread, and consumes the store. Open
    /// (uncommitted) runs stay orphaned on disk; recovery never confuses
    /// them with committed data.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.writer.shutdown().map(|_| ())
    }

    /// Size accounting from the index — no data reads.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let snap = self.writer.flush()?;
        Ok(StoreStats {
            segments: snap.indices.len() as u64,
            batches: snap.indices.iter().map(|i| i.entries.len() as u64).sum(),
            records: snap.records(),
            bytes: snap.bytes(),
        })
    }

    /// Every stored record whose billing interval falls in `intervals`,
    /// across all runs, in append order. Batches whose index bounding box
    /// misses the range are skipped without being read or decoded.
    ///
    /// # Examples
    ///
    /// ```
    /// use dasr_core::obs::{EventKind, RunEvent};
    /// use dasr_store::{RecordPayload, RunMeta, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("dasr-doc-scan-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut store = Store::open(&dir)?;
    /// let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
    /// for interval in 0..6 {
    ///     store.append(
    ///         run,
    ///         RecordPayload::Event(RunEvent {
    ///             tenant: Some(0),
    ///             interval,
    ///             kind: EventKind::IntervalStart,
    ///         }),
    ///     )?;
    /// }
    /// store.end_run(run)?;
    /// let window = store.scan_range(2..4)?;
    /// assert_eq!(window.len(), 2);
    /// assert!(window.iter().all(|r| (2..4).contains(&r.interval())));
    /// store.close()?;
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), dasr_store::StoreError>(())
    /// ```
    // dasr-lint: entry(G3)
    pub fn scan_range(&self, intervals: Range<u64>) -> Result<Vec<StoredRecord>, StoreError> {
        self.collect_records(Query {
            intervals: Some(intervals),
            ..Query::default()
        })
    }

    /// Every record of one run, in append order.
    // dasr-lint: entry(G3)
    pub fn run_records(&self, run: RunId) -> Result<Vec<StoredRecord>, StoreError> {
        self.collect_records(Query {
            run: Some(run),
            ..Query::default()
        })
    }

    /// A lazy streaming cursor over everything flushed so far that
    /// matches `query`, in append order. Decodes one batch at a time
    /// through a reusable buffer, so memory is O(largest batch)
    /// regardless of how many records match — the right tool for large
    /// exports and one-pass folds where a `Vec` of the result would be
    /// the dominant cost.
    // dasr-lint: entry(G3)
    pub fn cursor(&self, query: Query) -> Result<RecordCursor, StoreError> {
        let snap: WriterSnapshot = self.writer.flush()?;
        Ok(RecordCursor::new(self.dir.clone(), snap.indices, query))
    }

    /// One tenant's event stream within a run, in append order.
    ///
    /// # Examples
    ///
    /// ```
    /// use dasr_core::obs::{EventKind, RunEvent};
    /// use dasr_store::{RecordPayload, RunMeta, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("dasr-doc-tenant-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut store = Store::open(&dir)?;
    /// let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1).fleet(2, 1));
    /// for tenant in [0u64, 1, 0] {
    ///     store.append(
    ///         run,
    ///         RecordPayload::Event(RunEvent {
    ///             tenant: Some(tenant),
    ///             interval: 0,
    ///             kind: EventKind::IntervalStart,
    ///         }),
    ///     )?;
    /// }
    /// store.end_run(run)?;
    /// assert_eq!(store.tenant_events(run, 0)?.len(), 2);
    /// assert_eq!(store.tenant_events(run, 1)?.len(), 1);
    /// store.close()?;
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), dasr_store::StoreError>(())
    /// ```
    // dasr-lint: entry(G3)
    pub fn tenant_events(&self, run: RunId, tenant: u64) -> Result<Vec<RunEvent>, StoreError> {
        let query = Query {
            run: Some(run),
            tenant: Some(tenant),
            shape: Shape::Events(KindSet::ALL_EVENTS),
            ..Query::default()
        };
        let parts = self.fold(&query, Vec::new, |out: &mut Vec<RunEvent>, rec| {
            if let RecordPayload::Event(ev) = &rec.payload {
                out.push(*ev);
            }
        })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// One run's sample records (all tenants, or one), in append order.
    // dasr-lint: entry(G3)
    pub fn run_samples(
        &self,
        run: RunId,
        tenant: Option<u64>,
    ) -> Result<Vec<SampleRecord>, StoreError> {
        let query = Query {
            run: Some(run),
            tenant,
            shape: Shape::Samples,
            ..Query::default()
        };
        let parts = self.fold(&query, Vec::new, |out: &mut Vec<SampleRecord>, rec| {
            if let RecordPayload::Sample(s) = &rec.payload {
                out.push(*s);
            }
        })?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Rule-fire totals over an interval window — one run or (with
    /// `run = None`) aggregated across every run in the store.
    // dasr-lint: entry(G3)
    pub fn fire_counts(
        &self,
        run: Option<RunId>,
        intervals: Range<u64>,
    ) -> Result<FireCounts, StoreError> {
        // `FireCounts::record` ignores `IntervalEnd`, so batches holding
        // only end-of-interval events (or samples) are pruned unread.
        let counted = KindSet::ALL_EVENTS & !(1 << etag::INTERVAL_END);
        // The shape mask must admit everything the index tallies count —
        // `cursor::fold_fires` answers fully-covered batches from their
        // per-batch `FireTally` without decoding them.
        let query = Query {
            intervals: Some(intervals),
            run,
            shape: Shape::Events(counted),
            ..Query::default()
        };
        let snap: WriterSnapshot = self.writer.flush()?;
        cursor::fold_fires(&self.dir, &snap.indices, &query, self.read_threads)
    }

    /// Reconstructs a committed run (optionally narrowed to one tenant)
    /// as a [`RunRecording`] ready for
    /// [`replay`](dasr_core::replay::replay) — the stored floats are
    /// bit-exact, so the replayed loop sees exactly the samples the live
    /// loop saw.
    pub fn load_recording(
        &self,
        run: RunId,
        tenant: Option<u64>,
    ) -> Result<RunRecording, StoreError> {
        let entry = self
            .manifest
            .iter()
            .find(|m| m.run == run)
            .ok_or(StoreError::UnknownRun(run))?;
        let records = self.run_samples(run, tenant)?;
        Ok(RunRecording {
            header: entry.meta.header(),
            records,
        })
    }

    /// The targeted read path behind every query: flush, prune batches
    /// with the query's index checks, stream survivors through reusable
    /// per-worker buffers, and fold matching records into one
    /// accumulator per segment — segments in parallel across
    /// [`read_threads`](Self::read_threads), partials returned in
    /// segment order so the caller's combine is order-stable.
    fn fold<T, M, F>(&self, query: &Query, make: M, fold: F) -> Result<Vec<T>, StoreError>
    where
        T: Send,
        M: Fn() -> T + Sync,
        F: Fn(&mut T, &StoredRecord) + Sync,
    {
        let snap: WriterSnapshot = self.writer.flush()?;
        cursor::fold_records(
            &self.dir,
            &snap.indices,
            query,
            self.read_threads,
            make,
            fold,
        )
    }

    /// [`fold`](Self::fold) specialized to collecting whole records.
    fn collect_records(&self, query: Query) -> Result<Vec<StoredRecord>, StoreError> {
        let parts = self.fold(&query, Vec::new, |out: &mut Vec<StoredRecord>, rec| {
            out.push(*rec);
        })?;
        Ok(parts.into_iter().flatten().collect())
    }
}

/// Scans the store directory's segments, truncating torn tails and
/// rebuilding stale sidecars. Returns one index per segment, id order,
/// active last — the writer resumes from exactly this state.
fn recover_segments(
    dir: &Path,
    format: FormatVersion,
    notes: &mut Vec<RecoveryNote>,
) -> Result<Vec<SegmentIndex>, StoreError> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(id) = parse_segment_name(&name.to_string_lossy()) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    if ids.is_empty() {
        fs::write(
            dir.join(segment::file_name(0)),
            segment::header_bytes(0, format),
        )?;
        return Ok(vec![SegmentIndex::fresh(0, format)]);
    }
    let last = *ids.last().unwrap_or(&0);
    let mut indices = Vec::with_capacity(ids.len());
    for id in ids {
        let path = dir.join(segment::file_name(id));
        let bytes = fs::read(&path)?;
        let active = id == last;
        if !active {
            // Sealed segment: trust a sidecar that matches the file.
            if let Some(idx) = load_sidecar(dir, id, bytes.len() as u64) {
                indices.push(idx);
                continue;
            }
        }
        if active && bytes.len() < segment::HEADER_LEN {
            // A crash tore the freshly created segment's header write;
            // nothing was committed to it (so its original format byte is
            // both unknowable and irrelevant). Rewrite the header in
            // place at the configured format.
            fs::write(&path, segment::header_bytes(id, format))?;
            notes.push(RecoveryNote {
                segment: Some(id),
                detail: format!("rewrote torn {}-byte segment header", bytes.len()),
            });
            indices.push(SegmentIndex::fresh(id, format));
            continue;
        }
        let scan = segment::scan(&bytes)
            .map_err(|e| StoreError::Corrupt(format!("segment {}: {e}", segment::file_name(id))))?;
        if scan.segment_id != id {
            return Err(StoreError::Corrupt(format!(
                "segment file {} has header id {}",
                segment::file_name(id),
                scan.segment_id
            )));
        }
        if let Some(torn) = &scan.torn {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(scan.valid_len)?;
            notes.push(RecoveryNote {
                segment: Some(id),
                detail: format!(
                    "truncated {} bytes of torn tail ({torn})",
                    bytes.len() as u64 - scan.valid_len
                ),
            });
        }
        let idx = SegmentIndex::build_from_segment(&bytes[..scan.valid_len as usize])
            .map_err(StoreError::Corrupt)?;
        // Repair the sidecar so the next open trusts it again (sealed
        // segments only — the writer refreshes the active one).
        if !active {
            fs::write(dir.join(SegmentIndex::file_name(id)), idx.to_bytes())?;
            notes.push(RecoveryNote {
                segment: Some(id),
                detail: "rebuilt stale index sidecar".to_string(),
            });
        }
        indices.push(idx);
    }
    Ok(indices)
}

/// Loads segment `id`'s sidecar if it is intact and describes exactly
/// `seg_bytes` bytes.
fn load_sidecar(dir: &Path, id: u32, seg_bytes: u64) -> Option<SegmentIndex> {
    let bytes = fs::read(dir.join(SegmentIndex::file_name(id))).ok()?;
    let idx = SegmentIndex::from_bytes(&bytes).ok()?;
    (idx.segment_id == id && idx.seg_bytes == seg_bytes).then_some(idx)
}

/// Parses `seg-NNNNNN.dseg` file names.
fn parse_segment_name(name: &str) -> Option<u32> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".dseg")?;
    (stem.len() == 6).then(|| stem.parse().ok()).flatten()
}

/// Loads the run catalog; a torn final line (crash mid-commit) is dropped
/// and the file rewritten without it, any earlier damage is an error.
fn recover_manifest(
    dir: &Path,
    notes: &mut Vec<RecoveryNote>,
) -> Result<Vec<RunManifest>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(&path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut manifest = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match RunManifest::from_json_line(line) {
            Ok(entry) => manifest.push(entry),
            Err(e) if i + 1 == lines.len() => {
                let mut clean = String::new();
                for entry in &manifest {
                    clean.push_str(&entry.to_json_line());
                    clean.push('\n');
                }
                fs::write(&path, clean)?;
                notes.push(RecoveryNote {
                    segment: None,
                    detail: format!("dropped torn manifest tail line: {e}"),
                });
            }
            Err(e) => {
                return Err(StoreError::Corrupt(format!("manifest line {}: {e}", i + 1)));
            }
        }
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_core::obs::RunEvent;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dasr-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event(tenant: u64, interval: u64, kind: EventKind) -> RecordPayload {
        RecordPayload::Event(RunEvent {
            tenant: Some(tenant),
            interval,
            kind,
        })
    }

    #[test]
    fn manifest_lines_round_trip() {
        let entry = RunManifest {
            run: RunId(3),
            meta: RunMeta::new("auto", "cpuio", "daily", u64::MAX - 1).fleet(64, 1440),
            samples: 92_160,
            events: 1234,
        };
        let line = entry.to_json_line();
        assert_eq!(RunManifest::from_json_line(&line).expect("parses"), entry);
        assert!(RunManifest::from_json_line("{\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn runs_commit_through_the_manifest() {
        let dir = fresh_dir("commit");
        let mut store = Store::open(&dir).expect("open");
        let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 7));
        assert!(store.runs().is_empty(), "not committed yet");
        for i in 0..4 {
            store
                .append(run, event(0, i, EventKind::IntervalStart))
                .expect("append");
        }
        let committed = store.end_run(run).expect("commit");
        assert_eq!(committed.events, 4);
        assert_eq!(committed.samples, 0);
        assert_eq!(store.runs().len(), 1);
        // Unknown / double-ended runs are rejected.
        assert!(matches!(store.end_run(run), Err(StoreError::UnknownRun(_))));
        assert!(matches!(
            store.append(run, event(0, 0, EventKind::IntervalStart)),
            Err(StoreError::UnknownRun(_))
        ));
        store.close().expect("close");

        // Reopen: catalog and data both survive.
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.runs().len(), 1);
        assert_eq!(store.run_records(run).expect("records").len(), 4);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn run_ids_never_alias_after_a_crash() {
        let dir = fresh_dir("alias");
        let mut store = Store::open(&dir).expect("open");
        let committed = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        store
            .append(committed, event(0, 0, EventKind::IntervalStart))
            .expect("append");
        store.end_run(committed).expect("commit");
        // An uncommitted run with flushed records: simulates a crash
        // between flush and commit.
        let orphan = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 2));
        store
            .append(orphan, event(0, 0, EventKind::IntervalStart))
            .expect("append");
        store.flush().expect("flush");
        drop(store); // no end_run: the orphan never reaches the manifest

        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(store.runs().len(), 1, "orphan is not in the catalog");
        let fresh = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 3));
        assert!(
            fresh.0 > orphan.0,
            "recovered id {fresh} must not reuse orphan {orphan}"
        );
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fire_counts_aggregate_by_window_and_run() {
        let dir = fresh_dir("fires");
        let mut store = Store::open(&dir).expect("open");
        let a = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        store
            .append(
                a,
                event(
                    0,
                    5,
                    EventKind::ResizeIssued {
                        from_rung: 1,
                        to_rung: 2,
                    },
                ),
            )
            .expect("append");
        store
            .append(
                a,
                event(0, 9, EventKind::BudgetThrottle { headroom_pct: 3.0 }),
            )
            .expect("append");
        store.end_run(a).expect("commit");
        let b = store.begin_run(RunMeta::new("util", "cpuio", "flat", 2));
        store
            .append(
                b,
                event(
                    1,
                    5,
                    EventKind::ResizeDenied {
                        reason: DenyReason::Budget,
                    },
                ),
            )
            .expect("append");
        store.end_run(b).expect("commit");

        let all = store.fire_counts(None, 0..100).expect("all");
        assert_eq!(all.resizes_issued, 1);
        assert_eq!(all.budget_throttles, 1);
        assert_eq!(all.denied_budget, 1);
        assert_eq!(all.total_fires(), 3);
        let only_a = store.fire_counts(Some(a), 0..100).expect("run a");
        assert_eq!(only_a.denied_budget, 0);
        assert_eq!(only_a.total_fires(), 2);
        let early = store.fire_counts(None, 0..6).expect("window");
        assert_eq!(early.budget_throttles, 0);
        assert_eq!(early.total_fires(), 2);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fire_counts_decode_mixed_run_batches() {
        // Interleaved appends from two runs share batches, so
        // `min_run != max_run` defeats the index-tally shortcut: a
        // run-filtered count must fall back to decoding and still be
        // exact (the tally would lump both runs together).
        let dir = fresh_dir("fires-mixed");
        let mut store = Store::open(&dir).expect("open");
        let a = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        let b = store.begin_run(RunMeta::new("util", "cpuio", "flat", 2));
        for i in 0..10u64 {
            let run = if i % 2 == 0 { a } else { b };
            store
                .append(
                    run,
                    event(
                        0,
                        i,
                        EventKind::ResizeIssued {
                            from_rung: 0,
                            to_rung: 1,
                        },
                    ),
                )
                .expect("append");
        }
        store.end_run(a).expect("commit");
        store.end_run(b).expect("commit");

        let only_a = store.fire_counts(Some(a), 0..u64::MAX).expect("run a");
        assert_eq!(only_a.resizes_issued, 5);
        let only_b = store.fire_counts(Some(b), 0..u64::MAX).expect("run b");
        assert_eq!(only_b.resizes_issued, 5);
        let both = store.fire_counts(None, 0..u64::MAX).expect("all");
        assert_eq!(both.resizes_issued, 10);
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn stats_count_segments_batches_records() {
        let dir = fresh_dir("stats");
        // v2 frames pack ~8 events into ~20 payload bytes, so the roll
        // bound must be far smaller than the v1-era 1024 to still force
        // multiple segments out of 100 records.
        let cfg = WriterConfig {
            batch_records: 8,
            segment_max_bytes: 256,
            ..WriterConfig::default()
        };
        let mut store = Store::open_with(&dir, cfg).expect("open");
        let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        for i in 0..100 {
            store
                .append(run, event(i % 4, i, EventKind::IntervalStart))
                .expect("append");
        }
        store.end_run(run).expect("commit");
        let stats = store.stats().expect("stats");
        assert_eq!(stats.records, 100);
        assert!(stats.segments > 1, "rolled segments: {stats:?}");
        assert!(stats.batches >= stats.segments);
        // Compact frames: well under v1's ~49 bytes/record, but still
        // real bytes (headers + framing + payloads).
        assert!(stats.bytes > 100, "bytes: {stats:?}");
        assert!(
            stats.bytes < 100 * 40,
            "v2 should beat v1 sizing: {stats:?}"
        );
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_manifest_tail_is_dropped_on_reopen() {
        let dir = fresh_dir("manifest-tail");
        let mut store = Store::open(&dir).expect("open");
        let run = store.begin_run(RunMeta::new("auto", "cpuio", "flat", 1));
        store
            .append(run, event(0, 0, EventKind::IntervalStart))
            .expect("append");
        store.end_run(run).expect("commit");
        store.close().expect("close");
        // Tear the manifest: append half a line.
        let path = dir.join(MANIFEST_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"kind\":\"dasr-run\",\"version\":1,\"run\":1,\"pol");
        std::fs::write(&path, text).expect("tear");

        let store = Store::open(&dir).expect("recovers");
        assert_eq!(store.runs().len(), 1);
        assert!(
            store
                .recovery_notes()
                .iter()
                .any(|n| n.detail.contains("manifest")),
            "notes: {:?}",
            store.recovery_notes()
        );
        store.close().expect("close");
        // And the rewrite made the file clean again.
        let store = Store::open(&dir).expect("clean reopen");
        assert!(store.recovery_notes().is_empty());
        store.close().expect("close");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn segment_names_parse_strictly() {
        assert_eq!(parse_segment_name("seg-000042.dseg"), Some(42));
        assert_eq!(parse_segment_name("seg-000042.idx"), None);
        assert_eq!(parse_segment_name("seg-42.dseg"), None);
        assert_eq!(parse_segment_name("manifest.jsonl"), None);
    }
}
