//! Property tests for the parallel fleet runner's determinism contract:
//! running the same seeded [`TenantPopulation`]-derived fleet at 1, 2 and 8
//! threads must produce bit-identical per-tenant reports.

use dasr_core::policy::{AutoPolicy, ScalingPolicy};
use dasr_core::{tenant_seed, FleetRunner, RunConfig, TenantSpec};
use dasr_fleet::TenantPopulation;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use proptest::prelude::*;

/// Builds one closed-loop spec per population tenant, its request rate
/// shaped by the tenant's CPU demand trace and its RNG stream derived from
/// the fleet seed.
fn fleet_from_population(
    pop: &TenantPopulation,
    seed: u64,
    minutes: usize,
) -> Vec<TenantSpec<CpuIoWorkload>> {
    pop.tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let rps: Vec<f64> = tenant
                .intervals
                .iter()
                .take(minutes)
                .map(|v| (v.cpu_cores * 3.0).clamp(1.0, 12.0))
                .collect();
            TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(seed, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("population", rps),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// FleetRunner output is bit-identical for 1, 2 and 8 threads on the
    /// same seeded tenant population: latency streams, resize counts, costs
    /// and rejection totals all match the sequential reference exactly.
    #[test]
    fn fleet_runner_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        n in 2usize..6,
    ) {
        let pop = TenantPopulation::generate_with_len(n, 4, seed);
        let tenants = fleet_from_population(&pop, seed, 3);
        let run = |threads: usize| {
            FleetRunner::new(threads).run_fleet(&tenants, |_, t| {
                Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
            })
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            let parallel = run(threads);
            prop_assert_eq!(parallel.reports.len(), reference.reports.len());
            for (a, b) in parallel.reports.iter().zip(reference.reports.iter()) {
                prop_assert_eq!(
                    &a.all_latencies_ms, &b.all_latencies_ms,
                    "latency streams diverge at {} threads", threads
                );
                prop_assert_eq!(a.resizes, b.resizes);
                prop_assert_eq!(a.total_cost(), b.total_cost());
                prop_assert_eq!(a.rejected_total, b.rejected_total);
            }
        }
    }

    /// Tenant `i` is the same tenant no matter how many tenants are
    /// generated around it — the per-tenant seed streams are index-keyed,
    /// not drawn from a shared sequential RNG.
    #[test]
    fn population_prefix_is_stable(seed in 0u64..1_000_000, n in 2usize..8) {
        let small = TenantPopulation::generate_with_len(n, 6, seed);
        let large = TenantPopulation::generate_with_len(n + 3, 6, seed);
        for (a, b) in small.tenants.iter().zip(large.tenants.iter()) {
            prop_assert_eq!(a.archetype, b.archetype);
            prop_assert_eq!(&a.intervals, &b.intervals);
        }
    }
}
