//! Tenant demand archetypes.
//!
//! Each archetype generates a week of per-5-minute resource *requirements*
//! (the demand a perfectly informed observer would provision for). The
//! mixture in [`crate::population`] is tuned so the change-event analysis
//! reproduces Figure 2's published shape.

use dasr_containers::ResourceVector;
use rand::rngs::StdRng;
use rand::Rng;

/// Demand-shape archetypes observed in production fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantArchetype {
    /// Flat demand with mild noise; rarely crosses container boundaries.
    Steady,
    /// Day/night cycle with business-hours peaks.
    Diurnal,
    /// Frequent short bursts over a low baseline.
    Bursty,
    /// Nearly idle with occasional activity.
    Idle,
    /// Slow growth through the week (on-boarding tenants).
    Growing,
}

/// All archetypes.
pub const ARCHETYPES: [TenantArchetype; 5] = [
    TenantArchetype::Steady,
    TenantArchetype::Diurnal,
    TenantArchetype::Bursty,
    TenantArchetype::Idle,
    TenantArchetype::Growing,
];

impl TenantArchetype {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TenantArchetype::Steady => "steady",
            TenantArchetype::Diurnal => "diurnal",
            TenantArchetype::Bursty => "bursty",
            TenantArchetype::Idle => "idle",
            TenantArchetype::Growing => "growing",
        }
    }

    /// Generates `intervals` of CPU-core demand at 5-minute resolution,
    /// smoothed with an AR(1) filter — 5-minute aggregates of real tenants
    /// are temporally correlated, not i.i.d. noise. Other resources are
    /// derived in [`demand_vector`].
    pub fn cpu_demand_series(self, rng: &mut StdRng, intervals: usize) -> Vec<f64> {
        let raw = self.raw_cpu_series(rng, intervals);
        // AR(1): x_t = 0.75 x_{t-1} + 0.25 raw_t.
        let mut out = Vec::with_capacity(raw.len());
        let mut prev = raw[0];
        for r in raw {
            prev = 0.75 * prev + 0.25 * r;
            out.push(prev);
        }
        out
    }

    fn raw_cpu_series(self, rng: &mut StdRng, intervals: usize) -> Vec<f64> {
        // Base scale: how big this tenant is (0.3 .. 8 cores typical).
        let scale = 0.3 * 10f64.powf(rng.gen_range(0.0..1.45));
        let mut out = Vec::with_capacity(intervals);
        match self {
            TenantArchetype::Steady => {
                for _ in 0..intervals {
                    out.push(scale * rng.gen_range(0.85..1.15));
                }
            }
            TenantArchetype::Diurnal => {
                let phase: f64 = rng.gen_range(0.0..24.0);
                let night_floor = rng.gen_range(0.1..0.3);
                for i in 0..intervals {
                    let hour = (i as f64 * 5.0 / 60.0 + phase) % 24.0;
                    // Business-hours bump between 8 and 18.
                    let day = if (8.0..18.0).contains(&hour) {
                        1.0
                    } else {
                        night_floor
                    };
                    out.push(scale * day * rng.gen_range(0.8..1.2));
                }
            }
            TenantArchetype::Bursty => {
                let baseline = scale * 0.2;
                let mut i = 0;
                while i < intervals {
                    // Quiet stretch then a burst.
                    let quiet = rng.gen_range(3..18); // 15..90 minutes
                    for _ in 0..quiet {
                        if out.len() == intervals {
                            break;
                        }
                        out.push(baseline * rng.gen_range(0.7..1.3));
                    }
                    let burst = rng.gen_range(2..12); // 10..60 minutes
                    let height = scale * rng.gen_range(1.0..3.0);
                    for _ in 0..burst {
                        if out.len() == intervals {
                            break;
                        }
                        out.push(height * rng.gen_range(0.85..1.15));
                    }
                    i = out.len();
                }
                out.truncate(intervals);
            }
            TenantArchetype::Idle => {
                for _ in 0..intervals {
                    let active = rng.gen_bool(0.05);
                    out.push(if active {
                        scale * rng.gen_range(0.5..1.5)
                    } else {
                        scale * 0.02
                    });
                }
            }
            TenantArchetype::Growing => {
                for i in 0..intervals {
                    let growth = 0.3 + 0.7 * i as f64 / intervals as f64;
                    out.push(scale * growth * rng.gen_range(0.85..1.15));
                }
            }
        }
        out
    }
}

/// Expands a CPU-core demand into a full resource vector with
/// tenant-specific resource ratios: memory follows demand sub-linearly
/// (caches), disk and log follow roughly linearly. Per-interval noise is
/// small (±2%) — tenant-to-tenant shape differences live in the *ratios*,
/// which are fixed per tenant.
pub fn demand_vector(rng: &mut StdRng, cpu_cores: f64, ratios: &ResourceRatios) -> ResourceVector {
    let cpu = cpu_cores.max(0.01);
    ResourceVector::new(
        cpu,
        (ratios.mem_mb_per_core * cpu.powf(0.7) * rng.gen_range(0.98..1.02)).max(16.0),
        (ratios.iops_per_core * cpu * rng.gen_range(0.98..1.02)).max(1.0),
        (ratios.log_mbps_per_core * cpu * rng.gen_range(0.98..1.02)).max(0.1),
    )
}

/// Tenant-specific resource ratios (workloads differ in shape).
#[derive(Debug, Clone, Copy)]
pub struct ResourceRatios {
    /// Memory per unit of CPU demand.
    pub mem_mb_per_core: f64,
    /// IOPS per core.
    pub iops_per_core: f64,
    /// Log MB/s per core.
    pub log_mbps_per_core: f64,
}

impl ResourceRatios {
    /// Samples ratios for a tenant (some CPU-bound, some I/O-bound).
    pub fn sample(rng: &mut StdRng) -> Self {
        Self {
            mem_mb_per_core: rng.gen_range(800.0..2_600.0),
            iops_per_core: rng.gen_range(80.0..260.0),
            log_mbps_per_core: rng.gen_range(3.0..13.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn series_have_requested_length() {
        let mut r = rng();
        for a in ARCHETYPES {
            assert_eq!(a.cpu_demand_series(&mut r, 500).len(), 500, "{}", a.name());
        }
    }

    #[test]
    fn steady_has_low_variation() {
        let mut r = rng();
        let s = TenantArchetype::Steady.cpu_demand_series(&mut r, 1_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let max = s.iter().copied().fold(0.0, f64::max);
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.6, "steady ratio {}", max / min);
        assert!(mean > 0.0);
    }

    #[test]
    fn bursty_has_wide_dynamic_range() {
        let mut r = rng();
        let s = TenantArchetype::Bursty.cpu_demand_series(&mut r, 2_000);
        let max = s.iter().copied().fold(0.0, f64::max);
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 4.0, "bursty ratio {}", max / min);
    }

    #[test]
    fn growing_trends_upward() {
        let mut r = rng();
        let s = TenantArchetype::Growing.cpu_demand_series(&mut r, 2_000);
        let first: f64 = s[..200].iter().sum();
        let last: f64 = s[s.len() - 200..].iter().sum();
        assert!(last > first * 1.5);
    }

    #[test]
    fn idle_is_mostly_tiny() {
        let mut r = rng();
        let s = TenantArchetype::Idle.cpu_demand_series(&mut r, 2_000);
        let mut sorted = s.clone();
        sorted.sort_by(f64::total_cmp);
        let p50 = sorted[s.len() / 2];
        let max = sorted[s.len() - 1];
        assert!(max / p50 > 10.0, "idle contrast {}", max / p50);
    }

    #[test]
    fn demand_vector_is_positive_and_scales() {
        let mut r = rng();
        let ratios = ResourceRatios::sample(&mut r);
        let small = demand_vector(&mut r, 0.5, &ratios);
        let large = demand_vector(&mut r, 8.0, &ratios);
        assert!(large.cpu_cores > small.cpu_cores);
        assert!(large.memory_mb > small.memory_mb);
        assert!(large.disk_iops > small.disk_iops);
        assert!(small.log_mbps > 0.0);
    }

    #[test]
    fn deterministic() {
        let gen = || {
            let mut r = rng();
            TenantArchetype::Diurnal.cpu_demand_series(&mut r, 300)
        };
        assert_eq!(gen(), gen());
    }
}
