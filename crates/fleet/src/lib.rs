//! # dasr-fleet — service-wide telemetry synthesis and analysis
//!
//! A DaaS observes telemetry from *thousands* of tenants, and the paper
//! leverages that fleet view twice:
//!
//! 1. **Motivation (§2.2, Figure 2)** — week-long utilization traces from a
//!    few thousand production tenants are mapped to the smallest covering
//!    container per 5-minute interval; *change events* (assigned container
//!    changing between intervals) turn out to be frequent (86% of
//!    inter-event intervals are under an hour; >78% of tenants change at
//!    least daily), which is the case for auto-scaling.
//! 2. **Threshold derivation (§4.1, Figures 4 & 6)** — wait statistics
//!    conditioned on resource utilization separate cleanly between low- and
//!    high-utilization populations, and the category thresholds are read
//!    off those conditional distributions.
//!
//! Production traces are proprietary, so this crate *synthesizes* a tenant
//! population from archetypes (steady, diurnal, bursty, idle, growing)
//! whose mixture reproduces the published distributional shapes, plus a
//! generative wait-vs-utilization model with heavy-tailed noise matching
//! Figure 4's wide band. Everything is deterministic given a seed.
//!
//! Running a *closed-loop* fleet (many tenants through the auto-scaler)
//! lives in `dasr_core::runner::fleet`; since the telemetry-seam
//! refactor it is generic over per-tenant backends
//! (`run_fleet_sources`), so fleets synthesized here can drive either
//! live simulations or recorded-run replays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod archetype;
pub mod events;
pub mod population;
pub mod thresholds;
pub mod waitmodel;

pub use archetype::TenantArchetype;
pub use events::{ChangeAnalysis, StepSizeDistribution};
pub use population::{TenantPopulation, TenantTrace};
pub use thresholds::{
    derive_threshold_config, derive_threshold_config_observed, DerivationSummary,
};
pub use waitmodel::{WaitModel, WaitObservation};

/// Number of 5-minute intervals in the week-long analysis window (§2.2).
pub const WEEK_INTERVALS: usize = 7 * 24 * 12;

/// Minutes per analysis interval.
pub const INTERVAL_MINUTES: f64 = 5.0;
