//! Change-event analysis (§2.2 and §4, Figures 2(a), 2(b)).
//!
//! Each tenant interval is assigned the smallest container covering its
//! resource requirement; a **change event** occurs when the assignment
//! differs between successive intervals. The analysis reports:
//!
//! - the Inter-Event Interval (IEI) distribution (Figure 2(a));
//! - the changes-per-day distribution (Figure 2(b));
//! - the step-size distribution of changes (§4: 90% are 1 step, ≤2 steps
//!   cover 98%), which justifies restricting the estimator to ±2 steps.

use crate::population::TenantPopulation;
use crate::INTERVAL_MINUTES;
use dasr_containers::Catalog;
use dasr_stats::Cdf;

/// Aggregate change-event statistics over a population.
#[derive(Debug, Clone)]
pub struct ChangeAnalysis {
    /// Inter-event intervals across the whole fleet, in minutes.
    pub iei_minutes: Vec<f64>,
    /// Average change events per day, one entry per tenant.
    pub changes_per_day: Vec<f64>,
    /// Distribution of absolute rung step sizes across all change events.
    pub step_sizes: StepSizeDistribution,
}

/// Histogram of absolute container-step sizes.
#[derive(Debug, Clone, Default)]
pub struct StepSizeDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl StepSizeDistribution {
    /// Records one change of `steps` rungs (absolute value).
    pub fn record(&mut self, steps: usize) {
        if self.counts.len() <= steps {
            self.counts.resize(steps + 1, 0);
        }
        self.counts[steps] += 1;
        self.total += 1;
    }

    /// Fraction of changes that were exactly `steps` rungs.
    pub fn fraction(&self, steps: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.get(steps).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Fraction of changes that were at most `steps` rungs.
    pub fn fraction_at_most(&self, steps: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts.iter().take(steps + 1).sum();
        c as f64 / self.total as f64
    }

    /// Total changes recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl ChangeAnalysis {
    /// Runs the §2.2 analysis: assign containers, detect change events,
    /// collect IEI / frequency / step-size statistics.
    pub fn analyze(population: &TenantPopulation, catalog: &Catalog) -> Self {
        let mut iei_minutes = Vec::new();
        let mut changes_per_day = Vec::with_capacity(population.len());
        let mut step_sizes = StepSizeDistribution::default();

        for tenant in &population.tenants {
            let rungs: Vec<u8> = tenant
                .intervals
                .iter()
                .map(|req| catalog.assign_for_utilization(req).rung)
                .collect();
            let mut last_change_idx: Option<usize> = None;
            let mut changes = 0u64;
            for i in 1..rungs.len() {
                if rungs[i] != rungs[i - 1] {
                    changes += 1;
                    let step = rungs[i].abs_diff(rungs[i - 1]) as usize;
                    step_sizes.record(step);
                    if let Some(prev) = last_change_idx {
                        iei_minutes.push((i - prev) as f64 * INTERVAL_MINUTES);
                    }
                    last_change_idx = Some(i);
                }
            }
            let days = (rungs.len() as f64 * INTERVAL_MINUTES) / (24.0 * 60.0);
            changes_per_day.push(changes as f64 / days.max(1e-9));
        }

        Self {
            iei_minutes,
            changes_per_day,
            step_sizes,
        }
    }

    /// CDF of inter-event intervals (Figure 2(a)).
    pub fn iei_cdf(&self) -> Cdf {
        Cdf::new(self.iei_minutes.clone())
    }

    /// Fraction of change events within `minutes` of the previous change.
    pub fn iei_fraction_within(&self, minutes: f64) -> f64 {
        self.iei_cdf().fraction_at_or_below(minutes)
    }

    /// Fraction of tenants averaging at least `n` change events per day
    /// (Figure 2(b) cumulative view).
    pub fn fraction_with_at_least_changes(&self, n: f64) -> f64 {
        if self.changes_per_day.is_empty() {
            return 0.0;
        }
        let c = self.changes_per_day.iter().filter(|&&v| v >= n).count();
        c as f64 / self.changes_per_day.len() as f64
    }

    /// Histogram over the paper's Figure 2(b) buckets
    /// (0, 1, 2, 3, 6, 12, 24, more): fraction of tenants per bucket.
    pub fn changes_per_day_buckets(&self) -> Vec<(String, f64)> {
        let edges = [0.0, 1.0, 2.0, 3.0, 6.0, 12.0, 24.0];
        let n = self.changes_per_day.len().max(1) as f64;
        let mut out = Vec::new();
        for (i, &e) in edges.iter().enumerate().take(edges.len() - 1) {
            let next = edges[i + 1];
            let c = self
                .changes_per_day
                .iter()
                .filter(|&&v| v >= e && v < next)
                .count();
            out.push((format!("{e}"), c as f64 / n));
        }
        let more = self
            .changes_per_day
            .iter()
            .filter(|&&v| v >= *edges.last().expect("non-empty"))
            .count();
        out.push(("More".to_string(), more as f64 / n));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(n: usize) -> ChangeAnalysis {
        let pop = TenantPopulation::generate(n, 0xF1EE7);
        ChangeAnalysis::analyze(&pop, &Catalog::azure_like())
    }

    #[test]
    fn step_size_distribution_basics() {
        let mut d = StepSizeDistribution::default();
        for _ in 0..90 {
            d.record(1);
        }
        for _ in 0..8 {
            d.record(2);
        }
        d.record(3);
        d.record(4);
        assert_eq!(d.total(), 100);
        assert_eq!(d.fraction(1), 0.90);
        assert_eq!(d.fraction_at_most(2), 0.98);
        assert_eq!(d.fraction(7), 0.0);
    }

    #[test]
    fn fleet_changes_are_frequent_like_figure2() {
        let a = analysis(300);
        assert!(!a.iei_minutes.is_empty());
        // Figure 2(a): 86% of IEIs within 60 minutes. Accept the shape:
        // a clear majority within the hour.
        let within_60 = a.iei_fraction_within(60.0);
        assert!(
            within_60 > 0.6,
            "IEI within 60 min = {within_60}, expected the Figure 2(a) shape"
        );
        // Figure 2(b): >78% of tenants with ≥1 change/day, >52% with ≥6.
        let at_least_1 = a.fraction_with_at_least_changes(1.0);
        let at_least_6 = a.fraction_with_at_least_changes(6.0);
        assert!(at_least_1 > 0.65, "≥1/day: {at_least_1}");
        assert!(at_least_6 > 0.40, "≥6/day: {at_least_6}");
    }

    #[test]
    fn step_sizes_match_section4_statistic() {
        let a = analysis(300);
        // §4: one-step changes ≈90%, ≤2 steps ≈98%.
        let one = a.step_sizes.fraction(1);
        let upto2 = a.step_sizes.fraction_at_most(2);
        assert!(one > 0.7, "1-step fraction {one}");
        assert!(upto2 > 0.9, "≤2-step fraction {upto2}");
    }

    #[test]
    fn buckets_sum_to_one() {
        let a = analysis(100);
        let total: f64 = a.changes_per_day_buckets().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_tenants_change_rarely() {
        use crate::archetype::TenantArchetype;
        let pop = TenantPopulation::generate(400, 0xF1EE7);
        let catalog = Catalog::azure_like();
        let mut steady_changes = 0.0;
        let mut steady_n = 0.0;
        let mut bursty_changes = 0.0;
        let mut bursty_n = 0.0;
        for t in &pop.tenants {
            let rungs: Vec<u8> = t
                .intervals
                .iter()
                .map(|req| catalog.assign_for_utilization(req).rung)
                .collect();
            let changes = rungs.windows(2).filter(|w| w[0] != w[1]).count() as f64;
            match t.archetype {
                TenantArchetype::Steady => {
                    steady_changes += changes;
                    steady_n += 1.0;
                }
                TenantArchetype::Bursty => {
                    bursty_changes += changes;
                    bursty_n += 1.0;
                }
                _ => {}
            }
        }
        assert!(steady_n > 0.0 && bursty_n > 0.0);
        assert!(
            bursty_changes / bursty_n > 3.0 * (steady_changes / steady_n).max(0.5),
            "bursty {} vs steady {}",
            bursty_changes / bursty_n,
            steady_changes / steady_n
        );
    }
}
