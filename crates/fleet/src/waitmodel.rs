//! Generative wait-vs-utilization model (Figures 4 and 6).
//!
//! Figure 4 plots per-interval resource waits against utilization for
//! thousands of tenants: an increasing trend with a very wide band — waits
//! of 1,000 s at 20% utilization and of 1 s at 80% both occur, which is
//! exactly why neither signal suffices alone. We model the joint
//! distribution as log-normal around a utilization-dependent location:
//!
//! ```text
//! log10(wait_ms) = a + b · util/100 + σ · N(0,1)
//! wait_pct       = clamp(c + d · util/100 + σp · N(0,1), 0, 100)
//! ```
//!
//! with `σ` large (≈1 decade). The location parameters are calibrated so
//! the *conditional* distributions reproduce Figure 6's published
//! percentiles (low-util p90 ≈ 20 s; high-util p75 ≈ 500–1500 s per
//! 5-minute interval).

use dasr_containers::ResourceKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fleet observation: a tenant-interval's utilization and waits for a
/// resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitObservation {
    /// Resource utilization %.
    pub util_pct: f64,
    /// Wait magnitude, ms per 5-minute interval.
    pub wait_ms: f64,
    /// This resource's share of total waits, %.
    pub wait_pct: f64,
}

/// Log-linear wait model parameters for one resource.
#[derive(Debug, Clone, Copy)]
pub struct WaitModelParams {
    /// Intercept of `log10(wait_ms)` at zero utilization.
    pub log_wait_at_zero: f64,
    /// Increase of `log10(wait_ms)` from 0 to 100% utilization.
    pub log_wait_span: f64,
    /// Standard deviation of the log-wait noise (decades).
    pub log_noise: f64,
    /// Wait-percentage intercept at zero utilization.
    pub pct_at_zero: f64,
    /// Wait-percentage span from 0 to 100% utilization.
    pub pct_span: f64,
    /// Wait-percentage noise (percentage points).
    pub pct_noise: f64,
}

impl WaitModelParams {
    /// Calibrated parameters per resource (CPU waits run hotter than disk
    /// at high utilization, per Figure 6(b)).
    pub fn for_resource(kind: ResourceKind) -> Self {
        match kind {
            ResourceKind::Cpu => Self {
                log_wait_at_zero: 2.3,
                log_wait_span: 3.5,
                log_noise: 1.0,
                pct_at_zero: 8.0,
                pct_span: 62.0,
                pct_noise: 12.0,
            },
            ResourceKind::DiskIo => Self {
                log_wait_at_zero: 2.4,
                log_wait_span: 3.0,
                log_noise: 1.0,
                pct_at_zero: 10.0,
                pct_span: 52.0,
                pct_noise: 12.0,
            },
            ResourceKind::Memory | ResourceKind::LogIo => Self {
                log_wait_at_zero: 2.0,
                log_wait_span: 2.8,
                log_noise: 1.0,
                pct_at_zero: 5.0,
                pct_span: 40.0,
                pct_noise: 10.0,
            },
        }
    }
}

/// The generative model.
#[derive(Debug)]
pub struct WaitModel {
    params: WaitModelParams,
    rng: StdRng,
}

impl WaitModel {
    /// Creates a model for `kind` with the given seed.
    pub fn new(kind: ResourceKind, seed: u64) -> Self {
        Self {
            params: WaitModelParams::for_resource(kind),
            rng: StdRng::seed_from_u64(seed ^ (kind.index() as u64) << 32),
        }
    }

    /// Samples the waits of one tenant-interval at `util_pct`.
    pub fn sample_at(&mut self, util_pct: f64) -> WaitObservation {
        let u = util_pct.clamp(0.0, 100.0) / 100.0;
        let p = self.params;
        let z = gaussian(&mut self.rng);
        let log_wait = p.log_wait_at_zero + p.log_wait_span * u + p.log_noise * z;
        let zp = gaussian(&mut self.rng);
        let pct = (p.pct_at_zero + p.pct_span * u + p.pct_noise * zp).clamp(0.0, 100.0);
        WaitObservation {
            util_pct,
            wait_ms: 10f64.powf(log_wait),
            wait_pct: pct,
        }
    }

    /// Generates `n` observations with a production-like utilization
    /// distribution: most tenant-intervals idle-to-moderate, a tail of hot
    /// ones.
    pub fn generate(&mut self, n: usize) -> Vec<WaitObservation> {
        (0..n)
            .map(|_| {
                let r: f64 = self.rng.gen_range(0.0..1.0);
                let util = if r < 0.5 {
                    self.rng.gen_range(0.0..30.0)
                } else if r < 0.8 {
                    self.rng.gen_range(30.0..70.0)
                } else {
                    self.rng.gen_range(70.0..100.0)
                };
                self.sample_at(util)
            })
            .collect()
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_stats::{percentile, spearman};

    fn observations(kind: ResourceKind) -> Vec<WaitObservation> {
        WaitModel::new(kind, 42).generate(30_000)
    }

    #[test]
    fn conditional_distributions_match_figure6() {
        let obs = observations(ResourceKind::Cpu);
        let low: Vec<f64> = obs
            .iter()
            .filter(|o| o.util_pct < 30.0)
            .map(|o| o.wait_ms)
            .collect();
        let high: Vec<f64> = obs
            .iter()
            .filter(|o| o.util_pct > 70.0)
            .map(|o| o.wait_ms)
            .collect();
        assert!(low.len() > 1_000 && high.len() > 1_000);
        let low_p90 = percentile(&low, 90.0).unwrap();
        let high_p75 = percentile(&high, 75.0).unwrap();
        // Figure 6(a): p90 of low-util waits ≈ 20s (accept 5–60s).
        assert!(
            (5_000.0..60_000.0).contains(&low_p90),
            "low-util p90 = {low_p90} ms"
        );
        // Figure 6(b): p75 of high-util CPU waits ≈ 1500s (accept 300s–4000s).
        assert!(
            (300_000.0..4_000_000.0).contains(&high_p75),
            "high-util p75 = {high_p75} ms"
        );
        // And the separation the paper relies on.
        assert!(high_p75 > 10.0 * low_p90);
    }

    #[test]
    fn wait_pct_separates_like_figure6cd() {
        let obs = observations(ResourceKind::DiskIo);
        let low: Vec<f64> = obs
            .iter()
            .filter(|o| o.util_pct < 30.0)
            .map(|o| o.wait_pct)
            .collect();
        let high: Vec<f64> = obs
            .iter()
            .filter(|o| o.util_pct > 70.0)
            .map(|o| o.wait_pct)
            .collect();
        let low_p80 = percentile(&low, 80.0).unwrap();
        let high_p50 = percentile(&high, 50.0).unwrap();
        // Fig 6(c): p80 under low util in the 20–30% range (accept 15–40).
        assert!((15.0..40.0).contains(&low_p80), "low p80 = {low_p80}");
        // Fig 6(d): median under high util well above it.
        assert!(high_p50 > low_p80 + 15.0, "high p50 = {high_p50}");
    }

    #[test]
    fn correlation_is_positive_but_weak() {
        let obs = observations(ResourceKind::Cpu);
        let util: Vec<f64> = obs.iter().map(|o| o.util_pct).collect();
        let wait: Vec<f64> = obs.iter().map(|o| o.wait_ms).collect();
        let rho = spearman(&util, &wait).unwrap();
        // Figure 4: increasing trend, wide band — weakly predictive.
        assert!(rho > 0.3, "rho {rho}");
        assert!(rho < 0.9, "rho {rho} too strong for the Figure 4 band");
    }

    #[test]
    fn band_is_wide_like_figure4() {
        let obs = observations(ResourceKind::Cpu);
        // There exist high waits at low utilization and low waits at high
        // utilization.
        let high_wait_low_util = obs
            .iter()
            .any(|o| o.util_pct < 30.0 && o.wait_ms > 100_000.0);
        let low_wait_high_util = obs.iter().any(|o| o.util_pct > 70.0 && o.wait_ms < 2_000.0);
        assert!(high_wait_low_util, "missing 1000s-at-20%-style outliers");
        assert!(low_wait_high_util, "missing 1s-at-80%-style observations");
    }

    #[test]
    fn deterministic() {
        let a = WaitModel::new(ResourceKind::Cpu, 9).generate(100);
        let b = WaitModel::new(ResourceKind::Cpu, 9).generate(100);
        assert_eq!(a, b);
    }
}
