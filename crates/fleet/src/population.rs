//! Synthetic tenant populations.

use crate::archetype::{demand_vector, ResourceRatios, TenantArchetype, ARCHETYPES};
use crate::WEEK_INTERVALS;
use dasr_containers::ResourceVector;
use dasr_core::{tenant_seed, FleetRunner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tenant's week of per-interval resource requirements.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// The tenant's archetype.
    pub archetype: TenantArchetype,
    /// Per-5-minute-interval resource requirement.
    pub intervals: Vec<ResourceVector>,
}

/// A synthetic fleet of tenants.
#[derive(Debug, Clone)]
pub struct TenantPopulation {
    /// All tenant traces.
    pub tenants: Vec<TenantTrace>,
}

/// Archetype mixture calibrated so change-event statistics reproduce the
/// shape of Figure 2: production fleets are dominated by tenants whose
/// demand crosses container boundaries within minutes to hours.
const MIXTURE: [(TenantArchetype, f64); 5] = [
    (TenantArchetype::Steady, 0.17),
    (TenantArchetype::Diurnal, 0.26),
    (TenantArchetype::Bursty, 0.34),
    (TenantArchetype::Idle, 0.11),
    (TenantArchetype::Growing, 0.12),
];

impl TenantPopulation {
    /// Generates `n` tenants for a full week (2016 5-minute intervals).
    pub fn generate(n: usize, seed: u64) -> Self {
        Self::generate_with_len(n, WEEK_INTERVALS, seed)
    }

    /// Generates `n` tenants over `intervals` 5-minute intervals.
    ///
    /// Each tenant's RNG stream is derived independently from `seed` (see
    /// [`tenant_seed`]), so generation parallelizes across cores — shard
    /// by shard on [`FleetRunner`]'s dynamically-claimed worker pool — and
    /// the resulting population is identical for any thread or shard count;
    /// tenant `i` is the same no matter how many tenants are generated
    /// around it.
    pub fn generate_with_len(n: usize, intervals: usize, seed: u64) -> Self {
        assert!(n > 0 && intervals > 1, "population must be non-trivial");
        let runner = FleetRunner::with_available_parallelism();
        let tenants = runner.map(n, |i| {
            let mut rng = StdRng::seed_from_u64(tenant_seed(seed, i as u64));
            let archetype = sample_archetype(&mut rng);
            let ratios = ResourceRatios::sample(&mut rng);
            let cpu = archetype.cpu_demand_series(&mut rng, intervals);
            let intervals = cpu
                .iter()
                .map(|&c| demand_vector(&mut rng, c, &ratios))
                .collect();
            TenantTrace {
                archetype,
                intervals,
            }
        });
        Self { tenants }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

fn sample_archetype(rng: &mut StdRng) -> TenantArchetype {
    let x: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for &(a, w) in &MIXTURE {
        acc += w;
        if x < acc {
            return a;
        }
    }
    ARCHETYPES[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let p = TenantPopulation::generate_with_len(50, 288, 7);
        assert_eq!(p.len(), 50);
        assert!(p.tenants.iter().all(|t| t.intervals.len() == 288));
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        let total: f64 = MIXTURE.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_is_represented() {
        let p = TenantPopulation::generate_with_len(400, 50, 3);
        let mut seen = std::collections::HashSet::new();
        for t in &p.tenants {
            seen.insert(t.archetype);
        }
        assert!(seen.len() >= 4, "archetypes present: {seen:?}");
    }

    #[test]
    fn deterministic() {
        let a = TenantPopulation::generate_with_len(10, 100, 11);
        let b = TenantPopulation::generate_with_len(10, 100, 11);
        for (x, y) in a.tenants.iter().zip(b.tenants.iter()) {
            assert_eq!(x.archetype, y.archetype);
            assert_eq!(x.intervals, y.intervals);
        }
    }

    #[test]
    fn demands_are_positive() {
        let p = TenantPopulation::generate_with_len(20, 100, 13);
        for t in &p.tenants {
            for v in &t.intervals {
                assert!(v.cpu_cores > 0.0 && v.memory_mb > 0.0);
            }
        }
    }
}
