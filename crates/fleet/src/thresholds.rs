//! Fleet-driven threshold derivation (§4.1).
//!
//! "We use production telemetry collected from thousands of real tenants'
//! databases across the service to determine these thresholds." This module
//! glues the generative fleet model to
//! [`dasr_telemetry::thresholds::derive_wait_thresholds`]: generate
//! observations per resource, split them at the utilization boundaries, and
//! read the category cut-offs off the conditional distributions.

use crate::waitmodel::WaitModel;
use dasr_containers::RESOURCE_KINDS;
use dasr_core::FleetRunner;
use dasr_telemetry::thresholds::derive_wait_thresholds;
use dasr_telemetry::ThresholdConfig;
use std::fmt;

/// Structured observability of one threshold derivation (§4.1): how many
/// fleet observations each resource contributed to the low- and
/// high-utilization conditional distributions, and whether derivation
/// succeeded. Human-readable output is rendered from this via
/// [`fmt::Display`], never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivationSummary {
    /// Observations generated per resource.
    pub observations_per_resource: usize,
    /// Observations below the low-utilization boundary, per resource
    /// (order of [`RESOURCE_KINDS`]).
    pub low_counts: [usize; RESOURCE_KINDS.len()],
    /// Observations above the high-utilization boundary, per resource.
    pub high_counts: [usize; RESOURCE_KINDS.len()],
    /// Whether each resource's derivation produced thresholds (enough
    /// separation in the conditionals).
    pub derived: [bool; RESOURCE_KINDS.len()],
}

impl fmt::Display for DerivationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "threshold derivation over {} observations/resource:",
            self.observations_per_resource
        )?;
        for (i, kind) in RESOURCE_KINDS.into_iter().enumerate() {
            writeln!(
                f,
                "  {:>8}: {:>7} low-util obs, {:>7} high-util obs, derived: {}",
                kind.to_string(),
                self.low_counts[i],
                self.high_counts[i],
                if self.derived[i] {
                    "yes"
                } else {
                    "no (defaults kept)"
                }
            )?;
        }
        Ok(())
    }
}

/// Derives a full [`ThresholdConfig`] from `observations_per_resource`
/// synthetic fleet observations.
///
/// `interval_scale` rescales the derived wait thresholds from the fleet's
/// 5-minute observation interval to the auto-scaler's billing interval
/// (e.g. `1.0 / 5.0` for one-minute intervals) — wait magnitudes are
/// cumulative over the interval, so they scale linearly with its length.
pub fn derive_threshold_config(
    observations_per_resource: usize,
    interval_scale: f64,
    seed: u64,
) -> ThresholdConfig {
    derive_threshold_config_observed(observations_per_resource, interval_scale, seed).0
}

/// Like [`derive_threshold_config`], additionally returning the
/// [`DerivationSummary`] describing what the derivation saw.
pub fn derive_threshold_config_observed(
    observations_per_resource: usize,
    interval_scale: f64,
    seed: u64,
) -> (ThresholdConfig, DerivationSummary) {
    assert!(
        observations_per_resource >= 100,
        "need a meaningful fleet sample"
    );
    assert!(interval_scale > 0.0, "scale must be positive");
    let mut cfg = ThresholdConfig::default();
    // Each resource's wait model is seeded independently, so the four
    // derivations are order-free and run in parallel (deterministically —
    // see the FleetRunner determinism contract).
    let runner = FleetRunner::with_available_parallelism();
    let derived_per_kind = runner.map(RESOURCE_KINDS.len(), |i| {
        let kind = RESOURCE_KINDS[i];
        let mut model = WaitModel::new(kind, seed);
        let obs = model.generate(observations_per_resource);
        let mut wait_low = Vec::new();
        let mut wait_high = Vec::new();
        let mut pct_low = Vec::new();
        let mut pct_high = Vec::new();
        for o in &obs {
            if o.util_pct < cfg.util_low_pct {
                wait_low.push(o.wait_ms);
                pct_low.push(o.wait_pct);
            } else if o.util_pct > cfg.util_high_pct {
                wait_high.push(o.wait_ms);
                pct_high.push(o.wait_pct);
            }
        }
        let derived = derive_wait_thresholds(&wait_low, &wait_high, &pct_low, &pct_high);
        (derived, wait_low.len(), wait_high.len())
    });
    let mut summary = DerivationSummary {
        observations_per_resource,
        low_counts: [0; RESOURCE_KINDS.len()],
        high_counts: [0; RESOURCE_KINDS.len()],
        derived: [false; RESOURCE_KINDS.len()],
    };
    for (i, (kind, (derived, low_n, high_n))) in
        RESOURCE_KINDS.into_iter().zip(derived_per_kind).enumerate()
    {
        summary.low_counts[i] = low_n;
        summary.high_counts[i] = high_n;
        summary.derived[i] = derived.is_some();
        if let Some(mut derived) = derived {
            derived.low_ms *= interval_scale;
            derived.high_ms *= interval_scale;
            *cfg.waits_for_mut(kind) = derived;
        }
    }
    (cfg.validated(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_containers::ResourceKind;

    #[test]
    fn derived_config_is_valid_and_separated() {
        let cfg = derive_threshold_config(20_000, 1.0, 7);
        for kind in RESOURCE_KINDS {
            let w = cfg.waits_for(kind);
            assert!(w.low_ms > 0.0);
            assert!(
                w.high_ms > 5.0 * w.low_ms,
                "{kind}: low {} high {} insufficiently separated",
                w.low_ms,
                w.high_ms
            );
            assert!((10.0..90.0).contains(&w.significant_pct));
        }
    }

    #[test]
    fn cpu_low_threshold_matches_paper_magnitude() {
        let cfg = derive_threshold_config(30_000, 1.0, 42);
        let w = cfg.waits_for(ResourceKind::Cpu);
        // Figure 6(a): ~20s per 5-minute interval.
        assert!(
            (5_000.0..60_000.0).contains(&w.low_ms),
            "low_ms {}",
            w.low_ms
        );
        // Figure 6(b): hundreds of seconds.
        assert!(
            (100_000.0..4_000_000.0).contains(&w.high_ms),
            "high_ms {}",
            w.high_ms
        );
    }

    #[test]
    fn interval_scaling_is_linear() {
        let full = derive_threshold_config(10_000, 1.0, 3);
        let scaled = derive_threshold_config(10_000, 0.2, 3);
        let f = full.waits_for(ResourceKind::DiskIo);
        let s = scaled.waits_for(ResourceKind::DiskIo);
        assert!((s.low_ms - f.low_ms * 0.2).abs() < 1e-6);
        assert!((s.high_ms - f.high_ms * 0.2).abs() < 1e-6);
        assert_eq!(s.significant_pct, f.significant_pct);
    }

    #[test]
    fn deterministic() {
        let a = derive_threshold_config(5_000, 1.0, 11);
        let b = derive_threshold_config(5_000, 1.0, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_accounts_for_every_split_observation() {
        let (cfg, summary) = derive_threshold_config_observed(5_000, 1.0, 11);
        assert_eq!(cfg, derive_threshold_config(5_000, 1.0, 11));
        assert_eq!(summary.observations_per_resource, 5_000);
        for i in 0..RESOURCE_KINDS.len() {
            assert!(summary.low_counts[i] > 0, "some low-util observations");
            assert!(summary.high_counts[i] > 0, "some high-util observations");
            assert!(
                summary.low_counts[i] + summary.high_counts[i] <= 5_000,
                "splits are disjoint subsets"
            );
            assert!(summary.derived[i], "a 5k sample should derive thresholds");
        }
        let text = summary.to_string();
        assert!(text.contains("cpu") && text.contains("derived: yes"));
    }
}
