//! Property-based tests of the catalog searches the auto-scaler relies on.

use dasr_containers::{Catalog, ResourceVector};
use proptest::prelude::*;

fn arb_demand() -> impl Strategy<Value = ResourceVector> {
    (
        0.0..40.0f64,
        0.0..80_000.0f64,
        0.0..8_000.0f64,
        0.0..400.0f64,
    )
        .prop_map(|(c, m, d, l)| ResourceVector::new(c, m, d, l))
}

proptest! {
    /// `cheapest_covering` returns a true cover, and no cheaper container in
    /// the catalog also covers the demand (minimality).
    #[test]
    fn cheapest_covering_is_minimal(demand in arb_demand(), per_dim in any::<bool>()) {
        let catalog = if per_dim {
            Catalog::azure_like_per_dimension()
        } else {
            Catalog::azure_like()
        };
        match catalog.cheapest_covering(&demand, None) {
            Some(pick) => {
                prop_assert!(pick.covers(&demand));
                for c in catalog.iter() {
                    if c.cost < pick.cost {
                        prop_assert!(
                            !c.covers(&demand),
                            "{} (cost {}) also covers but is cheaper than {} (cost {})",
                            c.name, c.cost, pick.name, pick.cost
                        );
                    }
                }
            }
            None => {
                // Nothing covers: the largest container must genuinely fail.
                prop_assert!(!catalog.largest().covers(&demand));
            }
        }
    }

    /// A price cap never yields a more expensive pick than the cap, and
    /// relaxing the cap never yields a more expensive pick than before.
    #[test]
    fn price_cap_monotonicity(demand in arb_demand(), cap in 7.0..300.0f64) {
        let catalog = Catalog::azure_like();
        if let Some(capped) = catalog.cheapest_covering(&demand, Some(cap)) {
            prop_assert!(capped.cost <= cap + 1e-9);
            let uncapped = catalog.cheapest_covering(&demand, None).unwrap();
            prop_assert!(uncapped.cost <= capped.cost + 1e-9);
        }
    }

    /// `most_expensive_under` respects the cap and is maximal.
    #[test]
    fn most_expensive_under_is_maximal(cap in 0.0..400.0f64) {
        let catalog = Catalog::azure_like();
        match catalog.most_expensive_under(cap) {
            Some(pick) => {
                prop_assert!(pick.cost <= cap + 1e-9);
                for c in catalog.iter() {
                    prop_assert!(c.cost <= pick.cost + 1e-9 || c.cost > cap + 1e-9);
                }
            }
            None => prop_assert!(catalog.min_cost() > cap),
        }
    }

    /// `assign_for_utilization` (the §2.2 container assignment) is monotone:
    /// more demand never yields a cheaper container.
    #[test]
    fn assignment_is_monotone(demand in arb_demand(), factor in 1.0..3.0f64) {
        let catalog = Catalog::azure_like();
        let small = catalog.assign_for_utilization(&demand);
        let big = catalog.assign_for_utilization(&demand.scaled(factor));
        prop_assert!(big.cost >= small.cost);
    }

    /// Stepping desired vectors up/down stays on the lockstep ladder and is
    /// clamped at the ends.
    #[test]
    fn desired_steps_stay_on_ladder(rung in 0u32..11, s in -2i8..=2) {
        let catalog = Catalog::azure_like();
        let current = catalog
            .iter()
            .find(|c| c.rung as u32 == rung)
            .unwrap()
            .clone();
        let desired = catalog.desired_after_steps(&current, [s; 4]);
        let covering = catalog.cheapest_covering(&desired, None).unwrap();
        let expected = (rung as i32 + s as i32).clamp(0, 10) as u8;
        prop_assert_eq!(covering.rung, expected);
    }
}
