//! The service's container offering and the searches the auto-scaler needs.

use crate::container::{Container, ContainerId};
use crate::resources::{ResourceKind, ResourceVector, RESOURCE_KINDS};

/// How the catalog scales containers (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogKind {
    /// All resources scale in lock-step (`S`, `M`, `L`, …).
    Lockstep,
    /// Lockstep ladder plus variants that scale a single dimension
    /// (`MC`/`LC` CPU-scaled, `MD`/`LD` disk-scaled, …).
    PerDimension,
}

/// The number of lockstep container sizes in the Azure-like catalog (§7.1:
/// "a set of eleven container sizes").
pub const LOCKSTEP_RUNGS: usize = 11;

/// `(cores, memory MB, disk IOPS, log MB/s, cost)` for each lockstep rung.
/// Costs span 7→270 units per billing interval; resources span roughly three
/// orders of magnitude, matching §1 and §7.1.
const LADDER: [(f64, f64, f64, f64, f64); LOCKSTEP_RUNGS] = [
    (0.5, 1_024.0, 100.0, 5.0, 7.0),
    (1.0, 2_048.0, 200.0, 10.0, 15.0),
    (2.0, 4_096.0, 400.0, 20.0, 30.0),
    (3.0, 6_144.0, 600.0, 30.0, 45.0),
    (4.0, 8_192.0, 800.0, 40.0, 60.0),
    (6.0, 12_288.0, 1_200.0, 60.0, 90.0),
    (8.0, 16_384.0, 1_600.0, 80.0, 120.0),
    (12.0, 24_576.0, 2_400.0, 120.0, 160.0),
    (16.0, 32_768.0, 3_200.0, 160.0, 200.0),
    (24.0, 49_152.0, 4_800.0, 240.0, 240.0),
    (32.0, 65_536.0, 6_400.0, 320.0, 270.0),
];

/// Fraction of the lockstep cost delta charged for raising a *single*
/// dimension (per-dimension variants are cheaper than a full step-up — the
/// reason Figure 1's independent scaling saves money).
const PER_DIM_COST_FRACTION: f64 = 0.4;

/// The set of containers a DaaS offers, with the searches §6 requires.
#[derive(Debug, Clone)]
pub struct Catalog {
    kind: CatalogKind,
    containers: Vec<Container>,
}

impl Catalog {
    /// The eleven-size lockstep catalog modeled on commercial offerings
    /// (§7.1): cost 7→270 units/interval, 0.5→32 cores, 1→64 GB,
    /// 100→6400 IOPS.
    pub fn azure_like() -> Self {
        let containers = LADDER
            .iter()
            .enumerate()
            .map(|(i, &(c, m, d, l, cost))| {
                Container::new(
                    ContainerId(i as u32),
                    format!("C{i}"),
                    ResourceVector::new(c, m, d, l),
                    cost,
                    i as u8,
                )
            })
            .collect();
        Self {
            kind: CatalogKind::Lockstep,
            containers,
        }
    }

    /// The lockstep catalog extended with per-dimension variants: for every
    /// rung `b` and every dimension, variants raising only that dimension to
    /// rung `b+1` and `b+2` (Figure 1's `MC`/`LC`/`MD`/`LD` generalized to
    /// all four dimensions).
    pub fn azure_like_per_dimension() -> Self {
        let mut catalog = Self::azure_like();
        catalog.kind = CatalogKind::PerDimension;
        let mut next_id = catalog.containers.len() as u32;
        for base in 0..LOCKSTEP_RUNGS {
            for kind in RESOURCE_KINDS {
                for up in 1..=2usize {
                    let target = base + up;
                    if target >= LOCKSTEP_RUNGS {
                        continue;
                    }
                    let base_res = Self::rung_resources(base);
                    let target_res = Self::rung_resources(target);
                    let resources = base_res.with(kind, target_res[kind]);
                    let cost = LADDER[base].4
                        + PER_DIM_COST_FRACTION * (LADDER[target].4 - LADDER[base].4);
                    let suffix = match kind {
                        ResourceKind::Cpu => "C",
                        ResourceKind::Memory => "M",
                        ResourceKind::DiskIo => "D",
                        ResourceKind::LogIo => "L",
                    };
                    catalog.containers.push(Container::new(
                        ContainerId(next_id),
                        format!("C{base}{suffix}{up}"),
                        resources,
                        cost,
                        base as u8,
                    ));
                    next_id += 1;
                }
            }
        }
        catalog
    }

    /// A custom catalog from explicit containers (for tests and what-if
    /// studies).
    ///
    /// # Panics
    /// Panics if `containers` is empty or ids are not unique.
    pub fn custom(kind: CatalogKind, containers: Vec<Container>) -> Self {
        assert!(!containers.is_empty(), "catalog must not be empty");
        let mut ids: Vec<u32> = containers.iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), containers.len(), "container ids must be unique");
        Self { kind, containers }
    }

    /// Lockstep resources at `rung` (0-based).
    ///
    /// # Panics
    /// Panics if `rung >= LOCKSTEP_RUNGS`.
    pub fn rung_resources(rung: usize) -> ResourceVector {
        let (c, m, d, l, _) = LADDER[rung];
        ResourceVector::new(c, m, d, l)
    }

    /// Lockstep cost at `rung`.
    pub fn rung_cost(rung: usize) -> f64 {
        LADDER[rung].4
    }

    /// The catalog's scaling model.
    pub fn kind(&self) -> CatalogKind {
        self.kind
    }

    /// Number of containers offered.
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// Always false — catalogs are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Iterates over all containers.
    pub fn iter(&self) -> impl Iterator<Item = &Container> {
        self.containers.iter()
    }

    /// Looks up a container by id.
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.containers.iter().find(|c| c.id == id)
    }

    /// The cheapest container in the catalog.
    pub fn smallest(&self) -> &Container {
        self.containers
            .iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .expect("catalog non-empty")
    }

    /// The most expensive container in the catalog.
    pub fn largest(&self) -> &Container {
        self.containers
            .iter()
            .max_by(|a, b| a.cost.total_cmp(&b.cost))
            .expect("catalog non-empty")
    }

    /// Cost of the cheapest container (`Cmin` in §5).
    pub fn min_cost(&self) -> f64 {
        self.smallest().cost
    }

    /// Cost of the most expensive container (`Cmax` in §5).
    pub fn max_cost(&self) -> f64 {
        self.largest().cost
    }

    /// The cheapest container whose resources cover `demand` in every
    /// dimension and whose cost is within `price_cap` (if given). Ties on
    /// cost are broken toward fewer total resources (then lower id, for
    /// determinism). Returns `None` when no container qualifies.
    ///
    /// This is the primary search of the auto-scaling logic (§6).
    pub fn cheapest_covering(
        &self,
        demand: &ResourceVector,
        price_cap: Option<f64>,
    ) -> Option<&Container> {
        self.containers
            .iter()
            .filter(|c| c.covers(demand))
            .filter(|c| price_cap.is_none_or(|cap| c.cost <= cap + 1e-9))
            .min_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| total(&a.resources).total_cmp(&total(&b.resources)))
                    .then_with(|| a.id.cmp(&b.id))
            })
    }

    /// The most expensive container with cost ≤ `price_cap` (§6: "if the
    /// desired container is constrained by the available budget, then the
    /// most expensive container with price less than `Bi` is selected").
    /// Ties break toward more total resources. Returns `None` when even the
    /// cheapest container exceeds the cap.
    pub fn most_expensive_under(&self, price_cap: f64) -> Option<&Container> {
        self.containers
            .iter()
            .filter(|c| c.cost <= price_cap + 1e-9)
            .max_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then_with(|| total(&a.resources).total_cmp(&total(&b.resources)))
                    .then_with(|| b.id.cmp(&a.id))
            })
    }

    /// The smallest (cheapest) container covering `utilization` — used by
    /// the offline analyses (§2.2's container assignment, and the `Peak` /
    /// `Avg` / `Trace` baselines of §7.2.1).
    pub fn assign_for_utilization(&self, utilization: &ResourceVector) -> &Container {
        self.cheapest_covering(utilization, None)
            .unwrap_or_else(|| self.largest())
    }

    /// Builds the *desired* resource vector produced by stepping each
    /// dimension of `current` by `steps[d]` rungs on the lockstep ladder
    /// (§4: demand estimates are expressed as 0/1/2 rung steps per
    /// dimension, up or down).
    ///
    /// The current per-dimension rung is the smallest lockstep rung whose
    /// value in that dimension is ≥ the container's current value.
    pub fn desired_after_steps(&self, current: &Container, steps: [i8; 4]) -> ResourceVector {
        let mut desired = ResourceVector::ZERO;
        for kind in RESOURCE_KINDS {
            let cur_value = current.resources[kind];
            let cur_rung = (0..LOCKSTEP_RUNGS)
                .find(|&r| Self::rung_resources(r)[kind] >= cur_value - 1e-9)
                .unwrap_or(LOCKSTEP_RUNGS - 1);
            let target = (cur_rung as i32 + steps[kind.index()] as i32)
                .clamp(0, LOCKSTEP_RUNGS as i32 - 1) as usize;
            desired[kind] = Self::rung_resources(target)[kind];
        }
        desired
    }
}

fn total(v: &ResourceVector) -> f64 {
    // A crude scalarization used only for deterministic tie-breaks.
    v.cpu_cores + v.memory_mb / 1024.0 + v.disk_iops / 100.0 + v.log_mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_like_shape_matches_paper() {
        let cat = Catalog::azure_like();
        assert_eq!(cat.len(), 11);
        assert_eq!(cat.min_cost(), 7.0);
        assert_eq!(cat.max_cost(), 270.0);
        assert_eq!(cat.smallest().resources.cpu_cores, 0.5);
        assert_eq!(cat.largest().resources.cpu_cores, 32.0);
    }

    #[test]
    fn ladder_is_monotone_in_every_dimension_and_cost() {
        let cat = Catalog::azure_like();
        let v: Vec<&Container> = cat.iter().collect();
        for w in v.windows(2) {
            assert!(w[1].cost > w[0].cost);
            assert!(w[1].resources.covers(&w[0].resources));
            assert!(!w[0].resources.covers(&w[1].resources));
        }
    }

    #[test]
    fn cheapest_covering_finds_minimum() {
        let cat = Catalog::azure_like();
        let demand = ResourceVector::new(2.5, 1_000.0, 100.0, 5.0);
        let c = cat.cheapest_covering(&demand, None).unwrap();
        assert_eq!(c.name, "C3"); // 3 cores is the first rung ≥ 2.5
    }

    #[test]
    fn cheapest_covering_respects_price_cap() {
        let cat = Catalog::azure_like();
        let demand = ResourceVector::new(2.5, 1_000.0, 100.0, 5.0);
        assert!(cat.cheapest_covering(&demand, Some(44.0)).is_none());
        assert_eq!(
            cat.cheapest_covering(&demand, Some(45.0)).unwrap().name,
            "C3"
        );
    }

    #[test]
    fn exact_boundary_demand_is_covered() {
        let cat = Catalog::azure_like();
        let demand = Catalog::rung_resources(4);
        let c = cat.cheapest_covering(&demand, None).unwrap();
        assert_eq!(c.name, "C4");
    }

    #[test]
    fn impossible_demand_is_none() {
        let cat = Catalog::azure_like();
        let demand = ResourceVector::new(64.0, 0.0, 0.0, 0.0);
        assert!(cat.cheapest_covering(&demand, None).is_none());
    }

    #[test]
    fn most_expensive_under_cap() {
        let cat = Catalog::azure_like();
        assert_eq!(cat.most_expensive_under(100.0).unwrap().name, "C5");
        assert_eq!(cat.most_expensive_under(7.0).unwrap().name, "C0");
        assert!(cat.most_expensive_under(6.9).is_none());
        assert_eq!(cat.most_expensive_under(1e9).unwrap().name, "C10");
    }

    #[test]
    fn per_dimension_catalog_offers_cheaper_single_dim_scaling() {
        let cat = Catalog::azure_like_per_dimension();
        assert!(cat.len() > 11);
        // Demand: CPU of rung 4, everything else rung 2.
        let mut demand = Catalog::rung_resources(2);
        demand.cpu_cores = Catalog::rung_resources(4).cpu_cores;
        let pick = cat.cheapest_covering(&demand, None).unwrap();
        let lockstep = Catalog::azure_like();
        let lockstep_pick = lockstep.cheapest_covering(&demand, None).unwrap();
        assert!(
            pick.cost < lockstep_pick.cost,
            "per-dim {} should beat lockstep {}",
            pick.cost,
            lockstep_pick.cost
        );
        assert!(pick.name.contains('C'), "picked {}", pick.name);
    }

    #[test]
    fn assign_for_utilization_saturates_at_largest() {
        let cat = Catalog::azure_like();
        let huge = ResourceVector::new(1_000.0, 1e9, 1e9, 1e9);
        assert_eq!(cat.assign_for_utilization(&huge).name, "C10");
        assert_eq!(cat.assign_for_utilization(&ResourceVector::ZERO).name, "C0");
    }

    #[test]
    fn desired_after_steps_moves_per_dimension() {
        let cat = Catalog::azure_like();
        let current = cat.get(ContainerId(2)).unwrap().clone(); // C2
                                                                // +1 CPU step, -1 disk step, others unchanged.
        let desired = cat.desired_after_steps(&current, [1, 0, -1, 0]);
        assert_eq!(desired.cpu_cores, Catalog::rung_resources(3).cpu_cores);
        assert_eq!(desired.memory_mb, Catalog::rung_resources(2).memory_mb);
        assert_eq!(desired.disk_iops, Catalog::rung_resources(1).disk_iops);
        assert_eq!(desired.log_mbps, Catalog::rung_resources(2).log_mbps);
    }

    #[test]
    fn desired_after_steps_clamps_at_ladder_ends() {
        let cat = Catalog::azure_like();
        let smallest = cat.smallest().clone();
        let down = cat.desired_after_steps(&smallest, [-2, -2, -2, -2]);
        assert_eq!(down, Catalog::rung_resources(0));
        let largest = cat.largest().clone();
        let up = cat.desired_after_steps(&largest, [2, 2, 2, 2]);
        assert_eq!(up, Catalog::rung_resources(10));
    }

    #[test]
    #[should_panic(expected = "ids must be unique")]
    fn custom_rejects_duplicate_ids() {
        let c = Container::new(ContainerId(0), "a", ResourceVector::ZERO, 1.0, 0);
        let _ = Catalog::custom(CatalogKind::Lockstep, vec![c.clone(), c]);
    }

    #[test]
    fn get_by_id() {
        let cat = Catalog::azure_like();
        assert_eq!(cat.get(ContainerId(5)).unwrap().name, "C5");
        assert!(cat.get(ContainerId(999)).is_none());
    }
}
