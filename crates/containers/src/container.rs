//! Containers: fixed resource allocations with a per-interval cost.

use crate::resources::ResourceVector;
use std::fmt;

/// Opaque identifier of a container within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u32);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A resource container: a fixed set of resources plus a cost per billing
/// interval (paper §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    /// Identifier within the catalog.
    pub id: ContainerId,
    /// Human-readable SKU name (`S`, `M`, `L`, `MC`, `LD`, …).
    pub name: String,
    /// Guaranteed resources.
    pub resources: ResourceVector,
    /// Cost in budget units per billing interval.
    pub cost: f64,
    /// Position on the lockstep ladder (0 = smallest); per-dimension
    /// variants share the rung of the lockstep container they branch from.
    pub rung: u8,
}

impl Container {
    /// Creates a container.
    ///
    /// # Panics
    /// Panics if `cost` is negative or non-finite.
    pub fn new(
        id: ContainerId,
        name: impl Into<String>,
        resources: ResourceVector,
        cost: f64,
        rung: u8,
    ) -> Self {
        assert!(cost.is_finite() && cost >= 0.0, "cost must be non-negative");
        Self {
            id,
            name: name.into(),
            resources,
            cost,
            rung,
        }
    }

    /// True when this container's resources cover `demand` in every
    /// dimension.
    pub fn covers(&self, demand: &ResourceVector) -> bool {
        self.resources.covers(demand)
    }
}

impl fmt::Display for Container {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} @ {} units/interval)",
            self.name, self.resources, self.cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_covers_demand() {
        let c = Container::new(
            ContainerId(3),
            "M",
            ResourceVector::new(2.0, 4096.0, 400.0, 20.0),
            30.0,
            2,
        );
        assert!(c.covers(&ResourceVector::new(1.0, 1024.0, 100.0, 5.0)));
        assert!(!c.covers(&ResourceVector::new(4.0, 1024.0, 100.0, 5.0)));
    }

    #[test]
    fn display_formats() {
        let c = Container::new(
            ContainerId(0),
            "S",
            ResourceVector::new(0.5, 1024.0, 100.0, 5.0),
            7.0,
            0,
        );
        let s = format!("{c}");
        assert!(s.contains('S') && s.contains("7"));
        assert_eq!(format!("{}", c.id), "#0");
    }

    #[test]
    #[should_panic(expected = "cost must be non-negative")]
    fn negative_cost_panics() {
        let _ = Container::new(ContainerId(0), "bad", ResourceVector::ZERO, -1.0, 0);
    }
}
