//! Resource dimensions and resource vectors.

use std::fmt;
use std::ops::{Index, IndexMut};

/// The resource dimensions a container guarantees (paper §2.1: "two virtual
/// cores, 4GB memory, 100 disk IOPS" — we add log bandwidth, which SQL-family
/// engines govern separately from data-file I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceKind {
    /// CPU, in (possibly fractional) cores.
    Cpu,
    /// Memory (buffer pool + caches), in megabytes.
    Memory,
    /// Data-file disk I/O, in IOPS.
    DiskIo,
    /// Transaction-log write bandwidth, in MB/s.
    LogIo,
}

/// All resource dimensions, in canonical order.
pub const RESOURCE_KINDS: [ResourceKind; 4] = [
    ResourceKind::Cpu,
    ResourceKind::Memory,
    ResourceKind::DiskIo,
    ResourceKind::LogIo,
];

impl ResourceKind {
    /// Canonical index of this dimension (order of [`RESOURCE_KINDS`]).
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::DiskIo => 2,
            ResourceKind::LogIo => 3,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::DiskIo => "disk_io",
            ResourceKind::LogIo => "log_io",
        }
    }

    /// Unit of measurement for this dimension.
    pub fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cores",
            ResourceKind::Memory => "MB",
            ResourceKind::DiskIo => "IOPS",
            ResourceKind::LogIo => "MB/s",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A quantity of every resource dimension.
///
/// Used both for container allocations and for demand vectors. Supports
/// component-wise comparison ([`covers`](Self::covers)) used by the
/// cheapest-covering-container search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    /// CPU cores (fractional allowed, e.g. 0.5).
    pub cpu_cores: f64,
    /// Memory in MB.
    pub memory_mb: f64,
    /// Disk I/O operations per second.
    pub disk_iops: f64,
    /// Log write bandwidth in MB/s.
    pub log_mbps: f64,
}

impl ResourceVector {
    /// Creates a vector; all components must be finite and non-negative.
    ///
    /// # Panics
    /// Panics on negative or non-finite components.
    pub fn new(cpu_cores: f64, memory_mb: f64, disk_iops: f64, log_mbps: f64) -> Self {
        let v = Self {
            cpu_cores,
            memory_mb,
            disk_iops,
            log_mbps,
        };
        for kind in RESOURCE_KINDS {
            let x = v[kind];
            assert!(
                x.is_finite() && x >= 0.0,
                "resource {kind} must be finite and non-negative, got {x}"
            );
        }
        v
    }

    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        cpu_cores: 0.0,
        memory_mb: 0.0,
        disk_iops: 0.0,
        log_mbps: 0.0,
    };

    /// True when every component of `self` is ≥ the matching component of
    /// `other` (within a small tolerance for floating-point arithmetic).
    pub fn covers(&self, other: &ResourceVector) -> bool {
        RESOURCE_KINDS.iter().all(|&k| self[k] >= other[k] - 1e-9)
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_cores: self.cpu_cores.max(other.cpu_cores),
            memory_mb: self.memory_mb.max(other.memory_mb),
            disk_iops: self.disk_iops.max(other.disk_iops),
            log_mbps: self.log_mbps.max(other.log_mbps),
        }
    }

    /// Scales every component by `factor` (must be non-negative and finite).
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale factor");
        ResourceVector {
            cpu_cores: self.cpu_cores * factor,
            memory_mb: self.memory_mb * factor,
            disk_iops: self.disk_iops * factor,
            log_mbps: self.log_mbps * factor,
        }
    }

    /// Returns a copy with one dimension replaced.
    pub fn with(&self, kind: ResourceKind, value: f64) -> ResourceVector {
        assert!(value.is_finite() && value >= 0.0, "invalid resource value");
        let mut v = *self;
        v[kind] = value;
        v
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;

    fn index(&self, kind: ResourceKind) -> &f64 {
        match kind {
            ResourceKind::Cpu => &self.cpu_cores,
            ResourceKind::Memory => &self.memory_mb,
            ResourceKind::DiskIo => &self.disk_iops,
            ResourceKind::LogIo => &self.log_mbps,
        }
    }
}

impl IndexMut<ResourceKind> for ResourceVector {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        match kind {
            ResourceKind::Cpu => &mut self.cpu_cores,
            ResourceKind::Memory => &mut self.memory_mb,
            ResourceKind::DiskIo => &mut self.disk_iops,
            ResourceKind::LogIo => &mut self.log_mbps,
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}c/{}MB/{}iops/{}MBps",
            self.cpu_cores, self.memory_mb, self.disk_iops, self.log_mbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_componentwise() {
        let big = ResourceVector::new(4.0, 8192.0, 800.0, 40.0);
        let small = ResourceVector::new(2.0, 4096.0, 400.0, 20.0);
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
        // One dimension larger breaks coverage.
        let mixed = small.with(ResourceKind::DiskIo, 10_000.0);
        assert!(!big.covers(&mixed));
    }

    #[test]
    fn covers_tolerates_fp_dust() {
        let a = ResourceVector::new(0.1 + 0.2, 1.0, 1.0, 1.0);
        let b = ResourceVector::new(0.3, 1.0, 1.0, 1.0);
        assert!(a.covers(&b));
        assert!(b.covers(&a));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = ResourceVector::ZERO;
        for (i, kind) in RESOURCE_KINDS.into_iter().enumerate() {
            v[kind] = (i + 1) as f64;
        }
        assert_eq!(v.cpu_cores, 1.0);
        assert_eq!(v.memory_mb, 2.0);
        assert_eq!(v.disk_iops, 3.0);
        assert_eq!(v.log_mbps, 4.0);
        assert_eq!(v[ResourceKind::LogIo], 4.0);
    }

    #[test]
    fn scaled_and_max() {
        let v = ResourceVector::new(1.0, 2.0, 3.0, 4.0);
        let s = v.scaled(2.0);
        assert_eq!(s, ResourceVector::new(2.0, 4.0, 6.0, 8.0));
        let m = v.max(&ResourceVector::new(5.0, 1.0, 3.0, 0.0));
        assert_eq!(m, ResourceVector::new(5.0, 2.0, 3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_component_panics() {
        let _ = ResourceVector::new(-1.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(ResourceKind::Cpu.index(), 0);
        assert_eq!(ResourceKind::LogIo.index(), 3);
        assert_eq!(ResourceKind::Memory.unit(), "MB");
        assert_eq!(format!("{}", ResourceKind::DiskIo), "disk_io");
    }
}
