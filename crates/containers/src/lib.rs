//! # dasr-containers — DaaS resource containers and cost model
//!
//! A relational DaaS offers a set of *resource containers*, each guaranteeing
//! a fixed amount of every resource (CPU, memory, disk IOPS, log bandwidth)
//! at a fixed cost per billing interval (paper §2.1). This crate models:
//!
//! - [`ResourceVector`] — a point in the multi-dimensional resource space;
//! - [`Container`] — a sized container with an id, resources and a cost;
//! - [`Catalog`] — the service's offering: eleven lockstep sizes spanning
//!   0.5→32 cores and cost 7→270 units per interval (matching §7.1), plus
//!   optional per-dimension scaled variants (Figure 1's `MC`/`LC` CPU-scaled
//!   and `MD`/`LD` disk-scaled containers);
//! - catalog searches used by the auto-scaling logic (§6): *cheapest
//!   container covering a demanded vector under a price cap* and *most
//!   expensive container under a cap*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod catalog;
pub mod container;
pub mod resources;

pub use catalog::{Catalog, CatalogKind};
pub use container::{Container, ContainerId};
pub use resources::{ResourceKind, ResourceVector, RESOURCE_KINDS};
