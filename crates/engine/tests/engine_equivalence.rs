//! Property tests: the fast-path [`Engine`] (generational slab, event
//! wheel, allocation-free dispatch) produces **bit-identical** telemetry to
//! [`OracleEngine`], the preserved pre-fast-path implementation
//! (`HashMap` request tables + `BinaryHeap` event queue).
//!
//! Every comparison is exact (`IntervalStats: PartialEq` compares `f64`
//! fields bitwise via `==`): latencies, wait totals, utilization
//! percentages, counters. Randomized request mixes run through both
//! engines at several container sizes, across multiple interval
//! boundaries, and under mid-run resizes and balloon operations.

use dasr_containers::ResourceVector;
use dasr_engine::oracle::OracleEngine;
use dasr_engine::request::{Op, RequestSpec};
use dasr_engine::{Engine, EngineConfig, IntervalStats, SimTime};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..20_000).prop_map(|us| Op::CpuBurst { us }),
        (0u64..2_000, any::<bool>()).prop_map(|(page, write)| Op::PageAccess { page, write }),
        (1u32..8_192).prop_map(|bytes| Op::LogWrite { bytes }),
        (0u32..4, any::<bool>()).prop_map(|(lock, exclusive)| Op::LockAcquire { lock, exclusive }),
        (1u32..32).prop_map(|mb| Op::MemoryGrant { mb }),
        (1u64..5_000).prop_map(|us| Op::Think { us }),
    ]
}

/// Random op sequences bent to the engine's deadlock-avoidance discipline
/// (locks in increasing id order, grants before locks) — same generator as
/// `tests/invariants.rs`.
fn arb_spec() -> impl Strategy<Value = RequestSpec> {
    prop::collection::vec(arb_op(), 1..10).prop_map(|mut ops| {
        let mut lock_ids: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::LockAcquire { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        lock_ids.sort_unstable();
        lock_ids.dedup();
        let mut next = 0;
        let mut seen = std::collections::HashSet::new();
        for op in ops.iter_mut() {
            if let Op::LockAcquire { lock, .. } = op {
                while next < lock_ids.len() && seen.contains(&lock_ids[next]) {
                    next += 1;
                }
                if next < lock_ids.len() {
                    *lock = lock_ids[next];
                    seen.insert(lock_ids[next]);
                }
            }
        }
        ops.sort_by_key(|op| !matches!(op, Op::MemoryGrant { .. }));
        RequestSpec::new(ops)
    })
}

/// A handful of container shapes from tiny (memory-starved, low IOPS) to
/// large, exercising admission control, eviction, and governor throttling
/// differently.
fn arb_container() -> impl Strategy<Value = ResourceVector> {
    prop_oneof![
        (0usize..1).prop_map(|_| ResourceVector::new(0.5, 8.0, 100.0, 5.0)),
        (0usize..1).prop_map(|_| ResourceVector::new(1.0, 64.0, 200.0, 10.0)),
        (0usize..1).prop_map(|_| ResourceVector::new(2.0, 256.0, 400.0, 20.0)),
        (0usize..1).prop_map(|_| ResourceVector::new(8.0, 1_024.0, 1_600.0, 80.0)),
    ]
}

/// Asserts both engines report bit-identical interval telemetry.
fn assert_intervals_equal(fast: &mut Engine, oracle: &mut OracleEngine) -> IntervalStats {
    let a = fast.end_interval();
    let b = oracle.end_interval();
    assert_eq!(a, b, "fast engine and oracle telemetry diverged");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mixes at random container sizes: telemetry is bit-identical
    /// across several interval boundaries and after the full drain.
    #[test]
    fn random_mixes_are_bit_identical(
        specs in prop::collection::vec(arb_spec(), 1..50),
        container in arb_container(),
        prewarm_pages in 0u64..2_000,
    ) {
        let cfg = EngineConfig::default();
        let mut fast = Engine::new(cfg, container);
        let mut oracle = OracleEngine::new(cfg, container);
        fast.prewarm(prewarm_pages);
        oracle.prewarm(prewarm_pages);
        for (i, spec) in specs.iter().enumerate() {
            let at = SimTime::from_micros(i as u64 * 811);
            fast.submit_at(at, spec.clone());
            oracle.submit_at(at, spec.clone());
        }
        // Several interval boundaries while work is in flight…
        for ms in [7u64, 40, 250] {
            fast.run_until(SimTime::from_millis(ms));
            oracle.run_until(SimTime::from_millis(ms));
            let s = assert_intervals_equal(&mut fast, &mut oracle);
            prop_assert!(s.end == SimTime::from_millis(ms));
        }
        // …then the full drain.
        fast.run_until(SimTime::from_secs(600));
        oracle.run_until(SimTime::from_secs(600));
        let s = assert_intervals_equal(&mut fast, &mut oracle);
        prop_assert_eq!(s.outstanding, 0, "everything must drain");
        prop_assert_eq!(fast.outstanding(), oracle.outstanding());
    }

    /// Mid-run resizes (up, down, or both) leave the engines in lockstep:
    /// governor re-rating, pool eviction, and writeback accounting match.
    #[test]
    fn mid_run_resizes_stay_bit_identical(
        specs in prop::collection::vec(arb_spec(), 1..40),
        up in any::<bool>(),
        resize_ms in 1u64..200,
    ) {
        let cfg = EngineConfig::default();
        let start = ResourceVector::new(2.0, 256.0, 400.0, 20.0);
        let mut fast = Engine::new(cfg, start);
        let mut oracle = OracleEngine::new(cfg, start);
        for (i, spec) in specs.iter().enumerate() {
            let at = SimTime::from_micros(i as u64 * 499);
            fast.submit_at(at, spec.clone());
            oracle.submit_at(at, spec.clone());
        }
        let t1 = SimTime::from_millis(resize_ms);
        fast.run_until(t1);
        oracle.run_until(t1);
        let target = if up {
            ResourceVector::new(16.0, 4_096.0, 3_200.0, 160.0)
        } else {
            ResourceVector::new(0.5, 16.0, 100.0, 5.0)
        };
        fast.apply_resources(target);
        oracle.apply_resources(target);
        assert_intervals_equal(&mut fast, &mut oracle);
        // Resize back mid-flight, then drain.
        let t2 = t1 + 50_000;
        fast.run_until(t2);
        oracle.run_until(t2);
        fast.apply_resources(start);
        oracle.apply_resources(start);
        fast.run_until(SimTime::from_secs(600));
        oracle.run_until(SimTime::from_secs(600));
        let s = assert_intervals_equal(&mut fast, &mut oracle);
        prop_assert_eq!(s.outstanding, 0);
    }

    /// Ballooning (start, step, abort-or-commit) under load matches the
    /// oracle exactly, including eviction writeback counts.
    #[test]
    fn balloon_lifecycle_stays_bit_identical(
        specs in prop::collection::vec(arb_spec(), 1..30),
        target_mb in 4.0f64..64.0,
        commit in any::<bool>(),
    ) {
        let cfg = EngineConfig::default();
        let container = ResourceVector::new(2.0, 256.0, 400.0, 20.0);
        let mut fast = Engine::new(cfg, container);
        let mut oracle = OracleEngine::new(cfg, container);
        fast.prewarm(20_000);
        oracle.prewarm(20_000);
        for (i, spec) in specs.iter().enumerate() {
            let at = SimTime::from_micros(i as u64 * 613);
            fast.submit_at(at, spec.clone());
            oracle.submit_at(at, spec.clone());
        }
        fast.start_balloon(target_mb);
        oracle.start_balloon(target_mb);
        fast.run_until(SimTime::from_secs(2));
        oracle.run_until(SimTime::from_secs(2));
        prop_assert_eq!(fast.balloon_active(), oracle.balloon_active());
        if commit {
            fast.commit_balloon();
            oracle.commit_balloon();
        } else {
            fast.abort_balloon();
            oracle.abort_balloon();
        }
        fast.run_until(SimTime::from_secs(600));
        oracle.run_until(SimTime::from_secs(600));
        let s = assert_intervals_equal(&mut fast, &mut oracle);
        prop_assert_eq!(s.outstanding, 0);
    }
}
