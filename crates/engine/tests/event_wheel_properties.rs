//! Property tests: the event wheel pops in exactly the order a
//! `BinaryHeap<Reverse<(time, seq, ev)>>` oracle would.
//!
//! The stream generator respects the wheel's contract (pushes after a pop
//! are at or after that pop's time — the engine always pushes at its
//! current clock or later) while stressing every structural case:
//! same-timestamp ties, bucket boundary times, slot collisions across
//! windows, and far-future overflow entries that must drain back into the
//! buckets as the window advances.

use dasr_engine::wheel::EventWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Time deltas covering ties, the near window, its boundary, and far
/// overflow (the window spans 4096 µs).
fn arb_delta() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..8,                            // ties and immediate follow-ups
        8u64..4_095,                        // inside the near window
        4_090u64..4_100,                    // straddling the window boundary
        4_096u64..50_000,                   // just past the window
        50_000u64..5_000_000,               // far future
        (0u64..70).prop_map(|k| k * 4_096), // exact slot collisions
    ]
}

/// One batch: some pushes (at clock + delta) followed by a drain up to
/// `clock + horizon`.
fn arb_batches() -> impl Strategy<Value = Vec<(Vec<u64>, u64)>> {
    prop::collection::vec(
        (prop::collection::vec(arb_delta(), 0..12), arb_delta()),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interleaved pushes and horizon-limited drains pop identically to
    /// the heap oracle, and both structures agree on the residue.
    #[test]
    fn wheel_matches_binary_heap_oracle(batches in arb_batches()) {
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u8)>> = BinaryHeap::new();
        let mut seq = 0u64;
        // The engine's clock: pushes never go below the last popped time.
        let mut clock = 0u64;
        for (deltas, horizon_delta) in batches {
            for d in deltas {
                seq += 1;
                let t = clock + d;
                wheel.push(t, seq, 0u8);
                heap.push(Reverse((t, seq, 0u8)));
            }
            let horizon = clock + horizon_delta;
            loop {
                let got = wheel.pop_due(horizon);
                let want = match heap.peek() {
                    Some(&Reverse((t, s, e))) if t <= horizon => {
                        heap.pop();
                        Some((t, s, e))
                    }
                    _ => None,
                };
                prop_assert_eq!(got, want, "divergence at horizon {}", horizon);
                match got {
                    Some((t, _, _)) => clock = clock.max(t),
                    None => break,
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "residue size differs");
        }
        // Drain the residue with an unbounded horizon: total order must
        // match to the last event.
        loop {
            let got = wheel.pop_due(u64::MAX);
            let want = heap.pop().map(|Reverse(x)| x);
            prop_assert_eq!(got, want, "divergence in final drain");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Pure ties: many events at the same timestamp pop in push (seq)
    /// order even when they arrive via the overflow heap.
    #[test]
    fn same_timestamp_ties_pop_in_seq_order(
        far in any::<bool>(),
        n in 2usize..40,
    ) {
        let mut wheel = EventWheel::new();
        let t = if far { 1_000_000 } else { 100 };
        for seq in 0..n as u64 {
            wheel.push(t, seq, 0u8);
        }
        for seq in 0..n as u64 {
            prop_assert_eq!(wheel.pop_due(u64::MAX), Some((t, seq, 0u8)));
        }
        prop_assert!(wheel.is_empty());
    }
}
